"""Calibration harness: quick paper-vs-measured dashboards.

Runs reduced-size versions of the experiments and prints the measured
values next to the paper's, so persona/SEO parameters can be tuned.
Usage: ``python tools/calibrate.py [fig1 fig3 fig4 table1 table2 table3]``
"""

import sys
import time

from repro.core import StudyConfig, World, run_experiment
from repro.core.config import WorkloadSizes

PAPER = """
paper targets:
  fig1 overlap: GPT-4o 4.0 < Gemini 11.1 < Claude 12.6 < Perplexity 15.2 (%)
  fig2: niche raises overlap 3-4pp for most; GPT barely (1.3->1.9); unique 74.2->68.6
  fig3 aggregate (earned/social/brand):
      Google 41/34/26  Claude 65/1/34  GPT 57/8/35  Perplexity 50/11/39  Gemini 46/8/46
  fig4 median ages: CE: Claude 62, GPT 80, Perplexity 90, Google 130
                    Auto: Claude 148, GPT 162, Perplexity 217, Google 493
  table1: popular SSn 2.30 SSs 1.52 ESI 2.60 | niche SSn 4.15 SSs 0.46 ESI 4.63
  table2: popular tau 0.911/1.000 | niche tau 0.556/0.689
  table3 miss: Toyota .06 Honda .03 Kia .10 Chevrolet .26 Cadillac .58 Infiniti .73
"""


def main() -> None:
    wanted = sys.argv[1:] or ["fig1", "fig3", "fig4", "table1", "table2", "table3"]
    print(PAPER)
    sizes = WorkloadSizes(
        ranking_queries=200,
        comparison_popular=40,
        comparison_niche=40,
        intent_queries=120,
        freshness_queries_per_vertical=25,
        perturbation_queries=12,
        perturbation_runs=6,
        pairwise_queries=8,
        citation_queries=60,
    )
    world = World.build(StudyConfig(seed=7, sizes=sizes))
    for experiment_id in wanted:
        start = time.time()
        __, text = run_experiment(experiment_id, world)
        print(f"\n=== {experiment_id} ({time.time() - start:.1f}s) ===")
        print(text)


if __name__ == "__main__":
    main()
