"""Random-search calibration of LLMConfig against the Section 3 targets.

Reuses one world and one set of retrieved contexts; evaluates candidate
configs on reduced Table 1 / Table 2 workloads and reports the best.
"""

import random
import sys

from repro.analysis.pairwise import pairwise_consistency
from repro.analysis.perturbations import PerturbationKind, sensitivity
from repro.core import StudyConfig, World
from repro.core.config import WorkloadSizes
from repro.core.study import ComparativeStudy
from repro.llm.model import GroundingMode, LLMConfig, SimulatedLLM

TARGETS = {
    ("ssn", "popular"): 2.30, ("ssn", "niche"): 4.15,
    ("sss", "popular"): 1.52, ("sss", "niche"): 0.46,
    ("esi", "popular"): 2.60, ("esi", "niche"): 4.63,
    ("taun", "popular"): 0.911, ("taun", "niche"): 0.556,
    ("taus", "popular"): 1.000, ("taus", "niche"): 0.689,
}
# Rank-deviation cells are on a ~4 scale, taus on ~1: weight taus up.
WEIGHTS = {key: (1.0 if key[0] in ("ssn", "sss", "esi") else 14.0) for key in TARGETS}


def build_fixture():
    sizes = WorkloadSizes(
        ranking_queries=10, comparison_popular=2, comparison_niche=2,
        intent_queries=6, freshness_queries_per_vertical=2,
        perturbation_queries=10, perturbation_runs=5, pairwise_queries=6,
        citation_queries=10,
    )
    world = World.build(StudyConfig(seed=7, sizes=sizes))
    study = ComparativeStudy(world)
    workloads = study._perturbation_queries()
    fixture = {}
    for setting, queries in workloads.items():
        items = []
        for query in queries:
            context = study._evidence_context(query)
            if len(query.entities) >= 2 and len(context) > 0:
                items.append((query, context))
        fixture[setting] = items
    return world, fixture


def evaluate(world, fixture, config: LLMConfig, runs=5, pairwise_queries=6):
    llm = SimulatedLLM(world.reference_llm.knowledge, config)
    measured = {}
    for setting, items in fixture.items():
        cells = {"ssn": [], "sss": [], "esi": []}
        for query, context in items:
            common = dict(
                llm=llm, query=query.text, candidates=list(query.entities),
                context=context, runs=runs, seed=7,
            )
            cells["ssn"].append(sensitivity(
                kind=PerturbationKind.SNIPPET_SHUFFLE,
                mode=GroundingMode.NORMAL, **common).delta_avg)
            cells["sss"].append(sensitivity(
                kind=PerturbationKind.SNIPPET_SHUFFLE,
                mode=GroundingMode.STRICT, **common).delta_avg)
            cells["esi"].append(sensitivity(
                kind=PerturbationKind.ENTITY_SWAP,
                mode=GroundingMode.NORMAL, catalog=world.catalog, **common).delta_avg)
        for cell, values in cells.items():
            measured[(cell, setting)] = sum(values) / len(values)
        taus_n, taus_s = [], []
        for query, context in items[:pairwise_queries]:
            taus_n.append(pairwise_consistency(
                llm, query.text, list(query.entities), context,
                GroundingMode.NORMAL).tau)
            taus_s.append(pairwise_consistency(
                llm, query.text, list(query.entities), context,
                GroundingMode.STRICT).tau)
        measured[("taun", setting)] = sum(taus_n) / len(taus_n)
        measured[("taus", setting)] = sum(taus_s) / len(taus_s)
    return measured


def loss(measured):
    return sum(
        WEIGHTS[key] * (measured[key] - target) ** 2
        for key, target in TARGETS.items()
    )


SPACE = {
    "attention_decay": (0.2, 1.4),
    "attention_half_weight": (0.3, 2.5),
    "gen_noise_normal": (0.03, 0.14),
    "gen_noise_strict": (0.001, 0.012),
    "conflict_noise": (0.3, 1.4),
    "pair_noise": (0.0, 0.03),
    "pair_noise_vague": (0.05, 0.6),
    "strict_pair_noise": (0.1, 1.2),
}


def main():
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    world, fixture = build_fixture()
    seed = world.reference_llm.config.seed
    rng = random.Random(99)

    best_cfg = world.reference_llm.config
    best_m = evaluate(world, fixture, best_cfg)
    best_loss = loss(best_m)
    print(f"baseline loss {best_loss:.3f}")

    for i in range(iterations):
        params = {}
        for name, (lo, hi) in SPACE.items():
            if rng.random() < 0.5:  # local move around best half the time
                current = getattr(best_cfg, name)
                span = (hi - lo) * 0.25
                params[name] = min(hi, max(lo, current + rng.uniform(-span, span)))
            else:
                params[name] = rng.uniform(lo, hi)
        cfg = LLMConfig(seed=seed, **params)
        measured = evaluate(world, fixture, cfg)
        current_loss = loss(measured)
        if current_loss < best_loss:
            best_loss, best_cfg, best_m = current_loss, cfg, measured
            print(f"[{i}] improved loss {best_loss:.3f}")

    print("\nbest config:")
    for name in SPACE:
        print(f"  {name} = {getattr(best_cfg, name):.4f}")
    print("\nmeasured vs target:")
    for key, target in TARGETS.items():
        print(f"  {key}: {best_m[key]:.3f} (target {target})")


if __name__ == "__main__":
    main()
