"""Seed-stability harness: are the shape conclusions seed-robust?

Reruns the headline shape metrics across several seeds and reports how
often each paper conclusion holds.  A reproduction whose conclusions
depend on one lucky seed is not a reproduction; this harness is the
check.

Usage: ``python tools/seed_stability.py [n_seeds]``
"""

import sys

from repro.core import StudyConfig, World
from repro.core.config import WorkloadSizes
from repro.core.study import ComparativeStudy

SIZES = WorkloadSizes(
    ranking_queries=150,
    comparison_popular=30,
    comparison_niche=30,
    intent_queries=90,
    freshness_queries_per_vertical=20,
    perturbation_queries=10,
    perturbation_runs=5,
    pairwise_queries=6,
    citation_queries=40,
)

CLAIMS = {
    "fig1: GPT-4o lowest overlap": lambda m: m["fig1_order"][0] == "GPT-4o",
    "fig1: Perplexity highest overlap": lambda m: m["fig1_order"][-1] == "Perplexity",
    "fig1: all overlaps < 35%": lambda m: m["fig1_max"] < 0.35,
    "fig4: AI fresher than Google (both verticals)": lambda m: m["fig4_ai_fresher"],
    "fig4: automotive older than electronics": lambda m: m["fig4_auto_older"],
    "table1: niche SSn > popular SSn": lambda m: m["t1_niche_gt_popular"],
    "table1: strict niche < strict popular": lambda m: m["t1_strict_inversion"],
    "table2: popular tau > niche tau (normal)": lambda m: m["t2_popular_gt_niche"],
    "table3: peripheral misses > mainstream": lambda m: m["t3_gradient"],
}


def measure(seed: int) -> dict:
    world = World.build(StudyConfig(seed=seed, sizes=SIZES))
    study = ComparativeStudy(world)

    fig1 = study.domain_overlap_ranking()
    fig4 = study.freshness()
    table1 = study.perturbation_sensitivity()
    table2 = study.pairwise_agreement()
    table3 = study.citation_misses()

    ai_fresher = all(
        report.median_age_days[system] < report.median_age_days["Google"]
        for report in (fig4.electronics, fig4.automotive)
        for system in ("GPT-4o", "Claude", "Perplexity")
    )
    auto_older = all(
        fig4.automotive.median_age_days[s] > fig4.electronics.median_age_days[s]
        for s in ("Google", "GPT-4o", "Claude", "Perplexity")
    )
    mainstream = (
        table3.representative["Toyota"] + table3.representative["Honda"]
    ) / 2
    peripheral = (
        table3.representative["Cadillac"] + table3.representative["Infiniti"]
    ) / 2
    return {
        "fig1_order": [name for name, __ in fig1.ordered_by_overlap()],
        "fig1_max": max(fig1.mean_overlap.values()),
        "fig4_ai_fresher": ai_fresher,
        "fig4_auto_older": auto_older,
        "t1_niche_gt_popular": table1.ss_normal["niche"] > table1.ss_normal["popular"],
        "t1_strict_inversion": table1.ss_strict["niche"] < table1.ss_strict["popular"],
        "t2_popular_gt_niche": table2.tau_normal["popular"] > table2.tau_normal["niche"],
        "t3_gradient": peripheral > mainstream + 0.2,
    }


def main() -> None:
    n_seeds = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    seeds = list(range(1, n_seeds + 1))
    holds = {claim: 0 for claim in CLAIMS}
    for seed in seeds:
        metrics = measure(seed)
        print(f"seed {seed}: fig1 order {metrics['fig1_order']}")
        for claim, check in CLAIMS.items():
            holds[claim] += bool(check(metrics))
    print(f"\nclaim stability over {n_seeds} seeds:")
    for claim, count in holds.items():
        print(f"  {count}/{n_seeds}  {claim}")


if __name__ == "__main__":
    main()
