"""Serving smoke gate: determinism exactly, performance by ratio.

Drains one deterministic load-generator stream through the serving tier
at two worker widths and checks two kinds of baseline recorded in the
``smoke`` section of ``BENCH_serving.json``:

* **Exact gates** — the answer digest and the duplicate-absorption rate
  are deterministic, so the live values must equal the recorded ones
  bit-for-bit, at every width.  The miss invariant (misses == distinct
  ``(engine, cache_key)`` pairs) is self-contained and checked without
  any baseline.
* **Ratio gates** — wall-clock numbers are hardware-dependent, so the
  gate compares *quotients* measured on the same box, the same idiom as
  ``tools/perf_smoke.py``:

  - ``warm_speedup``: cold drain time / warm (all-hits) drain time.  A
    regression in the hit path or the loop's per-request overhead drags
    the warm drain toward the cold one and the quotient down.
  - ``tail_ratio``: service-latency p99 / p50 of the cold drain.  A
    generous ceiling — the point is to catch a coalescing bug that
    makes followers serialize behind work they should have shared.

Chaos leg: with ``REPRO_CHAOS`` set (see ``repro.core.config.
default_chaos_plan``), the stream is served with that fault plan
installed — ``make shard-chaos`` runs this gate under a *recoverable*
``search.shard`` plan, and every exact gate must still pass: recoverable
faults recover inside the retry ladder, so the digest and the
absorption rate are byte-identical to the clean run.  (Unrecoverable
plans are for the pytest suites; here they would — correctly — fail the
digest gate.)

Usage:
    python tools/serve_smoke.py            # gate against recorded baselines
    python tools/serve_smoke.py --update   # re-record after a deliberate
                                           # serving or engine change
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import StudyConfig, WorkloadSizes
from repro.core.world import World
from repro.serve import LoadProfile, answers_digest, generate_requests

BENCH_JSON = REPO_ROOT / "BENCH_serving.json"

#: Worker widths the gate exercises; the digest must agree across them.
WIDTHS = (1, 4)

#: A live warm_speedup below ``SPEEDUP_TOLERANCE`` x the recorded one
#: fails the gate (generous: thread scheduling is noisier than the
#: search microbenchmarks perf_smoke gates).
SPEEDUP_TOLERANCE = 0.5

#: A live tail_ratio above ``TAIL_TOLERANCE`` x the recorded one fails.
TAIL_TOLERANCE = 6.0

#: Timing repeats; best-of-N suppresses scheduler noise.
REPEATS = 3

#: Small-but-valid workload: the smoke gate asserts serving semantics,
#: not the paper's shape claims, so the world stays minutes-free.
SMOKE_SIZES = WorkloadSizes(
    ranking_queries=20,
    comparison_popular=6,
    comparison_niche=6,
    intent_queries=12,
    freshness_queries_per_vertical=5,
    perturbation_queries=3,
    perturbation_runs=2,
    pairwise_queries=2,
    citation_queries=6,
)

PROFILE = LoadProfile(
    requests=400, qps=200.0, burstiness=4.0, zipf_s=1.1, pool_size=48, seed=17
)


def _cold(world: World) -> None:
    for engine in world.engines.values():
        engine.clear_cache()
    world.evidence_cache.clear()


def _best_of(fn) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _install_chaos(world: World) -> None:
    """Wire the ``REPRO_CHAOS`` plan into the world, when one is set."""
    from repro.core.config import default_chaos_plan
    from repro.resilience import (
        FaultPlan,
        ResilienceConfig,
        ResilienceContext,
    )

    text, seed = default_chaos_plan()
    if not text:
        return
    plan = FaultPlan.parse(text, seed=seed)
    world.install_resilience(ResilienceContext(ResilienceConfig(plan=plan)))
    print(f"chaos plan installed: {text!r} (seed {seed})")


def measure() -> dict:
    """Serve the smoke stream at every width; return live observations."""
    world = World.build(
        StudyConfig(seed=13, corpus_scale=0.35, sizes=SMOKE_SIZES)
    )
    _install_chaos(world)
    requests = generate_requests(world.catalog, PROFILE)
    distinct = len({(r.engine, r.query.cache_key) for r in requests})

    live: dict = {"widths": {}, "errors": []}
    digests = {}
    for width in WIDTHS:
        _cold(world)
        loop = world.serve_loop(workers=width)
        results = loop.serve(requests)
        snapshot = loop.stats.snapshot()
        digests[width] = answers_digest(results)
        if snapshot.outcomes["miss"] != distinct:
            live["errors"].append(
                f"width {width}: {snapshot.outcomes['miss']} misses != "
                f"{distinct} distinct (engine, cache_key) pairs"
            )
        live["widths"][width] = {
            "digest": digests[width],
            "duplicate_absorption": round(snapshot.duplicate_absorption, 4),
            "p50_ms": snapshot.service.p50_ms,
            "p99_ms": snapshot.service.p99_ms,
        }
    if len(set(digests.values())) != 1:
        live["errors"].append(
            "answer digest varies with worker width: "
            + ", ".join(f"w{w}={d[:12]}" for w, d in sorted(digests.items()))
        )

    # Timed pair at the widest width: cold (computes + coalesces) vs
    # warm (pure memo hits).  Both on this box; the quotient travels.
    width = WIDTHS[-1]

    def cold_drain():
        _cold(world)
        world.serve_loop(workers=width).serve(requests)

    def warm_drain():
        world.serve_loop(workers=width).serve(requests)

    cold_time = _best_of(cold_drain)
    warm_drain()  # ensure fully warm before timing
    warm_time = _best_of(warm_drain)

    timed = world.serve_loop(workers=width)
    timed.serve(requests)  # warm: stable latency sample for the tail
    snapshot = timed.stats.snapshot()
    p50 = snapshot.service.p50_ms or 1e-6

    live["answers_digest"] = digests[WIDTHS[0]]
    live["duplicate_absorption"] = live["widths"][WIDTHS[0]][
        "duplicate_absorption"
    ]
    live["warm_speedup"] = cold_time / warm_time if warm_time else float("inf")
    live["tail_ratio"] = snapshot.service.p99_ms / p50
    return live


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update",
        action="store_true",
        help="record the measured baselines into BENCH_serving.json",
    )
    args = parser.parse_args(argv)

    payload = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
    live = measure()

    failures = list(live["errors"])

    if args.update:
        payload["smoke"] = {
            "answers_digest": live["answers_digest"],
            "duplicate_absorption": live["duplicate_absorption"],
            "warm_speedup": round(live["warm_speedup"], 2),
            "tail_ratio": round(live["tail_ratio"], 2),
            "widths": list(WIDTHS),
            "profile": {
                "requests": PROFILE.requests,
                "qps": PROFILE.qps,
                "burstiness": PROFILE.burstiness,
                "zipf_s": PROFILE.zipf_s,
                "pool_size": PROFILE.pool_size,
                "seed": PROFILE.seed,
            },
        }
        BENCH_JSON.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"recorded answers_digest: {live['answers_digest'][:16]}…")
        print(
            f"recorded duplicate_absorption: {live['duplicate_absorption']}"
        )
        print(f"recorded warm_speedup: {live['warm_speedup']:.2f}x")
        print(f"recorded tail_ratio: {live['tail_ratio']:.2f}x")
        if failures:
            print("serve smoke FAILED (recorded anyway):")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        return 0

    recorded = payload.get("smoke")
    if not recorded:
        print("no smoke section in BENCH_serving.json; run with --update first")
        return 2

    # Exact gates: deterministic values must match bit-for-bit.
    if live["answers_digest"] != recorded["answers_digest"]:
        failures.append(
            f"answers_digest changed: {live['answers_digest'][:16]}… live vs "
            f"{recorded['answers_digest'][:16]}… recorded (if the engines "
            "changed deliberately, re-record with --update)"
        )
    else:
        print(f"answers_digest: {live['answers_digest'][:16]}… ok (exact)")
    if live["duplicate_absorption"] != recorded["duplicate_absorption"]:
        failures.append(
            f"duplicate_absorption: {live['duplicate_absorption']} live != "
            f"{recorded['duplicate_absorption']} recorded (deterministic)"
        )
    else:
        print(
            f"duplicate_absorption: {live['duplicate_absorption']} ok (exact)"
        )

    # Ratio gates: quotients measured on this box vs recorded quotients.
    speedup_floor = SPEEDUP_TOLERANCE * recorded["warm_speedup"]
    verdict = "ok" if live["warm_speedup"] >= speedup_floor else "REGRESSED"
    print(
        f"warm_speedup: {live['warm_speedup']:.2f}x live vs "
        f"{recorded['warm_speedup']:.2f}x recorded "
        f"(floor {speedup_floor:.2f}x) {verdict}"
    )
    if live["warm_speedup"] < speedup_floor:
        failures.append(
            f"warm_speedup: {live['warm_speedup']:.2f}x < {speedup_floor:.2f}x"
        )
    tail_ceiling = TAIL_TOLERANCE * recorded["tail_ratio"]
    verdict = "ok" if live["tail_ratio"] <= tail_ceiling else "REGRESSED"
    print(
        f"tail_ratio (p99/p50): {live['tail_ratio']:.2f}x live vs "
        f"{recorded['tail_ratio']:.2f}x recorded "
        f"(ceiling {tail_ceiling:.2f}x) {verdict}"
    )
    if live["tail_ratio"] > tail_ceiling:
        failures.append(
            f"tail_ratio: {live['tail_ratio']:.2f}x > {tail_ceiling:.2f}x"
        )

    if failures:
        print("serve smoke FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"serve smoke passed (widths {', '.join(map(str, WIDTHS))})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
