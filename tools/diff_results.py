"""Diff two JSON result archives (from ``python -m repro run --json``).

Reports per-experiment numeric drift so code changes can be checked for
unintended effects on the reproduced numbers.

Usage: ``python tools/diff_results.py before.json after.json [--tol 1e-9]``
"""

import argparse
import json
import pathlib


def _flatten(prefix: str, value, out: dict) -> None:
    if isinstance(value, dict):
        for key, item in value.items():
            _flatten(f"{prefix}.{key}" if prefix else str(key), item, out)
    elif isinstance(value, list):
        for index, item in enumerate(value):
            _flatten(f"{prefix}[{index}]", item, out)
    else:
        out[prefix] = value


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("before", type=pathlib.Path)
    parser.add_argument("after", type=pathlib.Path)
    parser.add_argument("--tol", type=float, default=1e-9)
    args = parser.parse_args()

    before, after = {}, {}
    _flatten("", json.loads(args.before.read_text()), before)
    _flatten("", json.loads(args.after.read_text()), after)

    added = sorted(set(after) - set(before))
    removed = sorted(set(before) - set(after))
    changed = []
    for key in sorted(set(before) & set(after)):
        a, b = before[key], after[key]
        if isinstance(a, (int, float)) and isinstance(b, (int, float)):
            if a is not None and b is not None and abs(a - b) > args.tol:
                changed.append((key, a, b))
        elif a != b:
            changed.append((key, a, b))

    if not (added or removed or changed):
        print("identical (within tolerance)")
        return 0
    for key in removed:
        print(f"- {key} = {before[key]}")
    for key in added:
        print(f"+ {key} = {after[key]}")
    for key, a, b in changed:
        if isinstance(a, float) and isinstance(b, float):
            print(f"~ {key}: {a:.6g} -> {b:.6g} (delta {b - a:+.6g})")
        else:
            print(f"~ {key}: {a!r} -> {b!r}")
    print(f"\n{len(removed)} removed, {len(added)} added, {len(changed)} changed")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
