"""Run every experiment at the paper's workload sizes and save outputs.

Usage: python tools/run_full_study.py [output_dir]
"""

import pathlib
import sys
import time

from repro.core import StudyConfig, World, run_experiment

def main() -> None:
    out = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "results/full")
    out.mkdir(parents=True, exist_ok=True)
    start = time.time()
    world = World.build(StudyConfig(seed=7))
    print(f"world built in {time.time()-start:.1f}s "
          f"({len(world.corpus)} pages, {len(world.corpus.domains())} domains)")
    for experiment_id in ("fig1", "fig2", "fig3", "fig4", "table1", "table2", "table3"):
        t0 = time.time()
        __, text = run_experiment(experiment_id, world)
        (out / f"{experiment_id}.txt").write_text(text + "\n")
        print(f"[{experiment_id}] {time.time()-t0:.1f}s")
        print(text)
        print()

if __name__ == "__main__":
    main()
