"""Perf smoke gate for the search-substrate fast path.

Measures the *speedup ratio* between each fast path and its in-tree
reference implementation — search vs ``search_reference`` (cache-cold),
``score_terms`` vs ``score_terms_reference``, and the warm snippet cache
vs ``extract_snippet`` — and fails if any live ratio has regressed more
than 25% below the ratio recorded in ``BENCH_search.json``.

Comparing ratios rather than wall-clock times makes the gate
hardware-independent: a slow CI box slows the fast path and the
reference alike, so the quotient is stable where absolute numbers are
not.

The gate also measures the **sharded index build** at a 10x corpus: a
sequential single-index build vs a 4-shard, 4-builder parallel build
(:func:`repro.search.sharding.build_shard_indexes`).  That quotient is
*not* hardware-independent — it scales with cores — so the gate is
CPU-aware: on a box with >= 4 usable CPUs the parallel build must beat
the sequential one by ``PARALLEL_BUILD_FLOOR``; on narrower boxes (where
fork+pickle overhead makes true speedup impossible) the live quotient is
compared against the recorded one only when both were measured at the
same CPU count, and reported informationally otherwise.

Usage:
    python tools/perf_smoke.py            # gate against recorded ratios
    python tools/perf_smoke.py --update   # re-record ratios after a
                                          # deliberate perf change
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.entities import build_default_catalog
from repro.entities.queries import (
    comparison_queries,
    intent_queries,
    ranking_queries,
)
from repro.search.bm25 import BM25Scorer
from repro.search.engine import SearchEngine
from repro.search.index import InvertedIndex
from repro.search.sharding import build_shard_indexes, partition_pages
from repro.search.snippets import SnippetCache, extract_snippet
from repro.search.tokenize import tokenize
from repro.webgraph.corpus import CorpusConfig, CorpusGenerator
from repro.webgraph.domains import build_default_registry

BENCH_JSON = REPO_ROOT / "BENCH_search.json"

#: A live ratio below ``TOLERANCE`` x the recorded ratio fails the gate.
TOLERANCE = 0.75

#: Per-metric overrides.  ``resident_warm_query`` crosses a process
#: boundary per shard, so on narrow boxes the scatter and the workers
#: share cores and the quotient is far noisier than the in-process
#: microbenchmarks — the gate still catches a protocol regression
#: (those cost integer factors) without tripping on scheduler jitter.
METRIC_TOLERANCES = {"resident_warm_query": 0.45}

#: Timing repeats; best-of-N suppresses scheduler noise.
REPEATS = 5

#: Sharded-build measurement: shards/builders and the corpus multiplier
#: (10x the default page density) the acceptance target is stated at.
BUILD_SHARDS = 4
BUILD_SCALE = 10.0

#: On a box with >= PARALLEL_BUILD_MIN_CPUS usable CPUs the parallel
#: build must be at least PARALLEL_BUILD_FLOOR x faster than the
#: sequential single-index build.  Below that the floor cannot
#: physically hold (the builders share cores) and the gate falls back
#: to comparing against the recorded same-CPU-count quotient.
PARALLEL_BUILD_MIN_CPUS = 4
PARALLEL_BUILD_FLOOR = 2.0

#: Build timing repeats (each repeat is seconds, not microseconds).
BUILD_REPEATS = 2


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _workload(catalog) -> list[str]:
    texts = [q.text for q in ranking_queries(catalog, count=15, seed=7)]
    texts += [
        q.text
        for q in comparison_queries(catalog, n_popular=5, n_niche=5, seed=7)
    ]
    texts += [q.text for q in intent_queries(catalog, count=8, seed=7)]
    return texts


def _best_of(fn, repeats: int = REPEATS) -> float:
    """Best-of-``repeats`` wall time of ``fn()``, in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_ratios() -> dict[str, float]:
    catalog = build_default_catalog()
    registry = build_default_registry()
    corpus = CorpusGenerator(registry, catalog, CorpusConfig(seed=7)).generate()
    engine = SearchEngine(corpus, registry)
    scorer = BM25Scorer(engine.index)
    texts = _workload(catalog)
    term_lists = [tokenize(text) for text in texts]
    pages = corpus.pages[:200]

    def search_fast():
        # Cold ranking: the query cache must not absorb the work.
        engine.clear_query_cache()
        for text in texts:
            engine.search(text, 10)

    def search_reference():
        for text in texts:
            engine.search_reference(text, 10)

    def bm25_fast():
        for terms in term_lists:
            scorer.score_terms(terms)

    def bm25_reference():
        for terms in term_lists:
            scorer.score_terms_reference(terms)

    snippet_cache = SnippetCache()
    query = texts[0]
    for page in pages:  # warm the sentence cache: steady-state behaviour
        snippet_cache.extract(page, query)

    def snippets_fast():
        for page in pages:
            snippet_cache.extract(page, query)

    def snippets_reference():
        for page in pages:
            extract_snippet(page, query)

    # The resident executor: every scatter crosses a pipe to a warm
    # worker process.  Gated against the same reference pipeline as
    # organic_search, so the quotient prices the RPC overhead — a
    # protocol regression (chattier frames, lock convoys on the pipe)
    # drags it down even when the in-process fast path is untouched.
    from repro.search.shardexec import ResidentShardedSearchEngine

    resident = ResidentShardedSearchEngine(corpus, registry, shards=4)

    def resident_fast():
        # Cold ranking: the query cache must not absorb the scatter.
        resident.clear_query_cache()
        for text in texts:
            resident.search(text, 10)

    # Warm every path once before timing.
    search_fast(), search_reference(), bm25_fast(), bm25_reference()
    resident_fast()
    try:
        return {
            "organic_search": _best_of(search_reference)
            / _best_of(search_fast),
            "bm25_score_terms": _best_of(bm25_reference) / _best_of(bm25_fast),
            "snippet_extraction": _best_of(snippets_reference)
            / _best_of(snippets_fast),
            "resident_warm_query": _best_of(search_reference)
            / _best_of(resident_fast),
        }
    finally:
        resident.close()


def measure_sharded_build() -> dict:
    """Sequential single-index vs parallel sharded build at 10x corpus."""
    catalog = build_default_catalog()
    registry = build_default_registry()
    corpus = CorpusGenerator(
        registry,
        catalog,
        CorpusConfig(seed=7, pages_per_volume_unit=2.0 * BUILD_SCALE),
    ).generate()
    pages = corpus.pages
    groups = partition_pages(pages, BUILD_SHARDS)

    def sequential_single():
        index = InvertedIndex()
        index.add_all(pages)
        index.freeze()

    def parallel_sharded():
        build_shard_indexes(
            groups, builders=BUILD_SHARDS, executor="process"
        )

    sequential_single(), parallel_sharded()  # warm allocators/pools once
    sequential = _best_of(sequential_single, BUILD_REPEATS)
    parallel = _best_of(parallel_sharded, BUILD_REPEATS)
    return {
        "speedup": sequential / parallel,
        "sequential_s": round(sequential, 3),
        "parallel_s": round(parallel, 3),
        "cpus": _usable_cpus(),
        "corpus_pages": len(pages),
        "corpus_scale": BUILD_SCALE,
        "shards": BUILD_SHARDS,
        "builders": BUILD_SHARDS,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update",
        action="store_true",
        help="record the measured ratios into BENCH_search.json",
    )
    args = parser.parse_args(argv)

    payload = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
    live = measure_ratios()
    live_build = measure_sharded_build()

    if args.update:
        payload["smoke_ratios"] = {
            name: round(ratio, 2) for name, ratio in live.items()
        }
        gate = dict(live_build)
        gate["speedup"] = round(gate["speedup"], 2)
        payload.setdefault("sharded_build", {})["gate"] = gate
        BENCH_JSON.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        for name, ratio in sorted(live.items()):
            print(f"recorded {name}: {ratio:.2f}x")
        print(
            f"recorded sharded_build_speedup: {gate['speedup']:.2f}x "
            f"({gate['cpus']} cpus, {gate['corpus_pages']} pages)"
        )
        return 0

    recorded = payload.get("smoke_ratios")
    if not recorded:
        print("no smoke_ratios in BENCH_search.json; run with --update first")
        return 2

    failures = []
    for name, floor_ratio in sorted(recorded.items()):
        measured = live.get(name)
        if measured is None:
            failures.append(f"{name}: recorded but not measured")
            continue
        threshold = METRIC_TOLERANCES.get(name, TOLERANCE) * floor_ratio
        verdict = "ok" if measured >= threshold else "REGRESSED"
        print(
            f"{name}: {measured:.2f}x live vs {floor_ratio:.2f}x recorded "
            f"(floor {threshold:.2f}x) {verdict}"
        )
        if measured < threshold:
            failures.append(
                f"{name}: {measured:.2f}x < {threshold:.2f}x "
                f"(>25% below recorded {floor_ratio:.2f}x)"
            )

    # Sharded-build gate: CPU-aware (see module docstring).
    speedup = live_build["speedup"]
    cpus = live_build["cpus"]
    recorded_build = payload.get("sharded_build", {}).get("gate")
    if cpus >= PARALLEL_BUILD_MIN_CPUS:
        verdict = "ok" if speedup >= PARALLEL_BUILD_FLOOR else "REGRESSED"
        print(
            f"sharded_build_speedup: {speedup:.2f}x live on {cpus} cpus "
            f"(absolute floor {PARALLEL_BUILD_FLOOR:.2f}x) {verdict}"
        )
        if speedup < PARALLEL_BUILD_FLOOR:
            failures.append(
                f"sharded_build_speedup: {speedup:.2f}x < "
                f"{PARALLEL_BUILD_FLOOR:.2f}x on {cpus} cpus"
            )
    elif recorded_build and recorded_build.get("cpus") == cpus:
        floor = TOLERANCE * recorded_build["speedup"]
        verdict = "ok" if speedup >= floor else "REGRESSED"
        print(
            f"sharded_build_speedup: {speedup:.2f}x live vs "
            f"{recorded_build['speedup']:.2f}x recorded on {cpus} cpus "
            f"(floor {floor:.2f}x) {verdict}"
        )
        if speedup < floor:
            failures.append(
                f"sharded_build_speedup: {speedup:.2f}x < {floor:.2f}x "
                f"(>25% below recorded {recorded_build['speedup']:.2f}x)"
            )
    else:
        # Too few CPUs for the absolute floor and no same-width
        # baseline: report without gating rather than compare quotients
        # measured under different parallelism.
        print(
            f"sharded_build_speedup: {speedup:.2f}x live on {cpus} cpus "
            "(informational: no same-CPU-count baseline recorded)"
        )

    if failures:
        print("perf smoke FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("perf smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
