"""Tests for the AEO toolkit: audits, interventions, recommendations."""

import pytest

from repro.aeo.audit import BrandAuditor
from repro.aeo.interventions import ContentPlan, InterventionLab
from repro.aeo.recommendations import recommend
from repro.core import StudyConfig, World
from repro.webgraph.domains import SourceType


@pytest.fixture(scope="module")
def world():
    return World.build(StudyConfig(seed=7))


@pytest.fixture(scope="module")
def auditor(world):
    return BrandAuditor(world)


NICHE_TARGET = "smartwatches:coros"
POPULAR_TARGET = "smartwatches:apple_watch"


@pytest.fixture(scope="module")
def niche_audit(auditor):
    return auditor.audit(NICHE_TARGET, auditor.default_queries(NICHE_TARGET, 20, 1))


@pytest.fixture(scope="module")
def popular_audit(auditor):
    return auditor.audit(POPULAR_TARGET, auditor.default_queries(POPULAR_TARGET, 20, 1))


class TestBrandAuditor:
    def test_rates_are_fractions(self, niche_audit):
        assert 0.0 <= niche_audit.serp_coverage <= 1.0
        for mapping in (
            niche_audit.ai_citation_coverage,
            niche_audit.ai_ranking_presence,
            niche_audit.prior_injected_share,
        ):
            for value in mapping.values():
                assert 0.0 <= value <= 1.0

    def test_query_count_recorded(self, niche_audit):
        assert niche_audit.query_count == 20

    def test_popular_brand_has_more_presence_than_niche(self, popular_audit, niche_audit):
        assert (
            popular_audit.mean_ai_citation_coverage()
            > niche_audit.mean_ai_citation_coverage()
        )
        assert popular_audit.serp_coverage >= niche_audit.serp_coverage

    def test_popular_brand_is_always_ranked(self, popular_audit):
        # Apple Watch should appear in essentially every synthesized
        # smartwatch ranking.
        for engine, presence in popular_audit.ai_ranking_presence.items():
            assert presence >= 0.75, engine

    def test_empty_workload_rejected(self, auditor):
        with pytest.raises(ValueError):
            auditor.audit(NICHE_TARGET, [])

    def test_audit_is_deterministic(self, auditor, niche_audit):
        again = auditor.audit(
            NICHE_TARGET, auditor.default_queries(NICHE_TARGET, 20, 1)
        )
        assert again == niche_audit


class TestContentPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            ContentPlan(name="x", entity_id=NICHE_TARGET, page_count=0)
        with pytest.raises(ValueError):
            ContentPlan(name="x", entity_id=NICHE_TARGET, age_days=-1)
        with pytest.raises(ValueError):
            ContentPlan(name="x", entity_id=NICHE_TARGET, stance=2.0)
        with pytest.raises(ValueError):
            ContentPlan(name="x", entity_id=NICHE_TARGET, quality=1.5)


class TestInterventionLab:
    @pytest.fixture(scope="class")
    def lab(self, world):
        return InterventionLab(world)

    def test_apply_grows_corpus_only(self, lab, world):
        plan = ContentPlan(name="test camp", entity_id=NICHE_TARGET, page_count=3)
        counterfactual = lab.apply(plan)
        assert len(counterfactual.corpus) == len(world.corpus) + 3
        assert len(world.corpus.by_entity(NICHE_TARGET)) + 3 == len(
            counterfactual.corpus.by_entity(NICHE_TARGET)
        )

    def test_priors_are_pinned_to_base_corpus(self, lab, world):
        plan = ContentPlan(name="prior pin", entity_id=NICHE_TARGET, page_count=8)
        counterfactual = lab.apply(plan)
        base_llm = world.engines["GPT-4o"].llm
        new_llm = counterfactual.engines["GPT-4o"].llm
        assert base_llm.knowledge.confidence(NICHE_TARGET) == pytest.approx(
            new_llm.knowledge.confidence(NICHE_TARGET)
        )

    def test_injected_pages_are_retrievable(self, lab):
        plan = ContentPlan(
            name="retrieval check", entity_id=NICHE_TARGET,
            page_count=4, age_days=3,
        )
        counterfactual = lab.apply(plan)
        injected_urls = {
            p.url for p in counterfactual.corpus.pages if "aeo-retrieval-check" in p.url
        }
        assert len(injected_urls) == 4
        results = counterfactual.search_engine.search(
            "Coros smartwatch review", k=20
        )
        assert any(r.url in injected_urls for r in results)

    def test_brand_plan_uses_brand_domain(self, lab, world):
        plan = ContentPlan(
            name="brand camp", entity_id=NICHE_TARGET,
            source_type=SourceType.BRAND, page_count=2,
        )
        counterfactual = lab.apply(plan)
        brand_domain = world.catalog.get(NICHE_TARGET).brand_domain
        injected = [p for p in counterfactual.corpus.pages if "aeo-brand-camp" in p.url]
        assert injected
        assert all(p.domain == brand_domain for p in injected)

    def test_unknown_placement_domain_rejected(self, lab):
        plan = ContentPlan(
            name="bad", entity_id=NICHE_TARGET, domains=("nonexistent.example",)
        )
        with pytest.raises(ValueError, match="unknown placement"):
            lab.apply(plan)

    def test_evaluate_requires_single_entity(self, lab):
        plans = [
            ContentPlan(name="a", entity_id=NICHE_TARGET),
            ContentPlan(name="b", entity_id=POPULAR_TARGET),
        ]
        with pytest.raises(ValueError, match="same entity"):
            lab.evaluate(plans)

    def test_fresh_earned_beats_stale_earned(self, lab):
        plans = [
            ContentPlan(
                name="fresh earned", entity_id=NICHE_TARGET,
                source_type=SourceType.EARNED, page_count=5, age_days=7,
            ),
            ContentPlan(
                name="stale earned", entity_id=NICHE_TARGET,
                source_type=SourceType.EARNED, page_count=5, age_days=500,
            ),
        ]
        fresh, stale = lab.evaluate(plans, query_count=20, query_seed=1)
        assert fresh.ai_citation_lift() >= stale.ai_citation_lift()
        assert fresh.ai_citation_lift() > 0.0


class TestRecommendations:
    def test_plan_renders(self, niche_audit):
        plan = recommend(niche_audit)
        assert plan.recommendations
        text = plan.render()
        assert "Action plan for Coros" in text
        assert "1." in text

    def test_niche_plan_targets_retrieval(self, niche_audit):
        plan = recommend(niche_audit)
        assert any("Win retrieval" in r.action for r in plan.recommendations)

    def test_popular_plan_targets_reputation(self, popular_audit):
        plan = recommend(popular_audit)
        actions = " ".join(r.action for r in plan.recommendations)
        assert "fresh" in actions.lower()

    def test_priorities_are_sequential(self, niche_audit):
        plan = recommend(niche_audit)
        assert [r.priority for r in plan.recommendations] == list(
            range(1, len(plan.recommendations) + 1)
        )

    def test_mismatched_outcome_entity_rejected(self, world, popular_audit):
        lab = InterventionLab(world)
        outcome = lab.evaluate(
            [ContentPlan(name="x", entity_id=NICHE_TARGET, page_count=1)],
            query_count=3,
        )[0]
        with pytest.raises(ValueError, match="audited entity"):
            recommend(popular_audit, [outcome])

    def test_measured_lifts_reported(self, world, niche_audit):
        lab = InterventionLab(world)
        outcomes = lab.evaluate(
            [ContentPlan(name="camp", entity_id=NICHE_TARGET, page_count=4)],
            query_count=10, query_seed=1,
        )
        plan = recommend(outcomes[0].baseline, outcomes)
        assert "camp" in plan.measured_lifts


class TestQueryPatternAnalyzer:
    @pytest.fixture(scope="class")
    def pattern_report(self, world):
        from repro.aeo.patterns import QueryPatternAnalyzer

        return QueryPatternAnalyzer(world).analyze(NICHE_TARGET, queries_per_segment=6)

    def test_all_segments_present(self, pattern_report):
        from repro.aeo.patterns import SEGMENTS

        assert set(pattern_report.segments) == set(SEGMENTS)

    def test_presence_values_are_fractions(self, pattern_report):
        for value in pattern_report.ai_presence_by_segment().values():
            assert 0.0 <= value <= 1.0

    def test_weakest_segments(self, pattern_report):
        weakest = pattern_report.weakest_segments(2)
        assert len(weakest) == 2
        presence = pattern_report.ai_presence_by_segment()
        assert presence[weakest[0]] <= min(
            presence[s] for s in presence if s not in weakest
        )

    def test_render(self, pattern_report):
        text = pattern_report.render()
        assert "Query-pattern presence for Coros" in text
        assert "weakest AI segments" in text
        for segment in ("informational", "ranking", "comparison"):
            assert segment in text

    def test_comparison_segment_always_names_the_entity(self, world):
        from repro.aeo.patterns import QueryPatternAnalyzer

        analyzer = QueryPatternAnalyzer(world)
        for query in analyzer._comparison_segment(NICHE_TARGET, 6, seed=0):
            assert "Coros" in query.text
            assert NICHE_TARGET in query.entities
            assert len(query.entities) == 2

    def test_invalid_count(self, world):
        from repro.aeo.patterns import QueryPatternAnalyzer

        with pytest.raises(ValueError):
            QueryPatternAnalyzer(world).analyze(NICHE_TARGET, queries_per_segment=0)

    def test_determinism(self, world, pattern_report):
        from repro.aeo.patterns import QueryPatternAnalyzer

        again = QueryPatternAnalyzer(world).analyze(NICHE_TARGET, queries_per_segment=6)
        # NaN mean ages (segments with no dated sources) break dataclass
        # equality; compare the rendered views and the presence numbers.
        assert again.render() == pattern_report.render()
        assert again.ai_presence_by_segment() == pattern_report.ai_presence_by_segment()
