"""Integration tests: the paper's shape claims, end to end.

These are the most important tests in the repository: each asserts one of
the qualitative findings of the paper against a full (reduced-scale) run
of the corresponding experiment.  Absolute magnitudes are not asserted —
the substrate is synthetic — only orderings, separations and directions.
"""

import math

from repro.engines.registry import AI_ENGINE_NAMES
from repro.entities.intents import Intent
from repro.webgraph.domains import SourceType


class TestFigure1Shape:
    def test_overlap_is_uniformly_low(self, fig1):
        for system in AI_ENGINE_NAMES:
            assert fig1.mean_overlap[system] < 0.35, system

    def test_gpt4o_has_the_lowest_overlap(self, fig1):
        ordered = fig1.ordered_by_overlap()
        assert ordered[0][0] == "GPT-4o"

    def test_perplexity_has_the_highest_overlap(self, fig1):
        ordered = fig1.ordered_by_overlap()
        assert ordered[-1][0] == "Perplexity"


class TestFigure2Shape:
    def test_niche_raises_overlap_for_most_models(self, fig2):
        raised = sum(
            fig2.overlap_shift(system) > 0
            for system in AI_ENGINE_NAMES
            if system in fig2.vs_google_popular.mean_overlap
        )
        assert raised >= 3

    def test_gpt4o_stays_lowest_on_popular_and_near_lowest_on_niche(self, fig2):
        popular = fig2.vs_google_popular.mean_overlap
        assert min(popular, key=popular.get) == "GPT-4o"
        niche_sorted = sorted(
            fig2.vs_google_niche.mean_overlap.items(), key=lambda kv: kv[1]
        )
        assert "GPT-4o" in {name for name, __ in niche_sorted[:2]}

    def test_unique_domain_ratio_declines_for_niche(self, fig2):
        assert (
            fig2.vs_google_niche.unique_domain_ratio
            < fig2.vs_google_popular.unique_domain_ratio
        )

    def test_cross_model_overlap_rises_for_niche(self, fig2):
        assert (
            fig2.vs_google_niche.cross_model_overlap
            > fig2.vs_google_popular.cross_model_overlap
        )


class TestFigure3Shape:
    def test_google_is_the_most_balanced(self, fig3):
        # Google's max type share is the smallest among all systems: its
        # composition is the least concentrated.
        def concentration(system):
            return max(fig3.overall[system].values())
        assert concentration("Google") == min(
            concentration(s) for s in fig3.systems
        )

    def test_google_has_substantial_social(self, fig3):
        assert fig3.share("Google", SourceType.SOCIAL) > 0.15

    def test_ai_engines_favor_earned_over_social(self, fig3):
        for system in AI_ENGINE_NAMES:
            assert fig3.share(system, SourceType.EARNED) > fig3.share(
                system, SourceType.SOCIAL
            ), system

    def test_claude_is_most_earned_concentrated_with_no_social(self, fig3):
        claude_earned = fig3.share("Claude", SourceType.EARNED)
        for system in AI_ENGINE_NAMES:
            assert claude_earned >= fig3.share(system, SourceType.EARNED)
        assert fig3.share("Claude", SourceType.SOCIAL) < 0.02

    def test_all_ai_engines_swing_to_brand_for_transactional(self, fig3):
        for system in AI_ENGINE_NAMES:
            transactional = fig3.intent_share(
                Intent.TRANSACTIONAL, system, SourceType.BRAND
            )
            consideration = fig3.intent_share(
                Intent.CONSIDERATION, system, SourceType.BRAND
            )
            assert transactional > consideration + 0.2, system

    def test_google_profile_varies_least_across_intents(self, fig3):
        def intent_spread(system):
            spreads = []
            for source_type in SourceType:
                values = [
                    fig3.intent_share(intent, system, source_type)
                    for intent in Intent
                ]
                spreads.append(max(values) - min(values))
            return max(spreads)
        google_spread = intent_spread("Google")
        larger = sum(
            intent_spread(system) > google_spread for system in AI_ENGINE_NAMES
        )
        assert larger >= 3

    def test_claude_skips_most_informational_and_transactional(self, fig3):
        # "Claude initially returned no links for most informational and
        # transactional queries" — visible as empty answers.
        assert fig3.empty_answers["Claude"] > fig3.empty_answers["GPT-4o"]
        assert fig3.empty_answers["Claude"] > 30  # of ~60 inf+trans queries


class TestFigure4Shape:
    def test_ai_engines_cite_newer_content_than_google(self, fig4):
        for report in (fig4.electronics, fig4.automotive):
            google = report.median_age_days["Google"]
            for system in ("GPT-4o", "Claude", "Perplexity"):
                assert report.median_age_days[system] < google, (
                    report.vertical_group, system,
                )

    def test_automotive_is_older_than_electronics(self, fig4):
        for system in ("Google", "GPT-4o", "Claude", "Perplexity"):
            assert (
                fig4.automotive.median_age_days[system]
                > fig4.electronics.median_age_days[system]
            ), system

    def test_claude_is_among_the_freshest(self, fig4):
        order = [name for name, __ in fig4.electronics.ordered_by_median()]
        assert order.index("Claude") <= 2

    def test_ages_are_finite_and_positive(self, fig4):
        for report in (fig4.electronics, fig4.automotive):
            for system, age in report.median_age_days.items():
                assert not math.isnan(age), system
                assert age > 0

    def test_extraction_rate_reflects_markup_mix(self, fig4):
        # ~10% of pages expose no date; extraction succeeds on the rest
        # (sampling noise per engine pulls individual rates a bit lower).
        for report in (fig4.electronics, fig4.automotive):
            for system, rate in report.extraction_rate.items():
                assert 0.7 <= rate <= 1.0, (system, rate)


class TestTable1Shape:
    def test_niche_is_more_order_sensitive_than_popular(self, table1):
        assert table1.ss_normal["niche"] > table1.ss_normal["popular"] + 0.5

    def test_strict_grounding_stabilizes_both(self, table1):
        for setting in ("popular", "niche"):
            assert table1.ss_strict[setting] < table1.ss_normal[setting]

    def test_strict_stabilizes_niche_below_popular(self, table1):
        assert table1.ss_strict["niche"] < table1.ss_strict["popular"]

    def test_esi_exceeds_shuffle_for_niche(self, table1):
        assert table1.esi["niche"] > table1.ss_normal["popular"]

    def test_niche_esi_is_the_largest_cell(self, table1):
        cells = [
            table1.ss_normal["popular"], table1.ss_strict["popular"],
            table1.esi["popular"], table1.ss_strict["niche"],
        ]
        assert table1.esi["niche"] > max(cells)


class TestTable2Shape:
    def test_popular_tau_exceeds_niche(self, table2):
        assert table2.tau_normal["popular"] > table2.tau_normal["niche"] + 0.2
        assert table2.tau_strict["popular"] > table2.tau_strict["niche"]

    def test_strict_grounding_raises_tau(self, table2):
        for setting in ("popular", "niche"):
            assert table2.tau_strict[setting] > table2.tau_normal[setting]

    def test_popular_levels(self, table2):
        assert table2.tau_normal["popular"] > 0.8
        assert table2.tau_strict["popular"] > 0.9

    def test_niche_normal_is_genuinely_inconsistent(self, table2):
        assert table2.tau_normal["niche"] < 0.7


class TestTable3Shape:
    def test_mainstream_makes_are_consistently_cited(self, table3):
        assert table3.representative["Toyota"] < 0.15
        assert table3.representative["Honda"] < 0.15

    def test_peripheral_makes_frequently_miss(self, table3):
        assert table3.representative["Cadillac"] > 0.25
        assert table3.representative["Infiniti"] > 0.35

    def test_overall_miss_rate_near_paper(self, table3):
        # Paper: "16% of ranked entities lacked snippet support."
        assert 0.08 <= table3.overall_miss_rate <= 0.3

    def test_gradient_mainstream_to_peripheral(self, table3):
        mainstream = (
            table3.representative["Toyota"]
            + table3.representative["Honda"]
            + table3.representative["Kia"]
        ) / 3
        peripheral = (
            table3.representative["Cadillac"]
            + table3.representative["Infiniti"]
        ) / 2
        assert peripheral > mainstream + 0.25


class TestCrossSystemStructure:
    def test_ai_engines_agree_more_with_each_other_than_with_google(self, study):
        """'AI and traditional search operate over distinct source
        landscapes' (Section 2.1): the generative engines' mutual overlap
        must exceed their overlap with Google."""
        from repro.analysis.overlap import system_pair_overlap
        from repro.entities.queries import ranking_queries

        world = study.world
        queries = ranking_queries(world.catalog, count=80, seed=world.config.seed + 11)
        answers = {
            name: engine.answer_all(queries)
            for name, engine in world.engines.items()
        }
        matrix = system_pair_overlap(answers)
        ai_pairs = [
            value for (a, b), value in matrix.items()
            if a != "Google" and b != "Google"
        ]
        google_pairs = [
            value for (a, b), value in matrix.items()
            if a == "Google" or b == "Google"
        ]
        assert min(ai_pairs) > min(google_pairs)
        assert sum(ai_pairs) / len(ai_pairs) > sum(google_pairs) / len(google_pairs)
