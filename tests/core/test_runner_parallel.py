"""Parallel-vs-sequential determinism and evidence-cache behaviour.

The runner's acceptance bar: for any worker count and executor kind,
every experiment's result — object and rendered text — is byte-identical
to the sequential run.  The evidence cache's bar: Tables 1, 2 and 3 on a
shared world never retrieve the same evidence context twice.
"""

import pytest

from repro.core.config import StudyConfig, default_workers
from repro.core.report import render_fig1, render_fig3, render_table3
from repro.core.runner import EvidenceCache, RunStats, StudyRunner
from repro.core.study import ComparativeStudy


def _fresh(world) -> None:
    """Reset every memo so each timed/counted run starts cold."""
    world.clear_caches()


def _study(world, workers, executor="process") -> ComparativeStudy:
    return ComparativeStudy(
        world, runner=StudyRunner(world, workers=workers, executor=executor)
    )


class TestParallelDeterminism:
    @pytest.mark.parametrize(
        "method, renderer",
        [
            ("domain_overlap_ranking", render_fig1),
            ("source_typology", render_fig3),
            ("citation_misses", render_table3),
        ],
        ids=["fig1", "fig3", "table3"],
    )
    def test_workers4_matches_sequential(self, tiny_world, method, renderer):
        _fresh(tiny_world)
        sequential = getattr(_study(tiny_world, 1), method)()
        _fresh(tiny_world)
        parallel = getattr(_study(tiny_world, 4), method)()
        assert sequential == parallel
        assert renderer(sequential) == renderer(parallel)

    def test_thread_executor_matches_sequential(self, tiny_world):
        _fresh(tiny_world)
        sequential = _study(tiny_world, 1).domain_overlap_ranking()
        _fresh(tiny_world)
        threaded = _study(tiny_world, 3, "thread").domain_overlap_ranking()
        assert sequential == threaded
        assert render_fig1(sequential) == render_fig1(threaded)

    def test_fig2_subsetting_survives_parallelism(self, tiny_world):
        # Fig 2 slices the answer lists by query position after the
        # fan-out, so chunk reassembly order is load-bearing here.
        _fresh(tiny_world)
        sequential = _study(tiny_world, 1).domain_overlap_popular_niche()
        _fresh(tiny_world)
        parallel = _study(tiny_world, 4).domain_overlap_popular_niche()
        assert sequential == parallel


def _explode_chunk(engine_name, queries, attempt=1):
    """Module-level (picklable) stand-in for a crashing worker chunk."""
    raise RuntimeError("chunk exploded")


class TestWorkerWorldHandshake:
    """_WORKER_WORLD must never outlive the pool, even on failure."""

    def _queries(self, world):
        from repro.entities.queries import ranking_queries

        return ranking_queries(world.catalog, count=4, seed=23)

    def test_reset_after_successful_run(self, tiny_world):
        import repro.core.runner as runner_module

        runner = StudyRunner(tiny_world, workers=2, executor="process")
        runner.answers(self._queries(tiny_world))
        assert runner_module._WORKER_WORLD is None

    def test_reset_when_a_worker_chunk_raises(self, tiny_world, monkeypatch):
        import repro.core.runner as runner_module

        monkeypatch.setattr(runner_module, "_answer_chunk", _explode_chunk)
        runner = StudyRunner(tiny_world, workers=2, executor="process")
        with pytest.raises(RuntimeError, match="chunk exploded"):
            runner.answers(self._queries(tiny_world))
        assert runner_module._WORKER_WORLD is None

    def test_reset_when_pool_creation_fails(self, tiny_world, monkeypatch):
        import repro.core.runner as runner_module

        def _no_pool(*args, **kwargs):
            raise OSError("process limit reached")

        monkeypatch.setattr(runner_module, "ProcessPoolExecutor", _no_pool)
        runner = StudyRunner(tiny_world, workers=2, executor="process")
        with pytest.raises(OSError, match="process limit reached"):
            runner.answers(self._queries(tiny_world))
        assert runner_module._WORKER_WORLD is None


class TestWorkerExceptionPropagation:
    """A raising chunk must fail fast (no resilience) and say where.

    The error names the originating engine and query ids under both
    executors; with a resilience context installed the same failure is
    contained instead (see tests/resilience/test_containment.py).
    """

    def _queries(self, world):
        from repro.entities.queries import ranking_queries

        return ranking_queries(world.catalog, count=4, seed=29)

    def _assert_attributed(self, excinfo, world, queries):
        error = excinfo.value
        assert error.engine in world.engines
        assert set(error.query_ids) <= {q.id for q in queries}
        message = str(error)
        assert error.engine in message
        assert error.query_ids[0] in message
        assert "chunk exploded" in message

    def test_process_executor_reports_engine_and_queries(
        self, tiny_world, monkeypatch
    ):
        import repro.core.runner as runner_module

        monkeypatch.setattr(runner_module, "_answer_chunk", _explode_chunk)
        runner = StudyRunner(tiny_world, workers=2, executor="process")
        queries = self._queries(tiny_world)
        with pytest.raises(runner_module.ChunkExecutionError) as excinfo:
            runner.answers(queries)
        self._assert_attributed(excinfo, tiny_world, queries)

    def test_thread_executor_reports_engine_and_queries(
        self, tiny_world, monkeypatch
    ):
        import repro.core.runner as runner_module

        def _explode(world, engine_name, queries, attempt=1):
            raise RuntimeError("chunk exploded")

        monkeypatch.setattr(runner_module, "_execute_chunk", _explode)
        runner = StudyRunner(tiny_world, workers=2, executor="thread")
        queries = self._queries(tiny_world)
        with pytest.raises(runner_module.ChunkExecutionError) as excinfo:
            runner.answers(queries)
        self._assert_attributed(excinfo, tiny_world, queries)


class TestExecutorDegradation:
    """No-fork platforms degrade to threads — loudly and visibly."""

    def _queries(self, world):
        from repro.entities.queries import ranking_queries

        return ranking_queries(world.catalog, count=4, seed=31)

    def test_no_fork_degrades_to_threads_with_warning(
        self, tiny_world, monkeypatch
    ):
        import repro.core.runner as runner_module

        monkeypatch.setattr(runner_module, "_fork_available", lambda: False)
        runner = StudyRunner(tiny_world, workers=2, executor="process")
        with pytest.warns(RuntimeWarning, match="fork start method unavailable"):
            answers = runner.answers(self._queries(tiny_world))
        assert set(answers) == set(tiny_world.engines)
        assert runner.stats.effective_executor == "thread"

        from repro.core.report import render_stats

        study = ComparativeStudy(tiny_world, runner=runner)
        assert "(effective: thread)" in render_stats(study)

    def test_fork_platform_records_effective_process(self, tiny_world):
        runner = StudyRunner(tiny_world, workers=2, executor="process")
        runner.answers(self._queries(tiny_world))
        assert runner.stats.effective_executor == "process"

        from repro.core.report import render_stats

        study = ComparativeStudy(tiny_world, runner=runner)
        assert "(effective:" not in render_stats(study)


class TestEvidenceCache:
    def test_tables_share_contexts_with_zero_duplicate_retrievals(
        self, tiny_world
    ):
        _fresh(tiny_world)
        study = ComparativeStudy(tiny_world)
        stats = tiny_world.evidence_cache.stats

        study.perturbation_sensitivity()
        misses_after_t1 = stats.misses
        assert misses_after_t1 > 0
        # Every retrieval so far went into the cache exactly once.
        assert misses_after_t1 == len(tiny_world.evidence_cache)

        # Table 2 revisits Table 1's queries: all hits, no new retrievals.
        study.pairwise_agreement()
        assert stats.misses == misses_after_t1
        assert stats.hits > 0

        # Table 3 brings its own queries, each retrieved exactly once.
        study.citation_misses()
        assert stats.misses == len(tiny_world.evidence_cache)

        # Re-running Table 1 is now retrieval-free.
        misses_before_rerun = stats.misses
        study.perturbation_sensitivity()
        assert stats.misses == misses_before_rerun

    def test_results_identical_on_warm_cache(self, tiny_world):
        _fresh(tiny_world)
        study = ComparativeStudy(tiny_world)
        cold = study.perturbation_sensitivity()
        warm = study.perturbation_sensitivity()
        assert cold == warm

    def test_failing_compute_leaves_cache_clean(self):
        # A compute that raises must not count a miss it never delivered,
        # nor leave a poisoned entry; the next lookup computes afresh.
        cache = EvidenceCache()

        def boom():
            raise ValueError("retrieval fell over")

        with pytest.raises(ValueError, match="retrieval fell over"):
            cache.get_or_compute("k", boom)
        assert "k" not in cache
        assert cache.stats.misses == 0
        assert cache.stats.hits == 0

        assert cache.get_or_compute("k", lambda: 7) == 7
        assert cache.stats.misses == 1
        assert cache.stats.misses == len(cache)

    def test_racing_failing_compute_does_not_poison_winner(self):
        # Regression for the miss-then-hit bug: a failing compute racing
        # a succeeding one used to pre-count its miss, breaking the
        # misses == len(cache) invariant the sharing tests rely on.
        # The barrier sits *inside* the computes, so every thread has
        # already probed (and missed) before any compute can finish —
        # the failures genuinely race the successful insert.
        import threading

        cache = EvidenceCache()
        n_fail = 3
        barrier = threading.Barrier(n_fail + 1)
        errors = []

        def failing_compute():
            barrier.wait()
            raise ValueError("injected")

        def failing():
            try:
                cache.get_or_compute("k", failing_compute)
            except ValueError as exc:
                errors.append(exc)

        def succeeding_compute():
            barrier.wait()
            return 42

        threads = [threading.Thread(target=failing) for _ in range(n_fail)] + [
            threading.Thread(
                target=lambda: cache.get_or_compute("k", succeeding_compute)
            )
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(errors) == n_fail
        assert cache.get_or_compute("k", lambda: -1) == 42  # not poisoned
        assert cache.stats.misses == 1 == len(cache)
        assert cache.stats.hits == 1  # the final probe only

    def test_limit_evicts_fifo(self):
        cache = EvidenceCache(limit=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("c", lambda: 3)  # evicts "a"
        assert "a" not in cache and "b" in cache and "c" in cache
        assert cache.stats.evictions == 1
        assert cache.get_or_compute("a", lambda: 4) == 4  # recomputed

    def test_rejects_bad_limit(self):
        with pytest.raises(ValueError):
            EvidenceCache(limit=0)


class TestRunnerConfig:
    def test_workers_one_uses_no_pool(self, tiny_world):
        runner = StudyRunner(tiny_world, workers=1)
        runner.answers([])
        phases = runner.stats.phases["(ad hoc)"]
        assert phases.pool_tasks == 0

    def test_rejects_bad_workers_and_executor(self, tiny_world):
        with pytest.raises(ValueError):
            StudyRunner(tiny_world, workers=0)
        with pytest.raises(ValueError):
            StudyRunner(tiny_world, executor="carrier-pigeon")
        with pytest.raises(ValueError):
            StudyConfig(workers=0)
        with pytest.raises(ValueError):
            StudyConfig(executor="carrier-pigeon")

    def test_runner_defaults_come_from_config(self, tiny_world):
        runner = StudyRunner(tiny_world)
        assert runner.workers == tiny_world.config.workers
        assert runner.executor == tiny_world.config.executor

    def test_default_workers_reads_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert default_workers() == 4
        assert StudyConfig().workers == 4
        monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
        assert default_workers() == 1

    def test_workers_do_not_affect_config_equality(self):
        # The determinism invariant, reflected in config identity.
        assert StudyConfig(workers=1) == StudyConfig(workers=4)


class TestRunStats:
    def test_phases_accumulate(self):
        stats = RunStats(workers=2, executor="thread")
        with stats.phase("fig1"):
            stats.count_pool_work(queries=100, pool_tasks=10)
        with stats.phase("fig1"):
            stats.count_pool_work(queries=50, pool_tasks=5)
        phase = stats.phases["fig1"]
        assert phase.queries == 150
        assert phase.pool_tasks == 15
        assert phase.seconds >= 0.0
        assert stats.total_queries == 150

    def test_runner_counts_queries(self, tiny_world):
        from repro.entities.queries import ranking_queries

        _fresh(tiny_world)
        queries = ranking_queries(tiny_world.catalog, count=4, seed=99)
        runner = StudyRunner(tiny_world, workers=2)
        with runner.stats.phase("probe"):
            answers = runner.answers(queries)
        assert set(answers) == set(tiny_world.engines)
        assert all(len(a) == 4 for a in answers.values())
        phase = runner.stats.phases["probe"]
        assert phase.queries == 4 * len(tiny_world.engines)
        assert phase.pool_tasks > 0

    def test_render_stats_smoke(self, tiny_world):
        from repro.core.report import render_stats

        study = ComparativeStudy(tiny_world)
        text = render_stats(study)
        assert "workers=" in text
        assert "evidence cache" in text


def test_engine_cache_counters(tiny_world):
    from repro.entities.queries import ranking_queries

    _fresh(tiny_world)
    engine = tiny_world.engines["GPT-4o"]
    query = ranking_queries(tiny_world.catalog, count=1, seed=41)[0]
    engine.answer(query)
    engine.answer(query)
    assert engine.cache_stats() == (1, 1)
    engine.clear_cache()
    assert engine.cache_stats() == (0, 0)
