"""Shared small-scale study fixtures for core tests.

The world is built once per session; the study runs every experiment at a
reduced (but non-trivial) scale so the paper's shape claims can be
asserted as integration tests.
"""

import pytest

from repro.core import StudyConfig, World
from repro.core.config import WorkloadSizes
from repro.core.study import ComparativeStudy

SMALL_SIZES = WorkloadSizes(
    ranking_queries=120,
    comparison_popular=30,
    comparison_niche=30,
    intent_queries=90,
    freshness_queries_per_vertical=18,
    perturbation_queries=10,
    perturbation_runs=5,
    pairwise_queries=6,
    citation_queries=40,
)


#: Smallest workload the validators accept — used by the runner
#: determinism suite and the empty-cell regression tests, where the
#: point is the execution path, not the paper's shape claims.
TINY_SIZES = WorkloadSizes(
    ranking_queries=20,
    comparison_popular=6,
    comparison_niche=6,
    intent_queries=12,
    freshness_queries_per_vertical=5,
    perturbation_queries=3,
    perturbation_runs=2,
    pairwise_queries=2,
    citation_queries=6,
)


@pytest.fixture(scope="session")
def world():
    return World.build(StudyConfig(seed=7, sizes=SMALL_SIZES))


@pytest.fixture(scope="session")
def tiny_world():
    return World.build(StudyConfig(seed=13, corpus_scale=0.35, sizes=TINY_SIZES))


@pytest.fixture(scope="session")
def study(world):
    return ComparativeStudy(world)


@pytest.fixture(scope="session")
def fig1(study):
    return study.domain_overlap_ranking()


@pytest.fixture(scope="session")
def fig2(study):
    return study.domain_overlap_popular_niche()


@pytest.fixture(scope="session")
def fig3(study):
    return study.source_typology()


@pytest.fixture(scope="session")
def fig4(study):
    return study.freshness()


@pytest.fixture(scope="session")
def table1(study):
    return study.perturbation_sensitivity()


@pytest.fixture(scope="session")
def table2(study):
    return study.pairwise_agreement()


@pytest.fixture(scope="session")
def table3(study):
    return study.citation_misses()
