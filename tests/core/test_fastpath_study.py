"""Study-level determinism of the search-substrate caches.

The query-result and snippet caches are world-level memos under the same
sharing contract as the evidence cache (see ``repro.core.runner``): a
warm cache must never change an experiment's output, under any worker
count or executor, and ``render_stats`` must surface their counters.
"""

import pytest

from repro.core.config import StudyConfig
from repro.core.report import render_fig1, render_fig3, render_stats
from repro.core.runner import StudyRunner
from repro.core.study import ComparativeStudy


def _study(world, workers, executor="process") -> ComparativeStudy:
    return ComparativeStudy(
        world, runner=StudyRunner(world, workers=workers, executor=executor)
    )


class TestCacheDeterminism:
    def test_cold_and_warm_aggregates_identical(self, tiny_world):
        tiny_world.clear_caches()
        cold = _study(tiny_world, 1).source_typology()
        # Second run hits every memo layer; output must not move.
        warm = _study(tiny_world, 1).source_typology()
        assert cold == warm
        assert render_fig3(cold) == render_fig3(warm)

    def test_clear_caches_resets_every_counter(self, tiny_world):
        _study(tiny_world, 1).domain_overlap_ranking()
        tiny_world.clear_caches()
        engine = tiny_world.search_engine
        assert engine.query_cache_stats().lookups == 0
        assert engine.snippet_cache.counters().lookups == 0
        assert tiny_world.evidence_cache.stats.lookups == 0
        for answer_engine in tiny_world.engines.values():
            assert answer_engine.cache_stats() == (0, 0)

    def test_query_and_snippet_caches_fill_during_a_study(self, tiny_world):
        tiny_world.clear_caches()
        _study(tiny_world, 1).domain_overlap_ranking()
        engine = tiny_world.search_engine
        query_stats = engine.query_cache_stats()
        snippet_stats = engine.snippet_cache.counters()
        assert query_stats.misses > 0
        assert snippet_stats.misses > 0
        # Five engines revisit the same corpus pages: hits dominate.
        assert snippet_stats.hits > snippet_stats.misses

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_warm_caches_under_workers_match_sequential(
        self, tiny_world, executor
    ):
        tiny_world.clear_caches()
        sequential = _study(tiny_world, 1).domain_overlap_ranking()
        # Caches deliberately left warm: pooled runs must agree with the
        # sequential result whether they hit or recompute.
        pooled = _study(tiny_world, 3, executor).domain_overlap_ranking()
        assert sequential == pooled
        assert render_fig1(sequential) == render_fig1(pooled)

    def test_thread_pool_shares_one_query_cache(self, tiny_world):
        tiny_world.clear_caches()
        study = _study(tiny_world, 3, "thread")
        study.domain_overlap_ranking()
        first = tiny_world.search_engine.query_cache_stats()
        study.domain_overlap_ranking()
        second = tiny_world.search_engine.query_cache_stats()
        # The whole second pass is engine-memo or query-cache hits; the
        # shared query cache never re-misses an analyzed query.
        assert second.misses == first.misses
        assert second.size == first.size

    def test_repro_workers_env_flows_into_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert StudyConfig().workers == 3


class TestStatsRendering:
    def test_render_stats_surfaces_cache_counters(self, tiny_world):
        tiny_world.clear_caches()
        study = _study(tiny_world, 1)
        study.source_typology()
        text = render_stats(study)
        assert "query cache:" in text
        assert "snippet cache:" in text
        assert "hit rate" in text
