"""Tests for study configuration and world assembly."""

import pytest

from repro.core import StudyConfig, World
from repro.core.config import WorkloadSizes
from repro.engines.registry import ENGINE_NAMES


class TestConfig:
    def test_defaults_follow_paper(self):
        sizes = WorkloadSizes()
        assert sizes.ranking_queries == 1000
        assert sizes.comparison_popular == sizes.comparison_niche == 100
        assert sizes.intent_queries == 300
        assert sizes.perturbation_runs == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSizes(ranking_queries=0)
        with pytest.raises(ValueError):
            StudyConfig(corpus_scale=0)


class TestWorld:
    def test_assembly(self, world):
        assert set(world.engines) == set(ENGINE_NAMES)
        assert len(world.corpus) > 1000
        assert len(world.catalog) > 100
        assert world.google().name == "Google"
        assert "Google" not in world.ai_engines()

    def test_reference_llm_matches_gpt4o(self, world):
        gpt = world.engines["GPT-4o"]
        assert world.reference_llm.config.seed == gpt.llm.config.seed
        # Same pre-training: identical beliefs.
        entity = "suvs:toyota"
        assert (
            world.reference_llm.knowledge.prior_mean(entity)
            == gpt.llm.knowledge.prior_mean(entity)
        )

    def test_rebuild_identical(self, world):
        rebuilt = World.build(world.config)
        assert len(rebuilt.corpus) == len(world.corpus)
        assert [p.url for p in rebuilt.corpus.pages[:100]] == [
            p.url for p in world.corpus.pages[:100]
        ]

    def test_corpus_scale(self):
        small = World.build(StudyConfig(seed=1, corpus_scale=0.5))
        default = World.build(StudyConfig(seed=1))
        assert len(small.corpus) < len(default.corpus)
