"""Tests for the multi-seed replication module."""

import pytest

from repro.core.config import WorkloadSizes
from repro.core.replication import (
    DEFAULT_CLAIMS,
    DEFAULT_METRICS,
    ClaimCheck,
    MetricExtractor,
    replicate,
)

TINY_SIZES = WorkloadSizes(
    ranking_queries=40,
    comparison_popular=6,
    comparison_niche=6,
    intent_queries=12,
    freshness_queries_per_vertical=8,
    perturbation_queries=6,
    perturbation_runs=3,
    pairwise_queries=3,
    citation_queries=15,
)

SMALL_METRICS = (
    DEFAULT_METRICS[0],  # fig1 gpt4o overlap
    DEFAULT_METRICS[1],  # fig1 perplexity overlap
    DEFAULT_METRICS[3],  # table1 niche - popular SSn
)
SMALL_CLAIMS = (DEFAULT_CLAIMS[0], DEFAULT_CLAIMS[2])


@pytest.fixture(scope="module")
def report():
    return replicate(
        seeds=[11, 12],
        metrics=SMALL_METRICS,
        claims=SMALL_CLAIMS,
        sizes=TINY_SIZES,
        bootstrap_resamples=100,
    )


class TestReplicate:
    def test_per_seed_metrics_recorded(self, report):
        assert set(report.per_seed_metrics) == {11, 12}
        for values in report.per_seed_metrics.values():
            assert set(values) == {m.name for m in SMALL_METRICS}

    def test_intervals_bracket_the_estimates(self, report):
        for name, interval in report.metric_intervals.items():
            assert interval.low <= interval.estimate <= interval.high, name

    def test_claim_counts_in_range(self, report):
        for name in report.claim_counts:
            assert 0 <= report.claim_counts[name] <= report.replicate_count
            assert 0.0 <= report.claim_rate(name) <= 1.0

    def test_headline_claims_hold_at_tiny_scale(self, report):
        # Even at a tiny scale, the overlap-gap and order-sensitivity
        # claims should replicate on both seeds.
        assert report.claim_counts[DEFAULT_CLAIMS[0].name] == 2

    def test_render(self, report):
        text = report.render()
        assert "Replication over 2 seeds" in text
        assert "claims" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            replicate(seeds=[])
        with pytest.raises(ValueError):
            replicate(seeds=[1, 1])

    def test_single_seed_degenerate_interval(self):
        single = replicate(
            seeds=[11], metrics=SMALL_METRICS[:1], claims=(),
            sizes=TINY_SIZES,
        )
        interval = single.metric_intervals[SMALL_METRICS[0].name]
        assert interval.low == interval.high == interval.estimate

    def test_custom_metric_and_claim(self):
        metric = MetricExtractor("constant", lambda study: 1.0)
        claim = ClaimCheck("constant is positive", lambda m: m["constant"] > 0)
        result = replicate(
            seeds=[11], metrics=(metric,), claims=(claim,), sizes=TINY_SIZES
        )
        assert result.claim_counts["constant is positive"] == 1
        assert result.metric_intervals["constant"].estimate == 1.0
