"""Tests for the experiment registry, renderers, and calibration index."""

import pytest

from repro.core.calibration import CALIBRATION_NOTES, calibration_report
from repro.core.experiments import EXPERIMENTS, run_experiment
from repro.core.report import (
    render_fig1,
    render_fig2,
    render_fig3,
    render_fig4,
    render_table1,
    render_table2,
    render_table3,
)


class TestExperimentRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(EXPERIMENTS) == {
            "fig1", "fig2", "fig3", "fig4", "table1", "table2", "table3",
        }

    def test_specs_are_complete(self):
        for spec in EXPERIMENTS.values():
            assert spec.paper_artifact
            assert spec.description
            assert spec.workload
            assert callable(spec.runner)
            assert callable(spec.renderer)

    def test_unknown_experiment_raises(self, world):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig9", world)

    def test_run_experiment_returns_result_and_text(self, world):
        result, text = run_experiment("fig3", world)
        assert result is not None
        assert "Figure 3" in text


class TestRenderers:
    def test_fig1(self, fig1):
        text = render_fig1(fig1)
        assert "Figure 1" in text
        assert "GPT-4o" in text and "Perplexity" in text
        assert "%" in text

    def test_fig2(self, fig2):
        text = render_fig2(fig2)
        assert "Figure 2" in text
        assert "unique-domain ratio" in text
        assert "cross-model overlap" in text

    def test_fig3(self, fig3):
        text = render_fig3(fig3)
        assert "Figure 3" in text
        for intent in ("informational", "consideration", "transactional"):
            assert intent in text

    def test_fig4(self, fig4):
        text = render_fig4(fig4)
        assert "Consumer Electronics" in text
        assert "Automotive" in text
        assert "median" in text

    def test_table1(self, table1):
        text = render_table1(table1)
        assert "Popular Entities" in text and "Niche Entities" in text
        assert "SS (Normal)" in text and "ESI" in text

    def test_table2(self, table2):
        text = render_table2(table2)
        assert "tau (Normal)" in text and "tau (Strict)" in text

    def test_table3(self, table3):
        text = render_table3(table3)
        assert "Toyota" in text and "Infiniti" in text
        assert "overall miss rate" in text


class TestCalibration:
    def test_notes_are_complete(self):
        assert len(CALIBRATION_NOTES) >= 8
        for note in CALIBRATION_NOTES:
            assert note.parameter and note.location
            assert note.constrained_by and note.rationale

    def test_report_renders(self):
        text = calibration_report()
        assert "Calibration index" in text
        assert "EXPOSURE_ALPHA" in text
