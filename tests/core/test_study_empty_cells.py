"""Regression: empty table cells aggregate to NaN, not ZeroDivisionError.

Tiny workloads (or aggressive filters) can drop every query in a
setting — each query either lost its evidence context or had fewer than
two candidates.  The Table 1/2 aggregations used to divide by the empty
cell's length; they must instead report NaN, and the renderers must
still produce a table.
"""

import math

from repro.core.report import render_table1, render_table2
from repro.core.study import ComparativeStudy
from repro.llm.context import ContextWindow


def _study_with_empty_evidence(world) -> ComparativeStudy:
    """A study whose every evidence retrieval comes back empty."""
    study = ComparativeStudy(world)
    # Shadow the bound method on the instance: with no context, every
    # query in every setting is filtered out of Tables 1 and 2.
    study._evidence_context = lambda query, depth=10: ContextWindow([])
    return study


class TestEmptyCells:
    def test_perturbation_sensitivity_yields_nan(self, tiny_world):
        result = _study_with_empty_evidence(tiny_world).perturbation_sensitivity()
        for cell in (result.ss_normal, result.ss_strict, result.esi):
            assert set(cell) == {"popular", "niche"}
            assert all(math.isnan(value) for value in cell.values())

    def test_pairwise_agreement_yields_nan(self, tiny_world):
        result = _study_with_empty_evidence(tiny_world).pairwise_agreement()
        for cell in (result.tau_normal, result.tau_strict):
            assert set(cell) == {"popular", "niche"}
            assert all(math.isnan(value) for value in cell.values())

    def test_renderers_survive_nan_cells(self, tiny_world):
        study = _study_with_empty_evidence(tiny_world)
        assert "Table 1" in render_table1(study.perturbation_sensitivity())
        assert "Table 2" in render_table2(study.pairwise_agreement())

    def test_populated_cells_are_finite(self, tiny_world):
        # Control: with real evidence the same tiny workload fills
        # every cell with a finite number.
        tiny_world.evidence_cache.clear()
        result = ComparativeStudy(tiny_world).perturbation_sensitivity()
        for cell in (result.ss_normal, result.ss_strict, result.esi):
            assert all(math.isfinite(value) for value in cell.values())
