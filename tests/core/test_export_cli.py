"""Tests for JSON export and the command-line interface."""

import dataclasses
import enum
import json

import pytest

from repro.__main__ import main as cli_main
from repro.core.export import result_to_dict, results_to_json


class Color(enum.Enum):
    RED = "red"


@dataclasses.dataclass(frozen=True)
class Inner:
    values: tuple[float, ...]
    label: Color


@dataclasses.dataclass(frozen=True)
class Outer:
    name: str
    inner: Inner
    mapping: dict[Color, float]
    maybe: float


class TestExport:
    def test_nested_dataclasses(self):
        result = Outer(
            name="x",
            inner=Inner(values=(1.0, 2.0), label=Color.RED),
            mapping={Color.RED: 0.5},
            maybe=float("nan"),
        )
        payload = result_to_dict(result)
        assert payload == {
            "name": "x",
            "inner": {"values": [1.0, 2.0], "label": "red"},
            "mapping": {"red": 0.5},
            "maybe": None,  # NaN -> null
        }

    def test_round_trips_through_json(self):
        result = Outer(
            name="y", inner=Inner(values=(3.0,), label=Color.RED),
            mapping={}, maybe=1.5,
        )
        text = results_to_json({"exp": result})
        assert json.loads(text)["exp"]["name"] == "y"

    def test_non_dataclass_rejected(self):
        with pytest.raises(TypeError):
            result_to_dict(42)

    def test_unserializable_value_rejected(self):
        @dataclasses.dataclass
        class Bad:
            thing: object

        with pytest.raises(TypeError, match="cannot serialize"):
            result_to_dict(Bad(thing=object()))

    def test_real_study_result_exports(self, fig1):
        payload = result_to_dict(fig1)
        assert "mean_overlap" in payload
        json.dumps(payload)  # fully serializable

    def test_sets_become_sorted_lists(self):
        @dataclasses.dataclass
        class WithSet:
            items: frozenset

        payload = result_to_dict(WithSet(items=frozenset({"b", "a"})))
        assert payload["items"] == ["a", "b"]


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "table3" in out

    def test_calibration(self, capsys):
        assert cli_main(["calibration"]) == 0
        assert "EXPOSURE_ALPHA" in capsys.readouterr().out

    def test_unknown_experiment_is_an_error(self, capsys):
        assert cli_main(["run", "fig9"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_with_json_archive(self, tmp_path, capsys):
        target = tmp_path / "out" / "results.json"
        code = cli_main(["run", "table3", "--json", str(target)])
        assert code == 0
        assert "Table 3" in capsys.readouterr().out
        payload = json.loads(target.read_text())
        assert "table3" in payload
        assert "overall_miss_rate" in payload["table3"]

    def test_world_command(self, capsys):
        assert cli_main(["world", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "pages:" in out and "engines:" in out

    def test_snapshot_command(self, tmp_path, capsys):
        target = tmp_path / "web.jsonl"
        assert cli_main(["snapshot", str(target), "--seed", "3"]) == 0
        assert "archived" in capsys.readouterr().out
        from repro.webgraph.serialize import load_corpus
        assert len(load_corpus(target)) > 1000

    def test_ask_command(self, capsys):
        assert cli_main(["ask", "most reliable electric cars"]) == 0
        out = capsys.readouterr().out
        assert "vertical: electric_cars" in out
        for engine in ("Google", "GPT-4o", "Claude", "Gemini", "Perplexity"):
            assert f"=== {engine} ===" in out

    def test_ask_with_explicit_vertical_and_full(self, capsys):
        assert cli_main(["ask", "what to choose", "--vertical", "hotels", "--full"]) == 0
        out = capsys.readouterr().out
        assert "vertical: hotels" in out

    def test_ask_uninferrable_vertical_errors(self, capsys):
        assert cli_main(["ask", "zzz qqq vvv"]) == 2
        assert "could not infer" in capsys.readouterr().err

    def test_replicate_command(self, capsys, monkeypatch):
        import repro.core.replication as replication_module
        from repro.core.replication import ReplicationReport
        from repro.stats.bootstrap import BootstrapResult

        def fake_replicate(seeds):
            return ReplicationReport(
                seeds=tuple(seeds),
                per_seed_metrics={s: {"m": 1.0} for s in seeds},
                metric_intervals={
                    "m": BootstrapResult(1.0, 1.0, 1.0, 0.95, 0)
                },
                claim_counts={"claim": len(seeds)},
            )

        monkeypatch.setattr(replication_module, "replicate", fake_replicate)
        assert cli_main(["replicate", "--seeds", "5", "6"]) == 0
        out = capsys.readouterr().out
        assert "Replication over 2 seeds" in out
        assert "2/2  claim" in out
