"""Tests for the typology analysis."""

import pytest

from repro.analysis.typology import typology_by_intent
from repro.engines.base import Answer, Citation
from repro.entities.intents import Intent
from repro.entities.queries import Query, QueryKind
from repro.webgraph.domains import SourceType


def query(qid, intent):
    return Query(
        id=qid, text="some query", kind=QueryKind.INTENT,
        vertical="smartphones", intent=intent,
    )


def answer(engine, qid, domains):
    return Answer(
        engine=engine, query_id=qid, text="t",
        citations=tuple(Citation(url=f"https://{d}/x", domain=d) for d in domains),
    )


class TestTypologyByIntent:
    def test_shares_sum_to_one(self):
        queries = [query("q0", Intent.INFORMATIONAL)]
        answers = {"E": [answer("E", "q0", ["techradar.com", "reddit.com", "bestbuy.com"])]}
        report = typology_by_intent(answers, queries)
        assert sum(report.overall["E"].values()) == pytest.approx(1.0)
        assert report.share("E", SourceType.EARNED) == pytest.approx(1 / 3)
        assert report.share("E", SourceType.SOCIAL) == pytest.approx(1 / 3)
        assert report.share("E", SourceType.BRAND) == pytest.approx(1 / 3)

    def test_per_intent_segmentation(self):
        queries = [query("q0", Intent.INFORMATIONAL), query("q1", Intent.TRANSACTIONAL)]
        answers = {
            "E": [
                answer("E", "q0", ["techradar.com"]),
                answer("E", "q1", ["bestbuy.com"]),
            ]
        }
        report = typology_by_intent(answers, queries)
        assert report.intent_share(Intent.INFORMATIONAL, "E", SourceType.EARNED) == 1.0
        assert report.intent_share(Intent.TRANSACTIONAL, "E", SourceType.BRAND) == 1.0
        assert report.intent_share(Intent.CONSIDERATION, "E", SourceType.EARNED) == 0.0

    def test_empty_answers_counted(self):
        queries = [query("q0", Intent.INFORMATIONAL)]
        answers = {"E": [Answer(engine="E", query_id="q0", text="t")]}
        report = typology_by_intent(answers, queries)
        assert report.empty_answers["E"] == 1
        assert report.citation_counts["E"] == 0
        assert sum(report.overall["E"].values()) == 0.0

    def test_misaligned_lengths_raise(self):
        queries = [query("q0", Intent.INFORMATIONAL)]
        with pytest.raises(ValueError, match="answers for"):
            typology_by_intent({"E": []}, queries)

    def test_classifier_injection(self):
        class AlwaysSocial:
            def classify(self, domain, page=None):
                return SourceType.SOCIAL

        queries = [query("q0", Intent.CONSIDERATION)]
        answers = {"E": [answer("E", "q0", ["techradar.com"])]}
        report = typology_by_intent(answers, queries, classifier=AlwaysSocial())
        assert report.share("E", SourceType.SOCIAL) == 1.0
