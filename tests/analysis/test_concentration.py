"""Tests for the domain-concentration analysis and the overlap matrix."""

import pytest

from repro.analysis.concentration import domain_concentration
from repro.analysis.overlap import system_pair_overlap
from repro.engines.base import Answer, Citation


def answer(engine, qid, domains):
    return Answer(
        engine=engine, query_id=qid, text="t",
        citations=tuple(Citation(url=f"https://{d}/x/{i}", domain=d) for i, d in enumerate(domains)),
    )


class TestDomainConcentration:
    def test_single_domain_is_fully_concentrated(self):
        report = domain_concentration(
            {"E": [answer("E", "q0", ["techradar.com"] * 4)]}
        )
        profile = report.engines["E"]
        assert profile.hhi == pytest.approx(1.0)
        assert profile.distinct_domains == 1
        assert profile.top_domains[0] == ("techradar.com", 1.0)

    def test_uniform_spread_has_low_hhi(self):
        domains = [f"site{i}.com" for i in range(10)]
        report = domain_concentration({"E": [answer("E", "q0", domains)]})
        assert report.engines["E"].hhi == pytest.approx(0.1)

    def test_type_shares(self):
        report = domain_concentration(
            {"E": [answer("E", "q0", ["techradar.com", "reddit.com"])]}
        )
        shares = report.engines["E"].type_shares
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_top_share(self):
        report = domain_concentration(
            {"E": [answer("E", "q0", ["a.com", "a.com", "b.com", "c.com"])]}
        )
        assert report.engines["E"].top_share(1) == pytest.approx(0.5)
        assert report.engines["E"].top_share(3) == pytest.approx(1.0)

    def test_empty_engine(self):
        report = domain_concentration({"E": [Answer(engine="E", query_id="q", text="t")]})
        profile = report.engines["E"]
        assert profile.citation_count == 0
        assert profile.hhi == 0.0
        assert profile.top_domains == ()

    def test_invalid_top_k(self):
        with pytest.raises(ValueError):
            domain_concentration({}, top_k=0)

    def test_ordered_by_concentration(self):
        report = domain_concentration(
            {
                "Tight": [answer("Tight", "q0", ["a.com", "a.com"])],
                "Loose": [answer("Loose", "q0", ["a.com", "b.com"])],
            }
        )
        assert [name for name, __ in report.ordered_by_concentration()] == [
            "Tight", "Loose",
        ]


class TestSystemPairOverlap:
    def test_matrix_covers_all_pairs(self):
        answers = {
            "A": [answer("A", "q0", ["x.com"])],
            "B": [answer("B", "q0", ["x.com"])],
            "C": [answer("C", "q0", ["y.com"])],
        }
        matrix = system_pair_overlap(answers)
        assert set(matrix) == {("A", "B"), ("A", "C"), ("B", "C")}
        assert matrix[("A", "B")] == pytest.approx(1.0)
        assert matrix[("A", "C")] == 0.0

    def test_misaligned_raises(self):
        with pytest.raises(ValueError, match="misaligned"):
            system_pair_overlap({"A": [], "B": [answer("B", "q0", ["x.com"])]})

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            system_pair_overlap({"A": [], "B": []})

    def test_averages_over_queries(self):
        answers = {
            "A": [answer("A", "q0", ["x.com"]), answer("A", "q1", ["x.com"])],
            "B": [answer("B", "q0", ["x.com"]), answer("B", "q1", ["z.com"])],
        }
        matrix = system_pair_overlap(answers)
        assert matrix[("A", "B")] == pytest.approx(0.5)


class TestOverlapByVertical:
    def test_per_vertical_segmentation(self):
        from repro.analysis.overlap import domain_overlap_by_vertical
        from repro.entities.queries import Query, QueryKind

        queries = [
            Query(id="q0", text="a", kind=QueryKind.RANKING, vertical="suvs"),
            Query(id="q1", text="b", kind=QueryKind.RANKING, vertical="hotels"),
            Query(id="q2", text="c", kind=QueryKind.RANKING, vertical="suvs"),
        ]
        answers = {
            "Google": [
                answer("Google", "q0", ["a.com"]),
                answer("Google", "q1", ["h.com"]),
                answer("Google", "q2", ["a.com"]),
            ],
            "AI": [
                answer("AI", "q0", ["a.com"]),   # suvs: overlap 1
                answer("AI", "q1", ["z.com"]),   # hotels: overlap 0
                answer("AI", "q2", ["b.com"]),   # suvs: overlap 0
            ],
        }
        reports = domain_overlap_by_vertical(answers, queries)
        assert set(reports) == {"suvs", "hotels"}
        assert reports["suvs"].mean_overlap["AI"] == 0.5
        assert reports["hotels"].mean_overlap["AI"] == 0.0
        assert reports["suvs"].query_count == 2

    def test_misaligned_rejected(self):
        from repro.analysis.overlap import domain_overlap_by_vertical
        from repro.entities.queries import Query, QueryKind

        queries = [Query(id="q0", text="a", kind=QueryKind.RANKING, vertical="suvs")]
        with pytest.raises(ValueError, match="answers for"):
            domain_overlap_by_vertical({"Google": []}, queries)

    def test_end_to_end_on_real_workload(self):
        from repro.analysis.overlap import domain_overlap_by_vertical
        from repro.core import StudyConfig, World
        from repro.entities.queries import ranking_queries

        world = World.build(StudyConfig(seed=7))
        queries = ranking_queries(world.catalog, count=40, seed=1)
        answers = {
            name: engine.answer_all(queries)
            for name, engine in world.engines.items()
        }
        reports = domain_overlap_by_vertical(answers, queries)
        assert len(reports) == 10  # the ten consumer topics
        for report in reports.values():
            for value in report.mean_overlap.values():
                assert 0.0 <= value <= 1.0
