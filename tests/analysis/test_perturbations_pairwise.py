"""Tests for perturbations, pairwise consistency and citation misses."""

import random

import pytest

from repro.analysis.citations import citation_miss_rates
from repro.analysis.pairwise import pairwise_consistency, pairwise_win_counts
from repro.analysis.perturbations import (
    PerturbationKind,
    entity_swap_injection,
    sensitivity,
    snippet_shuffle,
)
from repro.core import StudyConfig, World
from repro.llm.context import ContextWindow, EvidenceSnippet
from repro.llm.model import GroundingMode, RankedAnswer
from repro.llm.rng import derive_seed


@pytest.fixture(scope="module")
def world():
    return World.build(StudyConfig(seed=7))


def make_context(catalog, entities, stance=0.4):
    return ContextWindow(
        EvidenceSnippet(
            text=f"{catalog.get(e).name} proved reliable in our assessment.",
            url=f"https://site{i}.com/p",
            domain=f"site{i}.com",
            entity_stance={e: stance},
        )
        for i, e in enumerate(entities)
    )


SUVS = ["suvs:toyota", "suvs:honda", "suvs:kia", "suvs:mazda", "suvs:subaru"]


class TestSnippetShuffle:
    def test_preserves_multiset(self, world):
        ctx = make_context(world.catalog, SUVS)
        shuffled = snippet_shuffle(ctx, random.Random(0))
        assert sorted(s.url for s in ctx) == sorted(s.url for s in shuffled)

    def test_changes_order_with_high_probability(self, world):
        ctx = make_context(world.catalog, SUVS)
        changed = sum(
            snippet_shuffle(ctx, random.Random(i))[0].url != ctx[0].url
            for i in range(20)
        )
        assert changed >= 10


class TestEntitySwapInjection:
    def test_swaps_stances_between_entities(self, world):
        ctx = make_context(world.catalog, SUVS[:2], stance=0.9)
        # Force the pair to swap by using exactly two candidates.
        swapped = entity_swap_injection(
            ctx, world.catalog, SUVS[:2], random.Random(0), swap_fraction=1.0
        )
        # Snippet 0 supported toyota before; after the swap it must
        # support honda (identities exchanged).
        before = ctx[0].entity_stance
        after = swapped[0].entity_stance
        assert set(before) != set(after)
        assert set(after) <= set(SUVS[:2])

    def test_swaps_surface_forms_in_text(self, world):
        ctx = make_context(world.catalog, ["suvs:toyota", "suvs:honda"])
        swapped = entity_swap_injection(
            ctx, world.catalog, ["suvs:toyota", "suvs:honda"],
            random.Random(0), swap_fraction=1.0,
        )
        toyota_snips_before = [s.text for s in ctx if "Toyota" in s.text]
        assert toyota_snips_before
        # Every pre-swap Toyota mention became Honda.
        for snippet in swapped:
            if "proved reliable" in snippet.text and "Honda" in snippet.text:
                break
        else:
            pytest.fail("swap did not rewrite surface forms")

    def test_preserves_context_shape(self, world):
        ctx = make_context(world.catalog, SUVS)
        swapped = entity_swap_injection(ctx, world.catalog, SUVS, random.Random(1))
        assert len(swapped) == len(ctx)
        assert [s.url for s in swapped] == [s.url for s in ctx]

    def test_invalid_fraction(self, world):
        ctx = make_context(world.catalog, SUVS)
        with pytest.raises(ValueError):
            entity_swap_injection(ctx, world.catalog, SUVS, random.Random(0), swap_fraction=0.0)


class TestSensitivity:
    def test_delta_avg_and_determinism(self, world):
        ctx = make_context(world.catalog, SUVS)
        result_a = sensitivity(
            world.reference_llm, "best suvs", SUVS, ctx,
            PerturbationKind.SNIPPET_SHUFFLE, runs=5, seed=3,
        )
        result_b = sensitivity(
            world.reference_llm, "best suvs", SUVS, ctx,
            PerturbationKind.SNIPPET_SHUFFLE, runs=5, seed=3,
        )
        assert result_a.deltas == result_b.deltas
        assert result_a.delta_avg >= 0.0
        assert len(result_a.deltas) == 5

    def test_entity_swap_requires_catalog(self, world):
        ctx = make_context(world.catalog, SUVS)
        with pytest.raises(ValueError, match="catalog"):
            sensitivity(
                world.reference_llm, "q", SUVS, ctx,
                PerturbationKind.ENTITY_SWAP, runs=2,
            )

    def test_zero_runs_rejected(self, world):
        ctx = make_context(world.catalog, SUVS)
        with pytest.raises(ValueError):
            sensitivity(
                world.reference_llm, "q", SUVS, ctx,
                PerturbationKind.SNIPPET_SHUFFLE, runs=0,
            )

    def test_seed_changes_draws_but_stays_deterministic(self, world):
        """The derive_rng seeding: per-seed streams differ, reruns don't."""
        law = [e.id for e in world.catalog.in_vertical("family_law_toronto")][:10]
        ctx = ContextWindow(
            EvidenceSnippet(
                text=f"{world.catalog.get(e).name} assessment",
                url=f"https://site{i}.com/p",
                domain=f"site{i}.com",
                entity_stance={e: -0.8 + 1.6 * i / (len(law) - 1)},
            )
            for i, e in enumerate(law)
        )
        def run(seed):
            return sensitivity(
                world.reference_llm, "top toronto family law firms", law, ctx,
                PerturbationKind.SNIPPET_SHUFFLE, runs=6, seed=seed,
            )
        assert run(3).deltas == run(3).deltas
        assert run(3).deltas != run(4).deltas

    def test_strict_mode_is_more_stable_than_normal_for_niche(self, world):
        law = [e.id for e in world.catalog.in_vertical("family_law_toronto")][:10]
        # Distinct stances: under strict grounding the evidence then fully
        # determines the order; identical stances would be a pure tie.
        ctx = ContextWindow(
            EvidenceSnippet(
                text=f"{world.catalog.get(e).name} assessment",
                url=f"https://site{i}.com/p",
                domain=f"site{i}.com",
                entity_stance={e: -0.8 + 1.6 * i / (len(law) - 1)},
            )
            for i, e in enumerate(law)
        )
        normal = sensitivity(
            world.reference_llm, "top toronto family law firms", law, ctx,
            PerturbationKind.SNIPPET_SHUFFLE, mode=GroundingMode.NORMAL, runs=8,
        )
        strict = sensitivity(
            world.reference_llm, "top toronto family law firms", law, ctx,
            PerturbationKind.SNIPPET_SHUFFLE, mode=GroundingMode.STRICT, runs=8,
        )
        assert strict.delta_avg < normal.delta_avg


class TestPairwise:
    def test_win_counts_total(self, world):
        ctx = make_context(world.catalog, SUVS)
        wins = pairwise_win_counts(world.reference_llm, "best suvs", SUVS, ctx)
        n = len(SUVS)
        assert sum(wins.values()) == n * (n - 1) // 2
        assert set(wins) == set(SUVS)

    def test_requires_two_candidates(self, world):
        with pytest.raises(ValueError):
            pairwise_win_counts(
                world.reference_llm, "q", ["suvs:kia"], make_context(world.catalog, [])
            )

    def test_consistency_result_fields(self, world):
        ctx = make_context(world.catalog, SUVS)
        result = pairwise_consistency(world.reference_llm, "best suvs", SUVS, ctx)
        assert -1.0 <= result.tau <= 1.0
        assert len(result.holistic_ranking) == len(SUVS)
        assert result.mode is GroundingMode.NORMAL

    def test_strict_popular_tournament_is_highly_consistent(self, world):
        # Well-supported popular entities: strict pairwise shares the
        # holistic noise, so tau should be near 1.
        ctx = ContextWindow(
            EvidenceSnippet(
                text="s", url=f"https://s{i}{j}.com/p", domain=f"s{i}{j}.com",
                # derive_seed, not builtin hash(): stances must not vary
                # with PYTHONHASHSEED across interpreter runs (DET004).
                entity_stance={e: 0.2 + 0.1 * (derive_seed(e) % 5)},
            )
            for j, e in enumerate(SUVS)
            for i in range(3)
        )
        result = pairwise_consistency(
            world.reference_llm, "best suvs strict", SUVS, ctx, GroundingMode.STRICT
        )
        assert result.tau > 0.7


class TestCitationMissRates:
    def make_answer(self, ranking, cited):
        return RankedAnswer(
            query="q",
            mode=GroundingMode.NORMAL,
            ranking=tuple(ranking),
            scores={e: 0.0 for e in ranking},
            citations={
                e: (("https://x.com/1",) if e in cited else ()) for e in ranking
            },
        )

    def test_rates(self):
        answers = [
            self.make_answer(["a", "b"], cited={"a"}),
            self.make_answer(["a", "b"], cited={"a", "b"}),
        ]
        report = citation_miss_rates(answers)
        assert report.miss_rate["a"] == 0.0
        assert report.miss_rate["b"] == 0.5
        assert report.overall_miss_rate == pytest.approx(1 / 4)
        assert report.ranked_counts == {"a": 2, "b": 2}
        assert report.miss_counts == {"a": 0, "b": 1}

    def test_empty_answers_rejected(self):
        with pytest.raises(ValueError):
            citation_miss_rates([])

    def test_rate_for_unknown_entity(self):
        report = citation_miss_rates([self.make_answer(["a"], cited={"a"})])
        with pytest.raises(KeyError):
            report.rate_for("zzz")
