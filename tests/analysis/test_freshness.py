"""Tests for HTML date extraction and the freshness report."""

import datetime as dt

import pytest

from repro.analysis.freshness import extract_publication_date, freshness_by_engine
from repro.engines.base import Answer, Citation
from repro.webgraph.dates import StudyClock
from repro.webgraph.html import render_page
from repro.webgraph.pages import DateMarkup, Page, PageKind


def make_page(markup, published=dt.date(2025, 3, 3)):
    return Page(
        doc_id=0,
        url="https://techradar.com/x/1",
        domain="techradar.com",
        kind=PageKind.REVIEW,
        vertical="smartphones",
        title="A review",
        body="Body text here.",
        published=published,
        date_markup=markup,
    )


class TestExtractPublicationDate:
    @pytest.mark.parametrize(
        "markup",
        [DateMarkup.META, DateMarkup.JSON_LD, DateMarkup.TIME_TAG, DateMarkup.BODY_TEXT],
    )
    def test_extracts_from_every_markup_strategy(self, markup):
        page = make_page(markup)
        assert extract_publication_date(render_page(page)) == page.published

    def test_returns_none_without_markup(self):
        html = render_page(make_page(DateMarkup.NONE))
        assert extract_publication_date(html) is None

    def test_raw_meta_tag(self):
        html = '<meta property="article:published_time" content="2024-12-25T10:00:00Z">'
        assert extract_publication_date(html) == dt.date(2024, 12, 25)

    def test_raw_json_ld(self):
        html = (
            '<script type="application/ld+json">'
            '{"@type": "Article", "datePublished": "2024-06-01"}'
            "</script>"
        )
        assert extract_publication_date(html) == dt.date(2024, 6, 1)

    def test_json_ld_list_payload(self):
        html = (
            '<script type="application/ld+json">'
            '[{"@type": "Organization"}, {"dateModified": "2024-07-15"}]'
            "</script>"
        )
        assert extract_publication_date(html) == dt.date(2024, 7, 15)

    def test_malformed_json_ld_is_skipped(self):
        html = (
            '<script type="application/ld+json">{not json}</script>'
            '<time datetime="2024-02-02">Feb 2</time>'
        )
        assert extract_publication_date(html) == dt.date(2024, 2, 2)

    def test_body_text_prose(self):
        assert extract_publication_date(
            "<p>Updated March 7, 2025 by staff</p>"
        ) == dt.date(2025, 3, 7)

    def test_invalid_calendar_dates_rejected(self):
        assert extract_publication_date(
            '<meta name="date" content="2024-13-45">'
        ) is None

    def test_precedence_meta_over_time(self):
        html = (
            '<meta name="date" content="2024-01-01">'
            '<time datetime="2025-01-01">x</time>'
        )
        assert extract_publication_date(html) == dt.date(2024, 1, 1)

    def test_empty_document(self):
        assert extract_publication_date("") is None


class TestFreshnessByEngine:
    def make_answers(self, ages, markup=DateMarkup.META):
        clock = StudyClock()
        citations = []
        for i, age in enumerate(ages):
            page = Page(
                doc_id=i,
                url=f"https://techradar.com/x/{i}",
                domain="techradar.com",
                kind=PageKind.REVIEW,
                vertical="smartphones",
                title="t",
                body="b",
                published=clock.date_for_age(age),
                date_markup=markup,
            )
            citations.append(Citation(url=page.url, domain=page.domain, page=page))
        return [Answer(engine="E", query_id="q", text="t", citations=tuple(citations))], clock

    def test_median_age(self):
        answers, clock = self.make_answers([10, 20, 30])
        report = freshness_by_engine({"E": answers}, clock)
        assert report.median_age_days["E"] == 20
        assert report.extraction_rate["E"] == 1.0
        assert report.age_summary["E"].count == 3

    def test_unextractable_dates_excluded_but_tracked(self):
        answers, clock = self.make_answers([10, 20], markup=DateMarkup.NONE)
        report = freshness_by_engine({"E": answers}, clock)
        assert report.ages["E"] == []
        assert report.extraction_rate["E"] == 0.0

    def test_max_links_cap(self):
        answers, clock = self.make_answers(list(range(1, 15)))
        report = freshness_by_engine({"E": answers}, clock, max_links_per_answer=5)
        assert len(report.ages["E"]) == 5

    def test_invalid_cap(self):
        answers, clock = self.make_answers([5])
        with pytest.raises(ValueError):
            freshness_by_engine({"E": answers}, clock, max_links_per_answer=0)

    def test_ordered_by_median(self):
        fresh, clock = self.make_answers([5, 6])
        stale, __ = self.make_answers([100, 200])
        report = freshness_by_engine({"Fresh": fresh, "Stale": stale}, clock)
        assert [name for name, __ in report.ordered_by_median()] == ["Fresh", "Stale"]

    def test_citations_without_pages_are_skipped(self):
        clock = StudyClock()
        answers = [
            Answer(
                engine="E", query_id="q", text="t",
                citations=(Citation(url="https://x.com/1", domain="x.com"),),
            )
        ]
        report = freshness_by_engine({"E": answers}, clock)
        assert report.ages["E"] == []
        assert report.extraction_rate["E"] == 0.0


class TestExtractorRobustness:
    """Real crawls see many date spellings; the extractor must cope."""

    def test_open_graph_updated_time(self):
        html = '<meta property="og:updated_time" content="2025-02-10T00:00:00Z">'
        assert extract_publication_date(html) == dt.date(2025, 2, 10)

    def test_dublin_core(self):
        html = '<meta name="DC.date.issued" content="2024-11-30">'
        assert extract_publication_date(html) == dt.date(2024, 11, 30)

    def test_itemprop_date_published(self):
        html = '<meta itemprop="datePublished" content="2025-01-02">'
        assert extract_publication_date(html) == dt.date(2025, 1, 2)

    def test_human_readable_datetime_attribute(self):
        html = '<time datetime="March 3, 2025">some label</time>'
        assert extract_publication_date(html) == dt.date(2025, 3, 3)

    def test_time_element_text_fallback(self):
        html = '<time class="byline">April 9, 2025</time>'
        assert extract_publication_date(html) == dt.date(2025, 4, 9)

    def test_unparseable_time_falls_through_to_body(self):
        html = (
            '<time datetime="yesterday">yesterday</time>'
            "<p>Published on May 1, 2025</p>"
        )
        assert extract_publication_date(html) == dt.date(2025, 5, 1)

    def test_publication_date_meta_variant(self):
        html = '<meta name="publication_date" content="2024-08-08">'
        assert extract_publication_date(html) == dt.date(2024, 8, 8)

    def test_invalid_human_date_rejected(self):
        html = '<time datetime="February 31, 2025">x</time>'
        assert extract_publication_date(html) is None
