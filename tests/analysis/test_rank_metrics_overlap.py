"""Tests for rank metrics and the overlap analysis."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.overlap import domain_overlap
from repro.analysis.rank_metrics import mean_absolute_rank_deviation, rank_positions
from repro.engines.base import Answer, Citation


class TestRankMetrics:
    def test_identical_rankings(self):
        assert mean_absolute_rank_deviation(list("abc"), list("abc")) == 0.0

    def test_full_reversal(self):
        # a,b,c,d -> d,c,b,a: deviations 3,1,1,3 -> mean 2.
        assert mean_absolute_rank_deviation(list("abcd"), list("dcba")) == 2.0

    def test_single_swap(self):
        assert mean_absolute_rank_deviation(list("abc"), list("bac")) == pytest.approx(2 / 3)

    def test_mismatched_items_raise(self):
        with pytest.raises(ValueError, match="identical item sets"):
            mean_absolute_rank_deviation(["a", "b"], ["a", "c"])

    def test_duplicates_raise(self):
        with pytest.raises(ValueError, match="duplicate"):
            rank_positions(["a", "a"])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_absolute_rank_deviation([], [])

    @given(st.permutations(list(range(10))))
    def test_bounds_against_theory(self, perm):
        delta = mean_absolute_rank_deviation(list(range(10)), list(perm))
        n = 10
        # Max possible mean deviation for n items is n/2 (full reversal
        # gives n/2 exactly for even n).
        assert 0.0 <= delta <= n / 2

    @given(st.permutations(list(range(8))))
    def test_symmetry(self, perm):
        base = list(range(8))
        assert mean_absolute_rank_deviation(base, list(perm)) == pytest.approx(
            mean_absolute_rank_deviation(list(perm), base)
        )


def answer(engine, query_id, domains):
    return Answer(
        engine=engine,
        query_id=query_id,
        text="t",
        citations=tuple(
            Citation(url=f"https://{d}/page", domain=d) for d in domains
        ),
    )


class TestDomainOverlap:
    def test_basic_report(self):
        answers = {
            "Google": [answer("Google", "q0", ["a.com", "b.com"])],
            "AI": [answer("AI", "q0", ["b.com", "c.com"])],
        }
        report = domain_overlap(answers)
        assert report.mean_overlap["AI"] == pytest.approx(1 / 3)
        assert report.systems == ("AI",)
        assert report.query_count == 1

    def test_multiple_queries_average(self):
        answers = {
            "Google": [
                answer("Google", "q0", ["a.com"]),
                answer("Google", "q1", ["a.com"]),
            ],
            "AI": [
                answer("AI", "q0", ["a.com"]),   # overlap 1.0
                answer("AI", "q1", ["b.com"]),   # overlap 0.0
            ],
        }
        report = domain_overlap(answers)
        assert report.mean_overlap["AI"] == pytest.approx(0.5)

    def test_missing_baseline_raises(self):
        with pytest.raises(ValueError, match="baseline"):
            domain_overlap({"AI": []}, baseline="Google")

    def test_misaligned_workloads_raise(self):
        answers = {
            "Google": [answer("Google", "q0", ["a.com"])],
            "AI": [],
        }
        with pytest.raises(ValueError, match="misaligned"):
            domain_overlap(answers)

    def test_empty_workload_raises(self):
        with pytest.raises(ValueError, match="empty"):
            domain_overlap({"Google": [], "AI": []})

    def test_cross_model_and_unique_ratio(self):
        answers = {
            "Google": [answer("Google", "q0", ["g.com"])],
            "A": [answer("A", "q0", ["x.com", "s.com"])],
            "B": [answer("B", "q0", ["y.com", "s.com"])],
        }
        report = domain_overlap(answers)
        # A and B share s.com: jaccard 1/3; unique = x,y of {x,y,s} = 2/3.
        assert report.cross_model_overlap == pytest.approx(1 / 3)
        assert report.unique_domain_ratio == pytest.approx(2 / 3)

    def test_ordered_by_overlap(self):
        answers = {
            "Google": [answer("Google", "q0", ["a.com", "b.com"])],
            "High": [answer("High", "q0", ["a.com", "b.com"])],
            "Low": [answer("Low", "q0", ["z.com"])],
        }
        report = domain_overlap(answers)
        assert [name for name, __ in report.ordered_by_overlap()] == ["Low", "High"]

    def test_alternate_baseline(self):
        answers = {
            "Google": [answer("Google", "q0", ["a.com"])],
            "Gemini": [answer("Gemini", "q0", ["a.com"])],
            "AI": [answer("AI", "q0", ["a.com"])],
        }
        report = domain_overlap(answers, baseline="Gemini")
        assert set(report.mean_overlap) == {"Google", "AI"}
