"""Tests for repro.stats.summaries, cross-checked against numpy."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.summaries import histogram, mean, median, quantile, summarize

floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
samples = st.lists(floats, min_size=1, max_size=100)


class TestMean:
    def test_basic(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestQuantile:
    def test_median_of_even_sample_interpolates(self):
        assert quantile([1, 2, 3, 4], 0.5) == 2.5

    def test_endpoints(self):
        data = [5, 1, 9, 3]
        assert quantile(data, 0.0) == 1
        assert quantile(data, 1.0) == 9

    def test_singleton(self):
        assert quantile([7.0], 0.3) == 7.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            quantile([1, 2], 1.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)

    @given(samples, st.floats(min_value=0.0, max_value=1.0))
    def test_matches_numpy_linear(self, data, q):
        assert quantile(data, q) == pytest.approx(
            float(np.quantile(data, q)), rel=1e-9, abs=1e-9
        )

    @given(samples)
    def test_monotone_in_q(self, data):
        qs = [0.0, 0.25, 0.5, 0.75, 1.0]
        vals = [quantile(data, q) for q in qs]
        assert vals == sorted(vals)


class TestMedian:
    @given(samples)
    def test_matches_numpy(self, data):
        assert median(data) == pytest.approx(float(np.median(data)), abs=1e-9)

    @given(samples)
    def test_bounded_by_extremes(self, data):
        assert min(data) <= median(data) <= max(data)


class TestHistogram:
    def test_basic_binning(self):
        counts = histogram([0, 1, 2, 3, 4, 5], [0, 2, 4, 6])
        assert counts == [2, 2, 2]

    def test_right_edge_closed(self):
        assert histogram([6], [0, 3, 6]) == [0, 1]

    def test_out_of_range_ignored(self):
        assert histogram([-1, 10], [0, 5]) == [0]

    def test_needs_two_edges(self):
        with pytest.raises(ValueError):
            histogram([1], [0])

    def test_non_increasing_edges_raise(self):
        with pytest.raises(ValueError):
            histogram([1], [0, 0, 1])

    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), max_size=50))
    def test_total_count_matches_numpy(self, data):
        edges = [0, 20, 40, 60, 80, 100]
        ours = histogram(data, edges)
        theirs, _ = np.histogram(data, bins=edges)
        assert ours == list(theirs)


class TestSummarize:
    def test_fields(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.count == 5
        assert s.minimum == 1
        assert s.maximum == 5
        assert s.median == 3
        assert s.mean == 3
        assert s.iqr() == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    @given(samples)
    def test_ordering_invariants(self, data):
        s = summarize(data)
        assert s.minimum <= s.p25 <= s.median <= s.p75 <= s.p90 <= s.maximum
        # The mean can leave the hull by a rounding ulp on constant data.
        eps = 1e-12 * max(1.0, abs(s.maximum), abs(s.minimum))
        assert s.minimum - eps <= s.mean <= s.maximum + eps
