"""Tests for repro.stats.bootstrap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.bootstrap import bootstrap_ci
from repro.stats.summaries import mean, median


class TestBootstrapCi:
    def test_deterministic_given_seed(self):
        sample = [1.0, 2.0, 3.0, 4.0, 5.0]
        a = bootstrap_ci(sample, mean, seed=42)
        b = bootstrap_ci(sample, mean, seed=42)
        assert a == b

    def test_different_seed_changes_interval(self):
        sample = [1.0, 2.0, 3.0, 4.0, 5.0, 9.0, 12.0]
        a = bootstrap_ci(sample, mean, seed=1)
        b = bootstrap_ci(sample, mean, seed=2)
        assert (a.low, a.high) != (b.low, b.high)

    def test_constant_sample_gives_zero_width(self):
        r = bootstrap_ci([3.0] * 20, mean, seed=0)
        assert r.low == r.high == r.estimate == 3.0
        assert r.width() == 0.0

    def test_estimate_is_statistic_of_original_sample(self):
        sample = [1.0, 5.0, 9.0]
        r = bootstrap_ci(sample, median, seed=0)
        assert r.estimate == 5.0

    def test_contains(self):
        r = bootstrap_ci([1.0, 2.0, 3.0], mean, seed=0)
        assert r.contains(r.estimate)
        assert not r.contains(r.high + 1.0)

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            bootstrap_ci([], mean)

    def test_bad_confidence_raises(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], mean, confidence=1.0)

    def test_bad_resamples_raises(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], mean, resamples=0)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=2,
            max_size=30,
        ),
        st.integers(min_value=0, max_value=10),
    )
    def test_interval_ordering_and_sample_bounds(self, sample, seed):
        r = bootstrap_ci(sample, mean, resamples=100, seed=seed)
        assert r.low <= r.high
        # Bootstrap means cannot leave the sample's convex hull (modulo
        # floating-point rounding in the summation).
        span = max(abs(v) for v in sample) or 1.0
        eps = 1e-12 * span
        assert min(sample) - eps <= r.low and r.high <= max(sample) + eps
