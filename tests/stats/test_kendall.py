"""Tests for repro.stats.kendall, cross-checked against scipy."""

import math

import pytest
import scipy.stats
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.kendall import kendall_tau, kendall_tau_rankings


class TestKendallTau:
    def test_perfect_agreement(self):
        assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert kendall_tau([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)

    def test_single_swap(self):
        # One discordant pair out of six: tau = (5 - 1) / 6.
        assert kendall_tau([1, 2, 3, 4], [2, 1, 3, 4]) == pytest.approx(4 / 6)

    def test_constant_variable_returns_zero(self):
        assert kendall_tau([1, 1, 1], [1, 2, 3]) == 0.0
        assert kendall_tau([1, 2, 3], [5, 5, 5]) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length"):
            kendall_tau([1, 2], [1, 2, 3])

    def test_too_short_raises(self):
        with pytest.raises(ValueError, match="at least two"):
            kendall_tau([1], [1])

    def test_ties_match_scipy_tau_b(self):
        xs = [1, 1, 2, 3, 3, 4]
        ys = [2, 1, 1, 3, 4, 4]
        expected = scipy.stats.kendalltau(xs, ys).statistic
        assert kendall_tau(xs, ys) == pytest.approx(expected)

    def test_symmetry(self):
        xs = [3, 1, 4, 1, 5, 9, 2, 6]
        ys = [2, 7, 1, 8, 2, 8, 1, 8]
        assert kendall_tau(xs, ys) == pytest.approx(kendall_tau(ys, xs))

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-50, max_value=50),
                st.integers(min_value=-50, max_value=50),
            ),
            min_size=2,
            max_size=60,
        )
    )
    def test_matches_scipy_on_random_integer_pairs(self, pairs):
        xs = [p[0] for p in pairs]
        ys = [p[1] for p in pairs]
        ours = kendall_tau(xs, ys)
        theirs = scipy.stats.kendalltau(xs, ys).statistic
        if math.isnan(theirs):
            assert ours == 0.0
        else:
            assert ours == pytest.approx(theirs, abs=1e-12)

    @given(st.permutations(list(range(8))))
    def test_bounds_on_permutations(self, perm):
        tau = kendall_tau(list(range(8)), list(perm))
        assert -1.0 <= tau <= 1.0

    @given(st.permutations(list(range(10))))
    def test_self_correlation_is_one(self, perm):
        assert kendall_tau(list(perm), list(perm)) == pytest.approx(1.0)


class TestKendallTauRankings:
    def test_identical_rankings(self):
        ranking = ["a", "b", "c", "d"]
        assert kendall_tau_rankings(ranking, ranking) == pytest.approx(1.0)

    def test_reversed_rankings(self):
        a = ["a", "b", "c", "d"]
        assert kendall_tau_rankings(a, a[::-1]) == pytest.approx(-1.0)

    def test_item_set_mismatch_raises(self):
        with pytest.raises(ValueError, match="identical item sets"):
            kendall_tau_rankings(["a", "b"], ["a", "c"])

    def test_duplicate_items_raise(self):
        with pytest.raises(ValueError, match="duplicate"):
            kendall_tau_rankings(["a", "b"], ["a", "a"])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="number of items"):
            kendall_tau_rankings(["a", "b", "c"], ["a", "b"])

    @given(st.permutations(list("abcdefg")))
    def test_matches_scipy_on_permuted_rankings(self, perm):
        base = list("abcdefg")
        ours = kendall_tau_rankings(base, list(perm))
        pos = {item: i for i, item in enumerate(perm)}
        theirs = scipy.stats.kendalltau(
            list(range(len(base))), [pos[item] for item in base]
        ).statistic
        assert ours == pytest.approx(theirs, abs=1e-12)
