"""Tests for repro.stats.jaccard."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.jaccard import (
    jaccard,
    mean_pairwise_jaccard,
    overlap_coefficient,
    unique_ratio,
)

item_sets = st.sets(st.integers(min_value=0, max_value=30), max_size=15)


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint_sets(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_partial_overlap(self):
        assert jaccard({"a", "b", "c"}, {"b", "c", "d"}) == pytest.approx(2 / 4)

    def test_both_empty_is_zero(self):
        assert jaccard(set(), set()) == 0.0

    def test_one_empty_is_zero(self):
        assert jaccard({"a"}, set()) == 0.0

    def test_accepts_iterables_with_duplicates(self):
        assert jaccard(["a", "a", "b"], ["b", "b"]) == pytest.approx(1 / 2)

    @given(item_sets, item_sets)
    def test_bounds(self, a, b):
        assert 0.0 <= jaccard(a, b) <= 1.0

    @given(item_sets, item_sets)
    def test_symmetry(self, a, b):
        assert jaccard(a, b) == jaccard(b, a)

    @given(item_sets)
    def test_self_similarity(self, a):
        expected = 1.0 if a else 0.0
        assert jaccard(a, a) == expected

    @given(item_sets, item_sets)
    def test_jaccard_never_exceeds_overlap_coefficient(self, a, b):
        assert jaccard(a, b) <= overlap_coefficient(a, b) + 1e-12


class TestOverlapCoefficient:
    def test_subset_is_one(self):
        assert overlap_coefficient({"a"}, {"a", "b", "c"}) == 1.0

    def test_empty_is_zero(self):
        assert overlap_coefficient(set(), {"a"}) == 0.0


class TestMeanPairwiseJaccard:
    def test_single_set_is_zero(self):
        assert mean_pairwise_jaccard([{"a"}]) == 0.0

    def test_two_sets(self):
        assert mean_pairwise_jaccard([{"a", "b"}, {"b", "c"}]) == pytest.approx(1 / 3)

    def test_three_identical_sets(self):
        assert mean_pairwise_jaccard([{"x"}, {"x"}, {"x"}]) == 1.0

    @given(st.lists(item_sets, min_size=2, max_size=6))
    def test_bounds(self, sets):
        assert 0.0 <= mean_pairwise_jaccard(sets) <= 1.0


class TestUniqueRatio:
    def test_all_unique(self):
        assert unique_ratio([{"a"}, {"b"}, {"c"}]) == 1.0

    def test_all_shared(self):
        assert unique_ratio([{"a"}, {"a"}]) == 0.0

    def test_mixed(self):
        # "a" appears in two sets, "b" and "c" in one each: 2 of 3 unique.
        assert unique_ratio([{"a", "b"}, {"a", "c"}]) == pytest.approx(2 / 3)

    def test_empty_input(self):
        assert unique_ratio([]) == 0.0
        assert unique_ratio([set(), set()]) == 0.0

    def test_duplicates_within_one_set_do_not_count_twice(self):
        assert unique_ratio([["a", "a"], ["b"]]) == 1.0

    @given(st.lists(item_sets, max_size=6))
    def test_bounds(self, sets):
        assert 0.0 <= unique_ratio(sets) <= 1.0
