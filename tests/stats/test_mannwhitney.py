"""Tests for the Mann-Whitney U test, cross-checked against scipy."""

import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.mannwhitney import mann_whitney_u, rank_with_ties


class TestRankWithTies:
    def test_no_ties(self):
        assert rank_with_ties([30, 10, 20]) == [3.0, 1.0, 2.0]

    def test_ties_get_midranks(self):
        assert rank_with_ties([10, 10, 20]) == [1.5, 1.5, 3.0]

    def test_all_tied(self):
        assert rank_with_ties([5, 5, 5, 5]) == [2.5] * 4

    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=40))
    def test_rank_sum_invariant(self, values):
        ranks = rank_with_ties(values)
        n = len(values)
        assert sum(ranks) == pytest.approx(n * (n + 1) / 2)


class TestMannWhitneyU:
    def test_clearly_shifted_samples_are_significant(self):
        young = [10, 12, 15, 20, 22, 30, 31, 35, 40, 41]
        old = [100, 110, 120, 130, 140, 150, 160, 170, 180, 190]
        result = mann_whitney_u(young, old)
        assert result.significant()
        assert result.p_value < 0.001

    def test_identical_distributions_are_not_significant(self):
        a = list(range(0, 100, 5))
        b = list(range(1, 101, 5))
        result = mann_whitney_u(a, b)
        assert not result.significant()

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            mann_whitney_u([], [1.0])

    def test_degenerate_samples_rejected(self):
        with pytest.raises(ValueError, match="degenerate"):
            mann_whitney_u([5.0, 5.0], [5.0, 5.0])

    def test_symmetry_of_p_value(self):
        a = [1, 3, 5, 7, 9, 11, 13, 15]
        b = [2, 4, 6, 8, 10, 20, 30, 40]
        assert mann_whitney_u(a, b).p_value == pytest.approx(
            mann_whitney_u(b, a).p_value
        )

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=300), min_size=8, max_size=60),
        st.lists(st.integers(min_value=0, max_value=300), min_size=8, max_size=60),
    )
    def test_matches_scipy_normal_approximation(self, a, b):
        if len(set(a) | set(b)) < 2:
            return  # degenerate
        ours = mann_whitney_u(a, b)
        theirs = scipy.stats.mannwhitneyu(
            a, b, alternative="two-sided", method="asymptotic"
        )
        assert ours.u_statistic == pytest.approx(theirs.statistic)
        assert ours.p_value == pytest.approx(theirs.pvalue, abs=1e-9)

    def test_figure4_style_comparison(self):
        # AI-like ages vs Google-like ages from the study itself.
        from repro.core import StudyConfig, World
        from repro.core.config import WorkloadSizes
        from repro.core.study import ComparativeStudy

        sizes = WorkloadSizes(
            ranking_queries=10, comparison_popular=2, comparison_niche=2,
            intent_queries=6, freshness_queries_per_vertical=15,
            perturbation_queries=2, perturbation_runs=2,
            pairwise_queries=2, citation_queries=5,
        )
        study = ComparativeStudy(World.build(StudyConfig(seed=7, sizes=sizes)))
        report = study.freshness().electronics
        result = mann_whitney_u(report.ages["Claude"], report.ages["Google"])
        assert result.significant()
        assert result.z_score < 0  # Claude's ages stochastically smaller
