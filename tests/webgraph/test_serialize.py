"""Tests for corpus serialization round-trips."""

import json

import pytest

from repro.core import StudyConfig, World
from repro.webgraph.serialize import (
    dump_corpus,
    dumps_corpus,
    load_corpus,
    loads_corpus,
)


@pytest.fixture(scope="module")
def corpus():
    return World.build(StudyConfig(seed=13, corpus_scale=0.3)).corpus


class TestRoundTrip:
    def test_string_round_trip_preserves_pages(self, corpus):
        restored = loads_corpus(dumps_corpus(corpus))
        assert len(restored) == len(corpus)
        for original, loaded in zip(corpus.pages, restored.pages):
            assert original == loaded

    def test_round_trip_preserves_link_graph(self, corpus):
        restored = loads_corpus(dumps_corpus(corpus))
        assert set(restored.link_graph.edges()) == set(corpus.link_graph.edges())
        assert set(restored.link_graph.nodes()) == set(corpus.link_graph.nodes())

    def test_round_trip_preserves_clock(self, corpus):
        restored = loads_corpus(dumps_corpus(corpus))
        assert restored.clock.today == corpus.clock.today

    def test_round_trip_preserves_indexes(self, corpus):
        restored = loads_corpus(dumps_corpus(corpus))
        entity = corpus.pages[0].entities[0]
        assert restored.entity_exposure(entity) == corpus.entity_exposure(entity)
        assert restored.domains() == corpus.domains()

    def test_file_round_trip(self, corpus, tmp_path):
        path = tmp_path / "snapshots" / "web.jsonl"
        dump_corpus(corpus, path)
        restored = load_corpus(path)
        assert len(restored) == len(corpus)

    def test_restored_corpus_supports_search(self, corpus):
        from repro.search.bm25 import BM25Scorer
        from repro.search.index import InvertedIndex

        restored = loads_corpus(dumps_corpus(corpus))
        index = InvertedIndex()
        index.add_all(restored.pages)
        assert BM25Scorer(index).score_all("best smartphones")


class TestFormatValidation:
    def test_missing_header(self):
        with pytest.raises(ValueError, match="header"):
            loads_corpus('{"kind": "page"}')

    def test_wrong_format(self):
        with pytest.raises(ValueError, match="snapshot"):
            loads_corpus(json.dumps({"kind": "header", "format": "other", "version": 1}))

    def test_wrong_version(self, corpus):
        text = dumps_corpus(corpus)
        header = json.loads(text.splitlines()[0])
        header["version"] = 99
        body = "\n".join([json.dumps(header)] + text.splitlines()[1:])
        with pytest.raises(ValueError, match="version"):
            loads_corpus(body)

    def test_unknown_record_kind(self, corpus):
        text = dumps_corpus(corpus) + json.dumps({"kind": "mystery"}) + "\n"
        with pytest.raises(ValueError, match="unknown record kind"):
            loads_corpus(text)

    def test_page_count_mismatch(self, corpus):
        lines = dumps_corpus(corpus).splitlines()
        # Drop one page line.
        page_index = next(
            i for i, line in enumerate(lines) if '"kind": "page"' in line
        )
        del lines[page_index]
        with pytest.raises(ValueError, match="declares"):
            loads_corpus("\n".join(lines))

    def test_blank_lines_tolerated(self, corpus):
        text = dumps_corpus(corpus).replace("\n", "\n\n")
        assert len(loads_corpus(text)) == len(corpus)
