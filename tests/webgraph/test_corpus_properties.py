"""Property-based tests on corpus-generation invariants."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.entities import build_default_catalog
from repro.webgraph.corpus import CorpusConfig, CorpusGenerator
from repro.webgraph.domains import build_default_registry
from repro.webgraph.urls import registrable_domain


def build(seed: int, scale: float):
    catalog = build_default_catalog()
    registry = build_default_registry()
    config = CorpusConfig(seed=seed, pages_per_volume_unit=scale)
    return catalog, registry, CorpusGenerator(registry, catalog, config).generate()


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.integers(min_value=0, max_value=10_000),
    st.floats(min_value=0.3, max_value=1.2),
)
def test_corpus_invariants_hold_for_any_seed_and_scale(seed, scale):
    catalog, registry, corpus = build(seed, scale)
    study_date = corpus.clock.today

    doc_ids = [page.doc_id for page in corpus.pages]
    assert len(doc_ids) == len(set(doc_ids))

    urls = [page.url for page in corpus.pages]
    assert len(urls) == len(set(urls))

    for page in corpus.pages[:: max(1, len(corpus.pages) // 200)]:
        # Every page is hosted on a registered domain and its URL
        # normalizes back to it.
        assert page.domain in registry
        assert registrable_domain(page.url) == page.domain
        # Dates never post-date the study.
        assert page.published <= study_date
        # Stances cover only the page's entities and stay bounded.
        assert set(page.entity_stance) == set(page.entities)
        for entity_id in page.entities:
            assert entity_id in catalog
            assert -1.0 <= page.entity_stance[entity_id] <= 1.0
        assert 0.0 <= page.quality <= 1.0
        assert 0.0 <= page.seo_score <= 1.0

    # The link graph only references registered domains.
    for source, target, weight in corpus.link_graph.edges():
        assert source in registry and target in registry
        assert weight > 0


@settings(max_examples=4, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_generation_is_a_pure_function_of_the_seed(seed):
    __, __, a = build(seed, 0.5)
    __, __, b = build(seed, 0.5)
    assert len(a) == len(b)
    assert [p.url for p in a.pages] == [p.url for p in b.pages]
    assert [p.published for p in a.pages] == [p.published for p in b.pages]
    assert set(a.link_graph.edges()) == set(b.link_graph.edges())


@settings(max_examples=4, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_exposure_gradient_is_seed_robust(seed):
    """The popularity->coverage concentration must hold at every seed."""
    catalog, __, corpus = build(seed, 0.8)
    for vertical in ("suvs", "smartphones", "airlines"):
        entities = catalog.in_vertical(vertical)
        top = max(entities, key=lambda e: e.popularity)
        bottom = min(entities, key=lambda e: e.popularity)
        assert corpus.entity_exposure(top.id) > corpus.entity_exposure(bottom.id)
