"""Tests for the domain registry."""

import pytest

from repro.webgraph.dates import AgeProfile
from repro.webgraph.domains import (
    DomainRecord,
    DomainRegistry,
    SourceType,
    build_default_registry,
)


class TestDomainRecord:
    def test_validation(self):
        with pytest.raises(ValueError, match="registrable"):
            DomainRecord(name="nodots", source_type=SourceType.EARNED)
        with pytest.raises(ValueError, match="authority"):
            DomainRecord(name="a.com", source_type=SourceType.EARNED, authority=1.5)
        with pytest.raises(ValueError, match="publish_volume"):
            DomainRecord(name="a.com", source_type=SourceType.EARNED, publish_volume=0)

    def test_effective_age_profile_falls_back_to_type_default(self):
        earned = DomainRecord(name="a.com", source_type=SourceType.EARNED)
        brand = DomainRecord(name="b.com", source_type=SourceType.BRAND)
        assert earned.effective_age_profile().median_days < brand.effective_age_profile().median_days

    def test_explicit_age_profile_wins(self):
        custom = AgeProfile(median_days=999)
        record = DomainRecord(
            name="a.com", source_type=SourceType.EARNED, age_profile=custom
        )
        assert record.effective_age_profile() is custom

    def test_covers(self):
        general = DomainRecord(name="a.com", source_type=SourceType.SOCIAL)
        focused = DomainRecord(
            name="b.com",
            source_type=SourceType.EARNED,
            verticals=frozenset({"suvs"}),
        )
        assert general.covers("anything")
        assert focused.covers("suvs")
        assert not focused.covers("laptops")


class TestDomainRegistry:
    def test_add_and_get(self):
        registry = DomainRegistry()
        record = DomainRecord(name="a.com", source_type=SourceType.EARNED)
        registry.add(record)
        assert registry.get("a.com") is record
        assert "a.com" in registry
        assert len(registry) == 1

    def test_duplicate_add_raises(self):
        registry = DomainRegistry()
        registry.add(DomainRecord(name="a.com", source_type=SourceType.EARNED))
        with pytest.raises(ValueError, match="already registered"):
            registry.add(DomainRecord(name="a.com", source_type=SourceType.SOCIAL))

    def test_by_type_and_covering(self):
        registry = DomainRegistry()
        registry.add(
            DomainRecord(
                name="earned.com",
                source_type=SourceType.EARNED,
                verticals=frozenset({"suvs"}),
            )
        )
        registry.add(DomainRecord(name="social.com", source_type=SourceType.SOCIAL))
        assert [r.name for r in registry.by_type(SourceType.EARNED)] == ["earned.com"]
        covering = {r.name for r in registry.covering("suvs")}
        assert covering == {"earned.com", "social.com"}

    def test_ensure_brand_domain_creates(self):
        registry = DomainRegistry()
        record = registry.ensure_brand_domain("toyota.com", "suvs", authority=0.8)
        assert record.source_type is SourceType.BRAND
        assert record.verticals == {"suvs"}

    def test_ensure_brand_domain_merges_verticals(self):
        registry = DomainRegistry()
        registry.ensure_brand_domain("samsung.com", "smartphones", authority=0.7)
        merged = registry.ensure_brand_domain("samsung.com", "laptops", authority=0.9)
        assert merged.verticals == {"smartphones", "laptops"}
        assert merged.authority == 0.9

    def test_ensure_brand_domain_conflicts_with_non_brand(self):
        registry = DomainRegistry()
        registry.add(DomainRecord(name="reddit.com", source_type=SourceType.SOCIAL))
        with pytest.raises(ValueError, match="already registered as social"):
            registry.ensure_brand_domain("reddit.com", "suvs", authority=0.5)


class TestDefaultRegistry:
    @pytest.fixture(scope="class")
    def registry(self):
        return build_default_registry()

    def test_paper_named_outlets_present(self, registry):
        for name in (
            "techradar.com", "tomsguide.com", "rtings.com", "cnet.com",
            "wikipedia.org", "consumerreports.org", "caranddriver.com",
            "youtube.com", "bestbuy.com", "cars.com",
        ):
            assert name in registry, name

    def test_all_three_types_populated(self, registry):
        for source_type in SourceType:
            assert registry.by_type(source_type), source_type

    def test_no_brand_manufacturers_in_default(self, registry):
        # Brand manufacturer domains are registered from the catalog, not
        # curated; the only BRAND records in the default set are retailers.
        for record in registry.by_type(SourceType.BRAND):
            assert record.is_retailer, record.name

    def test_each_consumer_vertical_has_earned_coverage(self, registry):
        from repro.entities.verticals import CONSUMER_TOPICS

        for vertical in CONSUMER_TOPICS:
            earned = [
                r for r in registry.covering(vertical)
                if r.source_type is SourceType.EARNED
            ]
            assert len(earned) >= 5, vertical

    def test_core_social_platforms_are_general_interest(self, registry):
        for name in ("reddit.com", "youtube.com", "quora.com", "x.com"):
            assert not registry.get(name).verticals, name

    def test_scoped_social_platforms_stay_in_their_lane(self, registry):
        assert registry.get("tripadvisor.com").verticals
        assert not registry.get("tripadvisor.com").covers("smartphones")
        assert registry.get("flyertalk.com").covers("airlines")
