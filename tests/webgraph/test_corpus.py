"""Tests for corpus generation and the link graph."""

import pytest

from repro.entities import build_default_catalog
from repro.webgraph.corpus import CorpusConfig, CorpusGenerator
from repro.webgraph.domains import SourceType, build_default_registry
from repro.webgraph.linkgraph import LinkGraph
from repro.webgraph.pages import PageKind
from repro.webgraph.urls import registrable_domain


@pytest.fixture(scope="module")
def world():
    catalog = build_default_catalog()
    registry = build_default_registry()
    corpus = CorpusGenerator(registry, catalog, CorpusConfig(seed=7)).generate()
    return catalog, registry, corpus


class TestLinkGraph:
    def test_add_edge_accumulates_weight(self):
        graph = LinkGraph()
        graph.add_edge("a.com", "b.com")
        graph.add_edge("a.com", "b.com", weight=2.0)
        assert graph.out_edges("a.com") == {"b.com": 3.0}
        assert graph.out_weight("a.com") == 3.0

    def test_self_edges_ignored(self):
        graph = LinkGraph()
        graph.add_edge("a.com", "a.com")
        assert graph.edge_count() == 0
        assert "a.com" in graph

    def test_invalid_weight_raises(self):
        with pytest.raises(ValueError):
            LinkGraph().add_edge("a.com", "b.com", weight=0)

    def test_empty_node_raises(self):
        with pytest.raises(ValueError):
            LinkGraph().add_node("")

    def test_edges_iteration(self):
        graph = LinkGraph()
        graph.add_edge("a.com", "b.com")
        graph.add_edge("b.com", "c.com", weight=2.0)
        assert set(graph.edges()) == {("a.com", "b.com", 1.0), ("b.com", "c.com", 2.0)}


class TestCorpusGeneration:
    def test_determinism(self):
        catalog = build_default_catalog()
        a = CorpusGenerator(build_default_registry(), catalog, CorpusConfig(seed=3)).generate()
        b = CorpusGenerator(build_default_registry(), build_default_catalog(), CorpusConfig(seed=3)).generate()
        assert len(a) == len(b)
        assert [p.url for p in a.pages[:50]] == [p.url for p in b.pages[:50]]
        assert [p.published for p in a.pages[:50]] == [p.published for p in b.pages[:50]]

    def test_different_seeds_differ(self):
        catalog = build_default_catalog()
        a = CorpusGenerator(build_default_registry(), catalog, CorpusConfig(seed=1)).generate()
        b = CorpusGenerator(build_default_registry(), build_default_catalog(), CorpusConfig(seed=2)).generate()
        assert [p.title for p in a.pages] != [p.title for p in b.pages]

    def test_urls_normalize_to_their_domain(self, world):
        __, __, corpus = world
        for page in corpus.pages[::17]:
            assert registrable_domain(page.url) == page.domain

    def test_doc_ids_unique(self, world):
        __, __, corpus = world
        ids = [p.doc_id for p in corpus.pages]
        assert len(ids) == len(set(ids))

    def test_exposure_tracks_popularity_within_suvs(self, world):
        catalog, __, corpus = world
        toyota = corpus.entity_exposure("suvs:toyota")
        infiniti = corpus.entity_exposure("suvs:infiniti")
        assert toyota > 2 * infiniti

    def test_every_entity_has_some_exposure(self, world):
        catalog, __, corpus = world
        for entity in catalog:
            assert corpus.entity_exposure(entity.id) > 0, entity.id

    def test_brand_pages_only_cover_own_entities(self, world):
        catalog, registry, corpus = world
        for page in corpus.pages:
            record = registry.get(page.domain)
            if record.source_type is SourceType.BRAND and not record.is_retailer:
                for entity_id in page.entities:
                    assert catalog.get(entity_id).brand_domain == page.domain

    def test_social_pages_are_threads(self, world):
        __, registry, corpus = world
        for page in corpus.pages:
            if registry.get(page.domain).source_type is SourceType.SOCIAL:
                assert page.kind is PageKind.FORUM_THREAD

    def test_earned_fresher_than_brand_in_same_vertical(self, world):
        __, registry, corpus = world
        earned_ages, brand_ages = [], []
        for page in corpus.by_vertical("smartphones"):
            age = corpus.clock.age_days(page.published)
            record = registry.get(page.domain)
            if record.source_type is SourceType.EARNED:
                earned_ages.append(age)
            elif record.source_type is SourceType.BRAND and not record.is_retailer:
                brand_ages.append(age)
        assert earned_ages and brand_ages
        earned_ages.sort()
        brand_ages.sort()
        assert earned_ages[len(earned_ages) // 2] < brand_ages[len(brand_ages) // 2]

    def test_automotive_older_than_electronics(self, world):
        __, __, corpus = world
        def median_age(vertical):
            ages = sorted(
                corpus.clock.age_days(p.published) for p in corpus.by_vertical(vertical)
            )
            return ages[len(ages) // 2]
        assert median_age("suvs") > median_age("smartphones")

    def test_stances_correlate_with_quality(self, world):
        catalog, __, corpus = world
        high = catalog.get("suvs:toyota")       # quality 0.92
        low = catalog.get("suvs:jeep")          # quality 0.68
        def mean_stance(entity_id):
            values = [
                p.entity_stance[entity_id]
                for p in corpus.by_entity(entity_id)
                if entity_id in p.entity_stance
            ]
            return sum(values) / len(values)
        assert mean_stance(high.id) > mean_stance(low.id)

    def test_link_graph_connects_earned_to_brands(self, world):
        __, __, corpus = world
        edges = corpus.link_graph.out_edges("caranddriver.com")
        assert "toyota.com" in edges

    def test_by_url_lookup(self, world):
        __, __, corpus = world
        page = corpus.pages[0]
        assert corpus.by_url(page.url) is page
        with pytest.raises(KeyError):
            corpus.by_url("https://nope.example/x")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CorpusConfig(pages_per_volume_unit=0)
        with pytest.raises(ValueError):
            CorpusConfig(general_interest_factor=0)
        with pytest.raises(ValueError):
            CorpusConfig(brand_pages_per_entity=0)
