"""Tests for public-suffix handling and URL normalization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.webgraph.psl import PublicSuffixList, default_psl
from repro.webgraph.urls import extract_host, normalize_url, registrable_domain


class TestPublicSuffixList:
    @pytest.fixture
    def psl(self):
        return default_psl()

    def test_simple_com(self, psl):
        assert psl.public_suffix("techradar.com") == "com"
        assert psl.registrable_domain("techradar.com") == "techradar.com"

    def test_subdomain(self, psl):
        assert psl.registrable_domain("www.techradar.com") == "techradar.com"
        assert psl.registrable_domain("a.b.c.techradar.com") == "techradar.com"

    def test_two_level_suffix(self, psl):
        assert psl.public_suffix("example.co.uk") == "co.uk"
        assert psl.registrable_domain("shop.example.co.uk") == "example.co.uk"

    def test_longest_rule_wins(self, psl):
        # "uk" and "co.uk" both match; co.uk is longer.
        assert psl.public_suffix("x.co.uk") == "co.uk"

    def test_unknown_tld_falls_back_to_last_label(self, psl):
        assert psl.public_suffix("foo.example.unknowntld") == "unknowntld"
        assert psl.registrable_domain("foo.example.unknowntld") == "example.unknowntld"

    def test_wildcard_rule(self, psl):
        # *.ck means every label under ck is itself a suffix.
        assert psl.public_suffix("foo.anything.ck") == "anything.ck"
        assert psl.registrable_domain("foo.anything.ck") == "foo.anything.ck"

    def test_exception_rule(self, psl):
        # !www.ck overrides the wildcard: www.ck is registrable.
        assert psl.public_suffix("www.ck") == "ck"
        assert psl.registrable_domain("www.ck") == "www.ck"
        assert psl.registrable_domain("sub.www.ck") == "www.ck"

    def test_bare_suffix_has_no_registrable_domain(self, psl):
        with pytest.raises(ValueError, match="public suffix"):
            psl.registrable_domain("com")
        with pytest.raises(ValueError, match="public suffix"):
            psl.registrable_domain("co.uk")

    def test_case_and_trailing_dot_insensitive(self, psl):
        assert psl.registrable_domain("WWW.TechRadar.COM.") == "techradar.com"

    def test_empty_hostname_raises(self, psl):
        with pytest.raises(ValueError):
            psl.public_suffix("")

    def test_custom_rules(self):
        psl = PublicSuffixList("com\nfoo.com\n")
        assert psl.public_suffix("bar.foo.com") == "foo.com"
        assert psl.registrable_domain("x.bar.foo.com") == "bar.foo.com"


class TestExtractHost:
    def test_full_url(self):
        assert extract_host("https://www.cnet.com/reviews/") == "www.cnet.com"

    def test_schemeless(self):
        assert extract_host("techradar.com/best-phones") == "techradar.com"

    def test_port_and_userinfo(self):
        assert extract_host("http://user:pw@example.com:8080/x") == "example.com"

    def test_protocol_relative(self):
        assert extract_host("//cdn.example.com/asset.js") == "cdn.example.com"

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            extract_host("   ")

    def test_no_dot_host_raises(self):
        with pytest.raises(ValueError):
            extract_host("http://localhost/x")


class TestRegistrableDomain:
    def test_paper_examples(self):
        assert registrable_domain("https://www.techradar.com/best/phones") == "techradar.com"
        assert registrable_domain("https://youtu.be.example.co.uk/x") == "example.co.uk"

    def test_normalize_url_returns_none_on_garbage(self):
        assert normalize_url("not a url") is None
        assert normalize_url("https://com/") is None
        assert normalize_url("") is None

    def test_normalize_url_happy_path(self):
        assert normalize_url("HTTP://WWW.Reddit.com/r/suvs") == "reddit.com"

    @given(
        st.sampled_from(["techradar.com", "example.co.uk", "foo.org", "bar.io"]),
        st.sampled_from(["", "www.", "news.", "a.b."]),
        st.sampled_from(["", "/path", "/a/b?q=1#frag", ":443/x"]),
    )
    def test_subdomains_and_paths_never_change_the_domain(self, base, sub, tail):
        url = f"https://{sub}{base}{tail}"
        assert normalize_url(url) == base

    @given(st.text(max_size=30))
    def test_normalize_never_raises(self, junk):
        result = normalize_url(junk)
        assert result is None or "." in result
