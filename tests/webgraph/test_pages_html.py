"""Tests for page models and HTML rendering."""

import datetime as dt

import pytest

from repro.webgraph.html import render_page
from repro.webgraph.pages import DateMarkup, Page, PageKind


def make_page(markup=DateMarkup.META, **overrides) -> Page:
    defaults = dict(
        doc_id=1,
        url="https://techradar.com/smartphones/best-phones-1",
        domain="techradar.com",
        kind=PageKind.RANKING,
        vertical="smartphones",
        title="The 10 best smartphones of 2025",
        body="We looked closely at smartphones.\nApple proved excellent.",
        published=dt.date(2025, 3, 3),
        date_markup=markup,
        entities=("smartphones:apple",),
        entity_stance={"smartphones:apple": 0.8},
        quality=0.8,
        seo_score=0.7,
    )
    defaults.update(overrides)
    return Page(**defaults)


class TestPage:
    def test_primary_entity(self):
        page = make_page(entities=("a:x", "a:y"), entity_stance={})
        assert page.primary_entity == "a:x"
        assert make_page(entities=(), entity_stance={}).primary_entity is None

    def test_mentions(self):
        page = make_page()
        assert page.mentions("smartphones:apple")
        assert not page.mentions("smartphones:samsung")

    def test_text_includes_title_and_body(self):
        text = make_page().text()
        assert "best smartphones" in text
        assert "Apple proved excellent" in text

    def test_quality_validation(self):
        with pytest.raises(ValueError, match="quality"):
            make_page(quality=1.2)

    def test_stance_validation(self):
        with pytest.raises(ValueError, match="stance"):
            make_page(entity_stance={"a:x": 2.0})


class TestRenderPage:
    def test_meta_markup(self):
        html = render_page(make_page(DateMarkup.META))
        assert '<meta property="article:published_time" content="2025-03-03' in html
        assert "application/ld+json" not in html

    def test_json_ld_markup(self):
        html = render_page(make_page(DateMarkup.JSON_LD))
        assert "application/ld+json" in html
        assert '"datePublished": "2025-03-03"' in html
        assert "article:published_time" not in html

    def test_time_tag_markup(self):
        html = render_page(make_page(DateMarkup.TIME_TAG))
        assert '<time datetime="2025-03-03">March 3, 2025</time>' in html

    def test_body_text_markup(self):
        html = render_page(make_page(DateMarkup.BODY_TEXT))
        assert "Published on March 3, 2025" in html
        assert "<time" not in html
        assert "article:published_time" not in html

    def test_no_markup_leaves_no_date(self):
        html = render_page(make_page(DateMarkup.NONE))
        assert "2025-03-03" not in html
        assert "March 3, 2025" not in html

    def test_title_is_escaped(self):
        page = make_page(title="Best <script> & phones")
        html = render_page(page)
        assert "<script>" not in html.replace('<script type="application/ld+json">', "")
        assert "&lt;script&gt;" in html
        assert "&amp;" in html

    def test_body_paragraphs(self):
        html = render_page(make_page())
        assert html.count("<p>") >= 2
        assert "<h1>The 10 best smartphones of 2025</h1>" in html

    def test_document_structure(self):
        html = render_page(make_page())
        for fragment in ("<!DOCTYPE html>", "<head>", "</head>", "<body>", "</body>", "</html>"):
            assert fragment in html
