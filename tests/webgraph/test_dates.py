"""Tests for the temporal model."""

import datetime as dt
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.webgraph.dates import DEFAULT_STUDY_DATE, AgeProfile, StudyClock


class TestStudyClock:
    def test_age_days(self):
        clock = StudyClock(dt.date(2025, 10, 1))
        assert clock.age_days(dt.date(2025, 9, 1)) == 30

    def test_future_pages_clamp_to_zero(self):
        clock = StudyClock(dt.date(2025, 10, 1))
        assert clock.age_days(dt.date(2025, 12, 25)) == 0

    def test_date_for_age_roundtrip(self):
        clock = StudyClock()
        for age in (0, 1, 100, 2000):
            assert clock.age_days(clock.date_for_age(age)) == age

    def test_negative_age_raises(self):
        with pytest.raises(ValueError):
            StudyClock().date_for_age(-1)

    def test_default_study_date(self):
        assert StudyClock().today == DEFAULT_STUDY_DATE


class TestAgeProfile:
    def test_invalid_median_raises(self):
        with pytest.raises(ValueError):
            AgeProfile(median_days=0)

    def test_invalid_sigma_raises(self):
        with pytest.raises(ValueError):
            AgeProfile(median_days=10, sigma=0)

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            AgeProfile(median_days=10, floor_days=50, cap_days=10)

    def test_samples_respect_bounds(self):
        profile = AgeProfile(median_days=60, floor_days=5, cap_days=300)
        rng = random.Random(0)
        samples = [profile.sample_age(rng) for _ in range(500)]
        assert all(5 <= s <= 300 for s in samples)

    def test_sampling_is_deterministic_per_seed(self):
        profile = AgeProfile(median_days=60)
        a = [profile.sample_age(random.Random(7)) for _ in range(10)]
        b = [profile.sample_age(random.Random(7)) for _ in range(10)]
        assert a == b

    def test_median_is_roughly_respected(self):
        profile = AgeProfile(median_days=100, sigma=0.8, cap_days=100000)
        rng = random.Random(1)
        samples = sorted(profile.sample_age(rng) for _ in range(4000))
        empirical_median = samples[len(samples) // 2]
        assert 80 <= empirical_median <= 125

    def test_scaled_shifts_median(self):
        base = AgeProfile(median_days=50, sigma=0.7)
        older = base.scaled(3.0)
        assert older.median_days == 150
        assert older.sigma == base.sigma

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            AgeProfile(median_days=50).scaled(0)

    @given(st.floats(min_value=1.0, max_value=1000.0), st.integers(0, 2**32))
    def test_sample_always_positive(self, median, seed):
        profile = AgeProfile(median_days=median)
        assert profile.sample_age(random.Random(seed)) >= profile.floor_days
