"""Regression pins for the epoch components in the search-tier cache keys.

The cache-coherence contract (docs/architecture.md): a cache filled
from index-derived state keys on the index epoch, so entries computed
before a mutation become unreachable instead of being served stale —
and content-addressed caches (the snippet cache) need no epoch because
their key *is* the content.
"""

import dataclasses

import pytest

from repro.entities import build_default_catalog
from repro.search.engine import SearchEngine
from repro.search.snippets import SnippetCache
from repro.webgraph.corpus import CorpusConfig, CorpusGenerator
from repro.webgraph.domains import build_default_registry


@pytest.fixture(scope="module")
def corpus_bits():
    catalog = build_default_catalog()
    registry = build_default_registry()
    corpus = CorpusGenerator(
        registry, catalog, CorpusConfig(seed=11, pages_per_volume_unit=1.0)
    ).generate()
    return corpus, registry


@pytest.fixture
def engine(corpus_bits):
    # Function-scoped: each test may mutate its engine's private index.
    corpus, registry = corpus_bits
    return SearchEngine(corpus, registry)


def _clone_page(page, suffix: str):
    return dataclasses.replace(
        page,
        doc_id=page.doc_id + 100_000,
        url=page.url + suffix,
    )


class TestQueryCacheEpochKey:
    def test_repeat_search_hits_at_a_fixed_epoch(self, engine):
        first = engine.search("hybrid suv review", k=5)
        assert engine.search("hybrid suv review", k=5) == first
        stats = engine.query_cache_stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_index_mutation_invalidates_without_clearing(
        self, engine, corpus_bits
    ):
        corpus, __ = corpus_bits
        engine.search("hybrid suv review", k=5)
        before = engine.query_cache_stats().misses
        engine.index.add(_clone_page(corpus.pages[0], "/epoch-copy"))
        # Same query, new epoch: the stale entry is unreachable, the
        # result is recomputed against the mutated index.
        engine.search("hybrid suv review", k=5)
        after = engine.query_cache_stats()
        assert after.misses == before + 1

    def test_epoch_tracks_the_index_mutation_counter(self, engine, corpus_bits):
        corpus, __ = corpus_bits
        before = engine.index.epoch
        engine.index.add(_clone_page(corpus.pages[1], "/epoch-bump"))
        assert engine.index.epoch == before + 1


class TestSnippetCacheContentAddressing:
    def test_same_body_shares_one_entry(self, corpus_bits):
        corpus, __ = corpus_bits
        cache = SnippetCache()
        page = corpus.pages[0]
        first = cache.page_sentences(page)
        twin = _clone_page(page, "/twin")
        assert cache.page_sentences(twin) is first
        counters = cache.counters()
        assert counters.hits == 1 and counters.misses == 1

    def test_changed_body_is_a_new_entry(self, corpus_bits):
        corpus, __ = corpus_bits
        cache = SnippetCache()
        page = corpus.pages[0]
        first = cache.page_sentences(page)
        changed = dataclasses.replace(page, body=page.body + " Fresh fact.")
        second = cache.page_sentences(changed)
        assert second is not first
        assert cache.counters().misses == 2
