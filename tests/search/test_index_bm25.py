"""Tests for the inverted index and BM25 scorer."""

import datetime as dt

import pytest

from repro.search.bm25 import BM25Scorer
from repro.search.index import InvertedIndex
from repro.webgraph.pages import DateMarkup, Page, PageKind


def make_page(doc_id: int, title: str, body: str) -> Page:
    return Page(
        doc_id=doc_id,
        url=f"https://example.com/x/{doc_id}",
        domain="example.com",
        kind=PageKind.REVIEW,
        vertical="smartphones",
        title=title,
        body=body,
        published=dt.date(2025, 1, 1),
        date_markup=DateMarkup.NONE,
    )


@pytest.fixture
def index():
    idx = InvertedIndex()
    idx.add_all(
        [
            make_page(0, "Best smartphones of 2025", "Apple and Samsung lead the smartphone market."),
            make_page(1, "Laptop buying guide", "Choosing a laptop means balancing battery and weight."),
            make_page(2, "Smartphone cameras compared", "Camera quality varies between smartphone brands."),
        ]
    )
    return idx


class TestInvertedIndex:
    def test_doc_count_and_lengths(self, index):
        assert index.doc_count == 3
        assert index.doc_length(0) > 0
        assert index.average_doc_length > 0

    def test_postings(self, index):
        docs = {p.doc_id for p in index.postings("smartphone")}
        assert docs == {0, 2}
        assert index.document_frequency("smartphone") == 2

    def test_unknown_term(self, index):
        assert index.postings("zzz") == ()
        assert index.document_frequency("zzz") == 0

    def test_postings_view_is_immutable_and_shared(self, index):
        view = index.postings("smartphone")
        assert isinstance(view, tuple)
        assert index.postings("smartphone") is view

    def test_postings_arrays_parallel_to_postings(self, index):
        doc_ids, tfs = index.postings_arrays("smartphone")
        assert doc_ids == tuple(p.doc_id for p in index.postings("smartphone"))
        assert tfs == tuple(p.term_frequency for p in index.postings("smartphone"))
        assert index.postings_arrays("zzz") == ((), ())

    def test_epoch_bumps_and_views_refresh(self, index):
        before = index.epoch
        old_view = index.postings("smartphone")
        index.add(make_page(3, "Smartphone deals", "A smartphone bargain roundup."))
        assert index.epoch == before + 1
        new_view = index.postings("smartphone")
        assert new_view is not old_view
        assert {p.doc_id for p in new_view} == {0, 2, 3}
        doc_ids, __ = index.postings_arrays("smartphone")
        assert set(doc_ids) == {0, 2, 3}

    def test_title_terms_boosted(self):
        idx = InvertedIndex(title_boost=3)
        idx.add(make_page(0, "unique", "other words here"))
        posting = idx.postings("unique")[0]
        assert posting.term_frequency == 3

    def test_duplicate_doc_id_raises(self, index):
        with pytest.raises(ValueError, match="already indexed"):
            index.add(make_page(0, "dup", "dup"))

    def test_invalid_title_boost(self):
        with pytest.raises(ValueError):
            InvertedIndex(title_boost=0)

    def test_contains_and_page(self, index):
        assert 0 in index
        assert 99 not in index
        assert index.page(1).title == "Laptop buying guide"

    def test_vocabulary_size(self, index):
        assert index.vocabulary_size() > 5


class TestBM25:
    def test_relevant_doc_scores_highest(self, index):
        scorer = BM25Scorer(index)
        scores = scorer.score_all("smartphone camera quality")
        assert scores  # non-empty
        best = max(scores, key=scores.get)
        assert best == 2

    def test_no_match_returns_empty(self, index):
        assert BM25Scorer(index).score_all("zebra xylophone") == {}

    def test_idf_monotone_in_rarity(self, index):
        scorer = BM25Scorer(index)
        # "laptop" (df=1) is rarer than "smartphon" (df=2).
        assert scorer.idf("laptop") > scorer.idf("smartphone")
        assert scorer.idf("neverseen") > scorer.idf("laptop")

    def test_idf_non_negative(self, index):
        scorer = BM25Scorer(index)
        for term in ("smartphone", "laptop", "apple", "market"):
            assert scorer.idf(term) >= 0

    def test_scores_positive(self, index):
        scores = BM25Scorer(index).score_all("smartphone")
        assert all(s > 0 for s in scores.values())

    def test_parameter_validation(self, index):
        with pytest.raises(ValueError):
            BM25Scorer(index, k1=-1)
        with pytest.raises(ValueError):
            BM25Scorer(index, b=1.5)

    def test_empty_index(self):
        scorer = BM25Scorer(InvertedIndex())
        assert scorer.score_all("anything") == {}

    def test_term_frequency_saturates(self):
        idx = InvertedIndex(title_boost=1)
        idx.add(make_page(0, "x", "camera " * 1 + "filler words padding here"))
        idx.add(make_page(1, "x", "camera " * 20))
        idx.add(make_page(2, "x", "nothing relevant at all whatsoever"))
        scorer = BM25Scorer(idx)
        scores = scorer.score_all("camera")
        # More occurrences score higher, but far less than 20x.
        assert scores[1] > scores[0]
        assert scores[1] < 20 * scores[0]
