"""Tests for the SEO model, snippets, and the full search engine."""

import datetime as dt

import pytest

from repro.entities import build_default_catalog
from repro.search.engine import SearchEngine
from repro.search.seo import SeoWeights, freshness_decay
from repro.search.snippets import extract_snippet
from repro.webgraph.corpus import CorpusConfig, CorpusGenerator
from repro.webgraph.domains import build_default_registry
from repro.webgraph.pages import DateMarkup, Page, PageKind
from repro.webgraph.urls import registrable_domain


@pytest.fixture(scope="module")
def engine_world():
    catalog = build_default_catalog()
    registry = build_default_registry()
    corpus = CorpusGenerator(registry, catalog, CorpusConfig(seed=11)).generate()
    return catalog, registry, corpus, SearchEngine(corpus, registry)


class TestFreshnessDecay:
    def test_today_is_one(self):
        assert freshness_decay(0) == 1.0

    def test_half_life(self):
        assert freshness_decay(365, half_life_days=365) == pytest.approx(0.5)

    def test_monotone(self):
        values = [freshness_decay(d) for d in (0, 30, 180, 365, 1000)]
        assert values == sorted(values, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            freshness_decay(-1)
        with pytest.raises(ValueError):
            freshness_decay(1, half_life_days=0)


class TestSeoWeights:
    def test_blend_monotone_in_each_signal(self):
        weights = SeoWeights()
        base = weights.blend(0.5, 0.5, 0.5, 100)
        assert weights.blend(0.9, 0.5, 0.5, 100) > base
        assert weights.blend(0.5, 0.9, 0.5, 100) > base
        assert weights.blend(0.5, 0.5, 0.9, 100) > base
        assert weights.blend(0.5, 0.5, 0.5, 10) > base

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            SeoWeights(relevance=-0.1)

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            SeoWeights(relevance=0, authority=0, on_page_seo=0, freshness=0)


class TestSnippets:
    def _page(self, body):
        return Page(
            doc_id=0,
            url="https://example.com/a",
            domain="example.com",
            kind=PageKind.REVIEW,
            vertical="smartphones",
            title="Fallback title",
            body=body,
            published=dt.date(2025, 1, 1),
            date_markup=DateMarkup.NONE,
        )

    def test_picks_relevant_sentences(self):
        body = (
            "This paragraph discusses shipping.\n"
            "The camera on this smartphone is superb.\n"
            "Unrelated closing remark."
        )
        snippet = extract_snippet(self._page(body), "smartphone camera", max_sentences=1)
        assert snippet == "The camera on this smartphone is superb."

    def test_preserves_document_order(self):
        body = "Battery life is great. Camera is weak. Battery charging is fast."
        snippet = extract_snippet(self._page(body), "battery", max_sentences=2)
        assert snippet.index("Battery life") < snippet.index("Battery charging")

    def test_empty_body_falls_back_to_title(self):
        assert extract_snippet(self._page(""), "anything") == "Fallback title"

    def test_invalid_max_sentences(self):
        with pytest.raises(ValueError):
            extract_snippet(self._page("x."), "q", max_sentences=0)


class TestSearchEngine:
    def test_topical_results(self, engine_world):
        *_, engine = engine_world
        results = engine.search("Top 10 most reliable smartphones in 2025", k=10)
        assert results
        verticals = {r.page.vertical for r in results}
        assert "smartphones" in verticals

    def test_ranks_are_sequential(self, engine_world):
        *_, engine = engine_world
        results = engine.search("best laptops for students", k=10)
        assert [r.rank for r in results] == list(range(1, len(results) + 1))

    def test_host_crowding_limit(self, engine_world):
        *_, engine = engine_world
        results = engine.search("best SUVs to buy in 2025", k=10)
        per_domain = {}
        for r in results:
            per_domain[r.domain] = per_domain.get(r.domain, 0) + 1
        assert max(per_domain.values()) <= 2

    def test_result_urls_match_domains(self, engine_world):
        *_, engine = engine_world
        for r in engine.search("best hotels", k=10):
            assert registrable_domain(r.url) == r.domain

    def test_deterministic(self, engine_world):
        *_, engine = engine_world
        a = [r.url for r in engine.search("best credit cards", k=10)]
        b = [r.url for r in engine.search("best credit cards", k=10)]
        assert a == b

    def test_nonsense_query_returns_empty(self, engine_world):
        *_, engine = engine_world
        assert engine.search("qwzx flibber") == []

    def test_snippets_carry_urls(self, engine_world):
        *_, engine = engine_world
        snippets = engine.search_with_snippets("best smartwatches for running", k=5)
        assert snippets
        for snippet in snippets:
            assert snippet.text
            assert snippet.url.startswith("https://")
            assert snippet.domain == registrable_domain(snippet.url)

    def test_invalid_k(self, engine_world):
        *_, engine = engine_world
        with pytest.raises(ValueError):
            engine.search("x", k=0)

    def test_authority_in_bounds(self, engine_world):
        __, registry, __, engine = engine_world
        for name in registry.names():
            assert 0.0 <= engine.domain_authority(name) <= 1.0

    def test_unknown_domain_gets_the_documented_default(self, engine_world):
        # The organic blend and domain_authority() must agree on one
        # default for domains outside the registry.
        *_, engine = engine_world
        assert (
            engine.domain_authority("unknown.example")
            == SearchEngine.UNKNOWN_DOMAIN_AUTHORITY
            == 0.3
        )

    def test_freshness_weight_shifts_results_younger(self, engine_world):
        catalog, registry, corpus, __ = engine_world
        stale = SearchEngine(corpus, registry, SeoWeights(freshness=0.0, relevance=0.5, authority=0.35, on_page_seo=0.15))
        fresh = SearchEngine(corpus, registry, SeoWeights(freshness=0.6, relevance=0.25, authority=0.1, on_page_seo=0.05))
        query = "best smartphones in 2025"
        def mean_age(engine):
            results = engine.search(query, k=10)
            return sum(corpus.clock.age_days(r.page.published) for r in results) / len(results)
        assert mean_age(fresh) < mean_age(stale)
