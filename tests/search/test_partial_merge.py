"""Oracle tests: the partial merge over surviving shards is exact.

When a shard is lost past the resilience ladder, the scatter degrades
to a merge over the survivors.  The contract is still float-exactness,
just over a smaller universe: for *any* seed and shard count, killing
shard ``i`` with an unrecoverable ``search.shard@i`` plan must produce
exactly the reference-style ranking of the documents the surviving
shards scored — same urls, same floats, same crowding — with
``max_bm25`` renormalized over the survivors.  The oracle below is the
reference pipeline rebuilt from per-shard score dicts (full sort, then
crowding), deliberately independent of ``_merge_ranked``'s bounded-heap
prefix and fallback machinery.

Recoverable plans must leave no trace at all: they recover inside the
retry ladder, so results, the coverage log, and the query cache all
match a clean run byte for byte.
"""

import pytest

from repro.resilience import (
    FaultPlan,
    ResilienceConfig,
    ResilienceContext,
)
from repro.search.engine import SearchEngine
from repro.search.sharding import ShardedSearchEngine
from repro.search.tokenize import tokenize

from tests.search.test_sharded_equivalence import (
    SHARD_COUNTS,
    _sparse_page,
    _tiny_corpus,
    _workload,
    shard_world,  # noqa: F401 - module-scoped fixture, re-registered here
    sharded_engines,  # noqa: F401 - module-scoped fixture, re-registered here
)


def _context(plan_text: str, seed: int = 0) -> ResilienceContext:
    return ResilienceContext(
        ResilienceConfig(plan=FaultPlan.parse(plan_text, seed=seed))
    )


def _expected_partial(engine, query: str, dead: set[int], k: int):
    """The reference oracle: blend + full sort + crowding over exactly
    the documents the surviving shards would score."""
    terms = tuple(tokenize(query))
    merged: dict[int, float] = {}
    for shard_id, scorer in enumerate(engine._shard_scorers()):
        if shard_id in dead:
            continue
        merged.update(scorer.score_terms(terms))
    if not merged:
        return []
    max_bm25 = max(merged.values())
    index = engine.index
    clock = engine._corpus.clock
    candidates = []
    for doc_id, raw in merged.items():
        page = index.page(doc_id)
        relevance = raw / max_bm25 if max_bm25 else 0.0
        blended = engine._weights.blend(
            relevance=relevance,
            authority=engine.domain_authority(page.domain),
            on_page_seo=page.seo_score,
            age_days=clock.age_days(page.published),
        )
        candidates.append((blended, doc_id, page))
    candidates.sort(key=lambda item: (-item[0], item[1]))
    results = []
    per_domain: dict[str, int] = {}
    for score, doc_id, page in candidates:
        seen = per_domain.get(page.domain, 0)
        if seen >= engine._max_per_domain:
            continue
        per_domain[page.domain] = seen + 1
        results.append((page.url, score))
        if len(results) == k:
            break
    return results


class TestPartialMergeOracle:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_single_dead_shard_matches_survivor_oracle(
        self, shard_world, sharded_engines, shards
    ):
        """Every seed x shard count x dead shard: the degraded page is
        float-exact equal to the survivors-only reference ranking."""
        seed, catalog, __, __, __ = shard_world
        engine = sharded_engines(shards)
        engine.clear_query_cache()
        queries = _workload(catalog, seed)[:6]
        try:
            for dead in range(shards):
                ctx = _context(f"search.shard@{dead}:1.0:inf")
                engine.set_resilience(ctx)
                for query in queries:
                    got = [
                        (r.url, r.score) for r in engine.search(query, 10)
                    ]
                    assert got == _expected_partial(
                        engine, query, {dead}, 10
                    )
                # Non-empty queries each record exactly one coverage loss.
                records = ctx.coverage.records()
                assert all(r.missing == (dead,) for r in records)
                assert all(r.total_shards == shards for r in records)
                assert all(r.surviving == shards - 1 for r in records)
        finally:
            engine.set_resilience(None)

    def test_two_dead_shards(self, shard_world, sharded_engines):
        seed, catalog, __, __, __ = shard_world
        engine = sharded_engines(4)
        engine.clear_query_cache()
        ctx = _context("search.shard@1:1.0:inf,search.shard@3:1.0:inf")
        engine.set_resilience(ctx)
        try:
            for query in _workload(catalog, seed)[:6]:
                got = [(r.url, r.score) for r in engine.search(query, 10)]
                assert got == _expected_partial(engine, query, {1, 3}, 10)
            records = ctx.coverage.records()
            assert all(r.missing == (1, 3) for r in records)
            assert all(r.fraction == 0.5 for r in records)
        finally:
            engine.set_resilience(None)

    def test_all_shards_dead_is_an_empty_page(
        self, shard_world, sharded_engines
    ):
        """Total loss degrades to an empty page with provenance — never
        a hang, an exception, or a silently truncated ranking."""
        seed, catalog, __, __, __ = shard_world
        engine = sharded_engines(2)
        engine.clear_query_cache()
        ctx = _context("search.shard:1.0:inf")
        engine.set_resilience(ctx)
        try:
            query = _workload(catalog, seed)[0]
            assert engine.search(query, 10) == []
            (record,) = ctx.coverage.records()
            assert record.missing == (0, 1)
            assert record.surviving == 0
            assert record.fraction == 0.0
        finally:
            engine.set_resilience(None)

    def test_crowding_fallback_inside_partial_merge(
        self, shard_world, monkeypatch
    ):
        """max_per_domain=1 exhausts the merged headroom prefix; the
        full-union fallback must reproduce the survivor oracle too."""
        seed, catalog, registry, corpus, __ = shard_world
        engine = ShardedSearchEngine(
            corpus, registry, max_per_domain=1, shards=4
        )
        engine.set_resilience(_context("search.shard@2:1.0:inf"))
        crowd_calls = []
        original = SearchEngine._crowd

        def spy(self, ordered, k):
            crowd_calls.append(len(ordered))
            return original(self, ordered, k)

        monkeypatch.setattr(SearchEngine, "_crowd", spy)
        fallbacks = 0
        for query in _workload(catalog, seed):
            for k in (5, 10):
                crowd_calls.clear()
                got = [(r.url, r.score) for r in engine.search(query, k)]
                if len(crowd_calls) == 2:
                    fallbacks += 1
                assert got == _expected_partial(engine, query, {2}, k)
        assert fallbacks > 0, "workload never exhausted the merged headroom"

    def test_tiny_corpus_shard_loss(self):
        """A shard whose loss removes specific known documents: the
        survivors' documents still rank, the dead shard's never appear."""
        pages = [
            _sparse_page(0, "Best smartphones", "Apple and Samsung lead."),
            _sparse_page(1, "Smartphone cameras", "Quality by smartphone."),
            _sparse_page(2, "Smartphone batteries", "Lasting smartphone."),
            _sparse_page(3, "Smartphone screens", "Bright smartphone."),
        ]
        corpus = _tiny_corpus(pages)
        from repro.webgraph.domains import build_default_registry

        engine = ShardedSearchEngine(
            corpus, build_default_registry(), shards=2, max_per_domain=4
        )
        engine.set_resilience(_context("search.shard@1:1.0:inf"))
        results = engine.search("smartphone", 4)
        # Shard 1 owns the odd doc_ids; only even ids survive.
        assert sorted(r.page.doc_id for r in results) == [0, 2]
        assert [(r.url, r.score) for r in results] == _expected_partial(
            engine, "smartphone", {1}, 4
        )


class TestRecoverablePlansAreInvisible:
    def test_results_and_cache_identical_to_clean_run(
        self, shard_world, sharded_engines
    ):
        """failures=2 recovers at attempt 3 (inside the default ladder):
        results, coverage, and cacheability all match a clean run."""
        seed, catalog, __, __, single = shard_world
        engine = sharded_engines(4)
        ctx = _context("search.shard:0.5:2:error", seed=7)
        engine.set_resilience(ctx)
        try:
            engine.clear_query_cache()
            for query in _workload(catalog, seed)[:8]:
                chaotic = [(r.url, r.score) for r in engine.search(query, 10)]
                clean = [(r.url, r.score) for r in single.search(query, 10)]
                assert chaotic == clean
            assert ctx.coverage.count() == 0
            assert ctx.events.get("faults_injected") > 0
            assert ctx.events.get("retries") == ctx.events.get(
                "faults_injected"
            )
            assert ctx.events.get("exhausted") == 0
            # Recovered pages are full coverage, so they memoize.
            before = engine.query_cache_stats()
            query = _workload(catalog, seed)[0]
            engine.search(query, 10)
            assert engine.query_cache_stats().hits == before.hits + 1
        finally:
            engine.set_resilience(None)

    def test_partial_pages_never_enter_the_query_cache(
        self, shard_world, sharded_engines
    ):
        """A degraded page must not be memoized: the moment the plan is
        lifted (the shard 'recovers'), the same query regains full
        coverage instead of replaying the cached partial merge."""
        seed, catalog, __, __, single = shard_world
        engine = sharded_engines(4)
        query = _workload(catalog, seed)[0]
        engine.clear_query_cache()
        engine.set_resilience(_context("search.shard@0:1.0:inf"))
        try:
            partial = engine.search(query, 10)
            counters = engine.query_cache_stats()
            assert counters.misses == 0 and counters.hits == 0
        finally:
            engine.set_resilience(None)
        recovered = engine.search(query, 10)
        full = [(r.url, r.score) for r in single.search(query, 10)]
        assert [(r.url, r.score) for r in recovered] == full
        assert [(r.url, r.score) for r in partial] != full

    def test_degraded_scatter_is_quarantined_with_provenance(
        self, shard_world, sharded_engines
    ):
        seed, catalog, __, __, __ = shard_world
        engine = sharded_engines(4)
        engine.clear_query_cache()
        ctx = _context("search.shard@1:1.0:inf")
        engine.set_resilience(ctx)
        try:
            query = _workload(catalog, seed)[0]
            engine.search(query, 10)
        finally:
            engine.set_resilience(None)
        (record,) = ctx.quarantine.records()
        assert record.site == "search.shard"
        assert record.kind == "degraded"
        assert "shard 1" in record.reason
        assert record.attempts == 3  # the full default ladder
        assert ctx.events.get("shard_scatter_losses") == 1
