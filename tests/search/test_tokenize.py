"""Tests for the text analyzer."""

from hypothesis import given
from hypothesis import strategies as st

from repro.search.tokenize import STOPWORDS, stem, tokenize


class TestStem:
    def test_plural(self):
        assert stem("smartphones") == "smartphone"
        assert stem("airlines") == "airline"

    def test_ing(self):
        assert stem("charging") == "charg"

    def test_short_words_untouched(self):
        assert stem("gps") == "gps"
        assert stem("is") == "is"

    def test_only_one_suffix_stripped(self):
        # "rankings" -> "rank" via the combined "ings" suffix.
        assert stem("rankings") == "rank"


class TestTokenize:
    def test_basic(self):
        assert tokenize("Top 10 most reliable smartphones in 2025!") == [
            "10", "most", "reliable", "smartphone", "2025",
        ]

    def test_stopwords_removed(self):
        tokens = tokenize("the best of the best")
        assert tokens == []

    def test_punctuation_split(self):
        assert tokenize("Wi-Fi 7: how it works") == ["wi", "fi", "work"]

    def test_single_chars_dropped(self):
        assert "a" not in tokenize("a b c data")

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("   !!! ") == []

    def test_case_insensitive(self):
        assert tokenize("APPLE") == tokenize("apple")

    @given(st.text(max_size=100))
    def test_never_raises_and_yields_clean_tokens(self, text):
        tokens = tokenize(text)
        for token in tokens:
            assert token  # non-empty
            assert token == token.lower()
            assert token not in STOPWORDS or len(token) > 1

    @given(st.text(max_size=60))
    def test_idempotent_on_own_output(self, text):
        tokens = tokenize(text)
        retokenized = tokenize(" ".join(tokens))
        # Stemming is not idempotent in general ("ies"->"i" cases aside),
        # but token *count* can only shrink via stopword collisions.
        assert len(retokenized) <= len(tokens)
