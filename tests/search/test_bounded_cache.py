"""Regressions for memo-cache None handling.

``BoundedCache.get`` used to compare the stored value against ``None``
to decide hit vs miss, so a compute that legitimately returned ``None``
recomputed on every lookup — and each re-``put`` of the existing key was
miscounted as a hit, silently inflating the hit rate while doing the
work of a miss.  Presence (via a private sentinel) now decides, and the
sibling :class:`repro.core.runner.EvidenceCache` is pinned to the same
contract.
"""

import pytest

from repro.core.runner import EvidenceCache
from repro.search.caching import BoundedCache


class TestBoundedCacheNoneValues:
    def test_none_value_computes_once(self):
        cache = BoundedCache(limit=8)
        calls = []

        def compute():
            calls.append(1)
            return None

        assert cache.get_or_compute("k", compute) is None
        assert cache.get_or_compute("k", compute) is None
        assert cache.get_or_compute("k", compute) is None
        assert len(calls) == 1

    def test_none_value_counters_are_honest(self):
        cache = BoundedCache(limit=8)
        cache.get_or_compute("k", lambda: None)
        cache.get_or_compute("k", lambda: None)
        counters = cache.counters()
        # One miss (the insert), one hit (the repeat) — not the old
        # miss-then-two-phantom-hits shape from re-inserting every call.
        assert (counters.hits, counters.misses) == (1, 1)
        assert counters.size == 1

    def test_get_counts_stored_none_as_hit(self):
        cache = BoundedCache(limit=8)
        cache.put("k", None)
        assert cache.get("k", default="sentinel") is None
        assert cache.counters().hits == 1

    def test_get_absent_key_returns_default_without_counting(self):
        cache = BoundedCache(limit=8)
        marker = object()
        assert cache.get("missing", marker) is marker
        assert cache.get("missing") is None
        counters = cache.counters()
        assert (counters.hits, counters.misses) == (0, 0)

    def test_none_survives_alongside_other_values(self):
        cache = BoundedCache(limit=8)
        cache.put("none", None)
        cache.put("zero", 0)
        cache.put("empty", "")
        # All falsy values are first-class citizens.
        assert "none" in cache and cache.get("none") is None
        assert cache.get("zero") == 0
        assert cache.get("empty") == ""
        assert len(cache) == 3

    def test_eviction_of_none_entry_recomputes(self):
        cache = BoundedCache(limit=1)
        cache.get_or_compute("a", lambda: None)
        cache.get_or_compute("b", lambda: "other")  # evicts "a"
        calls = []
        cache.get_or_compute("a", lambda: calls.append(1))
        assert len(calls) == 1


class TestEvidenceCacheNoneValues:
    def test_none_value_computes_once(self):
        cache = EvidenceCache(limit=8)
        calls = []

        def compute():
            calls.append(1)
            return None

        assert cache.get_or_compute("k", compute) is None
        assert cache.get_or_compute("k", compute) is None
        assert len(calls) == 1
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)
        assert "k" in cache

    def test_failed_compute_stores_nothing(self):
        cache = EvidenceCache(limit=8)
        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", self._boom)
        assert "k" not in cache
        assert (cache.stats.hits, cache.stats.misses) == (0, 0)
        assert cache.get_or_compute("k", lambda: None) is None
        assert cache.stats.misses == 1

    @staticmethod
    def _boom():
        raise RuntimeError("retrieval failed")
