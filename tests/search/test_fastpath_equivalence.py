"""Property tests: the query fast path is byte-identical to the reference.

The tentpole contract of the search substrate: ``SearchEngine.search``,
``search_with_snippets``, and ``BM25Scorer.score_terms`` must reproduce
their reference implementations *bit for bit* — same rankings, same
float scores, same snippet strings — across seeds and corpus scales.
Every assertion here is exact equality, never ``approx``.
"""

import datetime as dt

import pytest

from repro.entities import build_default_catalog
from repro.entities.queries import (
    comparison_queries,
    intent_queries,
    ranking_queries,
)
from repro.search.bm25 import BM25Scorer
from repro.search.engine import SearchEngine
from repro.search.index import InvertedIndex
from repro.search.seo import SeoWeights
from repro.search.snippets import SnippetCache, extract_snippet
from repro.search.tokenize import tokenize
from repro.webgraph.corpus import CorpusConfig, CorpusGenerator
from repro.webgraph.domains import build_default_registry
from repro.webgraph.pages import DateMarkup, Page, PageKind

SEEDS = (3, 11, 23)
SCALES = (0.7, 1.4)  # pages_per_volume_unit: half and 1.4x default density


@pytest.fixture(
    scope="module",
    params=[(seed, scale) for seed in SEEDS for scale in SCALES],
    ids=[f"seed{seed}-ppu{scale}" for seed in SEEDS for scale in SCALES],
)
def eq_world(request):
    seed, scale = request.param
    catalog = build_default_catalog()
    registry = build_default_registry()
    corpus = CorpusGenerator(
        registry, catalog, CorpusConfig(seed=seed, pages_per_volume_unit=scale)
    ).generate()
    return seed, catalog, registry, corpus, SearchEngine(corpus, registry)


def _workload(catalog, seed):
    """A mixed query workload: every query shape plus edge probes."""
    texts = [q.text for q in ranking_queries(catalog, count=10, seed=seed)]
    texts += [
        q.text
        for q in comparison_queries(catalog, n_popular=4, n_niche=4, seed=seed)
    ]
    texts += [q.text for q in intent_queries(catalog, count=6, seed=seed)]
    texts += [
        "qwzx flibber",          # matches nothing
        "best smartphones",      # broad head query
        "where to buy running shoes deals",
    ]
    return texts


class TestSearchEquivalence:
    @pytest.mark.parametrize("k", (1, 3, 10))
    def test_search_matches_reference_exactly(self, eq_world, k):
        seed, catalog, __, __, engine = eq_world
        for query in _workload(catalog, seed):
            fast = engine.search(query, k)
            ref = engine.search_reference(query, k)
            assert len(fast) == len(ref)
            for a, b in zip(fast, ref):
                assert a.rank == b.rank
                assert a.url == b.url
                assert a.domain == b.domain
                assert a.score == b.score  # exact float equality
                assert a.page is b.page

    def test_bm25_scores_bit_identical(self, eq_world):
        seed, catalog, __, __, engine = eq_world
        scorer = BM25Scorer(engine.index)
        for query in _workload(catalog, seed):
            terms = tokenize(query)
            assert scorer.score_terms(terms) == scorer.score_terms_reference(terms)

    def test_snippets_match_reference_exactly(self, eq_world):
        seed, catalog, __, __, engine = eq_world
        for query in _workload(catalog, seed)[:12]:
            fast = engine.search_with_snippets(query, k=6)
            ref = engine.search_with_snippets_reference(query, k=6)
            assert [(s.text, s.url) for s in fast] == [
                (s.text, s.url) for s in ref
            ]

    def test_query_cache_hit_returns_equal_results(self, eq_world):
        seed, catalog, __, __, engine = eq_world
        query = _workload(catalog, seed)[0]
        engine.clear_query_cache()
        cold = engine.search(query, k=10)
        before = engine.query_cache_stats()
        warm = engine.search(query, k=10)
        after = engine.query_cache_stats()
        assert warm == cold
        assert after.hits == before.hits + 1
        # Callers get fresh lists: mutating one never corrupts the cache.
        warm.clear()
        assert engine.search(query, k=10) == cold


class TestCrowdingFallback:
    def test_fallback_is_exercised_and_exact(self, eq_world, monkeypatch):
        """With max_per_domain=1 the headroom prefix can run dry; the
        full-sort fallback must then reproduce the reference exactly."""
        seed, catalog, registry, corpus, __ = eq_world
        engine = SearchEngine(corpus, registry, max_per_domain=1)
        crowd_calls = []
        original = SearchEngine._crowd

        def spy(self, ordered, k):
            crowd_calls.append(len(ordered))
            return original(self, ordered, k)

        monkeypatch.setattr(SearchEngine, "_crowd", spy)
        fallbacks = 0
        for query in _workload(catalog, seed):
            for k in (5, 10):
                crowd_calls.clear()
                fast = engine.search(query, k)
                if len(crowd_calls) == 2:
                    fallbacks += 1
                ref = engine.search_reference(query, k)
                assert [(r.url, r.score) for r in fast] == [
                    (r.url, r.score) for r in ref
                ]
        assert fallbacks > 0, "workload never exhausted the crowding headroom"


class _BoostedAuthority(SeoWeights):
    """A blend override: the fast path must not apply to subclasses."""

    def blend(self, relevance, authority, on_page_seo, age_days):
        return super().blend(relevance, authority, on_page_seo, age_days) + 0.5 * authority


class TestWeightsGate:
    def test_custom_seo_weights_instance_stays_on_fast_path(self, eq_world):
        __, __, registry, corpus, __ = eq_world
        engine = SearchEngine(
            corpus,
            registry,
            SeoWeights(relevance=0.6, authority=0.2, on_page_seo=0.1, freshness=0.1),
        )
        fast = engine.search("best smartphones", k=10)
        ref = engine.search_reference("best smartphones", k=10)
        assert [(r.url, r.score) for r in fast] == [(r.url, r.score) for r in ref]

    def test_blend_subclass_routes_to_reference(self, eq_world):
        __, __, registry, corpus, __ = eq_world
        boosted = SearchEngine(corpus, registry, _BoostedAuthority())
        plain = SearchEngine(corpus, registry)
        query = "best smartphones"
        subclassed = boosted.search(query, k=10)
        assert [(r.url, r.score) for r in subclassed] == [
            (r.url, r.score) for r in boosted.search_reference(query, k=10)
        ]
        # The override is honored: scores differ from the plain blend.
        assert [r.score for r in subclassed] != [
            r.score for r in plain.search(query, k=10)
        ]


class TestSnippetCacheRegression:
    def test_cached_extraction_pins_reference_output(self, eq_world):
        seed, catalog, __, corpus, __ = eq_world
        cache = SnippetCache()
        queries = _workload(catalog, seed)[:6]
        pages = corpus.pages[:40]
        for _round in range(2):  # second round exercises the hit path
            for page in pages:
                for query in queries:
                    assert cache.extract(page, query) == extract_snippet(page, query)
        counters = cache.counters()
        assert counters.hits > 0
        assert counters.misses == len(pages)

    def test_extract_with_terms_matches_extract(self, eq_world):
        seed, catalog, __, corpus, __ = eq_world
        cache = SnippetCache()
        query = _workload(catalog, seed)[0]
        terms = frozenset(tokenize(query))
        for page in corpus.pages[:20]:
            assert cache.extract_with_terms(page, terms) == cache.extract(
                page, query
            )


def _sparse_page(doc_id: int, title: str, body: str) -> Page:
    return Page(
        doc_id=doc_id,
        url=f"https://example.com/p/{doc_id}",
        domain="example.com",
        kind=PageKind.REVIEW,
        vertical="smartphones",
        title=title,
        body=body,
        published=dt.date(2025, 1, 1),
        date_markup=DateMarkup.NONE,
    )


class TestSparseDocIds:
    """Non-contiguous doc ids take the mapping branch of the norm table."""

    def test_scores_bit_identical_on_sparse_index(self):
        index = InvertedIndex()
        index.add_all(
            [
                _sparse_page(3, "Best smartphones", "Apple and Samsung lead."),
                _sparse_page(7, "Laptop guide", "Battery and weight balance."),
                _sparse_page(11, "Smartphone cameras", "Quality varies by smartphone."),
            ]
        )
        dense, table = index.doc_length_table()
        assert not dense
        scorer = BM25Scorer(index)
        for query in ("smartphone camera", "laptop battery", "apple"):
            terms = tokenize(query)
            assert scorer.score_terms(terms) == scorer.score_terms_reference(terms)
