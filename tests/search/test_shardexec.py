"""The resident shard executor: supervision, respawn, and exactness.

Residency must change *where* scoring happens and nothing else: every
float the worker fleet returns is identical to the in-process sharded
engine's, which is identical to the single index's.  Supervision is
deterministic bookkeeping over real processes — kills are observed by
heartbeat, revived by generation-checked respawn, and a revived worker
rebuilds the same frozen shard, so the retried RPC returns the floats
the dead worker would have.
"""

import os
import pickle

import pytest

from repro.entities import build_default_catalog
from repro.resilience import (
    FaultPlan,
    ResilienceConfig,
    ResilienceContext,
)
from repro.search.shardexec import (
    ResidentShardedSearchEngine,
    ShardSupervisor,
    ShardWorker,
    ShardWorkerError,
)
from repro.search.sharding import ShardedIndex, ShardedSearchEngine
from repro.search.tokenize import tokenize
from repro.webgraph.corpus import CorpusConfig, CorpusGenerator
from repro.webgraph.domains import build_default_registry

from tests.search.test_partial_merge import _expected_partial
from tests.search.test_sharded_equivalence import _sparse_page, _tiny_corpus

QUERIES = (
    "best smartphones",
    "smartphone camera review",
    "where to buy running shoes deals",
    "qwzx flibber",
)


@pytest.fixture(scope="module")
def world():
    catalog = build_default_catalog()
    registry = build_default_registry()
    corpus = CorpusGenerator(
        registry, catalog, CorpusConfig(seed=11)
    ).generate()
    return catalog, registry, corpus


@pytest.fixture(scope="module")
def inproc(world):
    __, registry, corpus = world
    return ShardedSearchEngine(corpus, registry, shards=4)


@pytest.fixture(scope="module")
def resident(world):
    __, registry, corpus = world
    engine = ResidentShardedSearchEngine(corpus, registry, shards=4)
    yield engine
    engine.close()


@pytest.fixture
def supervisor(inproc):
    index = inproc.index
    assert isinstance(index, ShardedIndex)
    sup = ShardSupervisor(index.shards, index.global_stats())
    yield sup
    sup.close()


class TestResidentEquivalence:
    def test_search_matches_in_process_engine_exactly(
        self, resident, inproc
    ):
        for query in QUERIES:
            for k in (1, 3, 10):
                a = resident.search(query, k)
                b = inproc.search(query, k)
                assert [(r.url, r.score) for r in a] == [
                    (r.url, r.score) for r in b
                ]

    def test_fleet_shape(self, resident):
        sup = resident.supervisor()
        assert sup.shard_count == 4
        assert sup.resident_processes  # fork is available on CI boxes
        assert resident.supervisor() is sup  # same epoch, same fleet
        health = sup.heartbeat()
        assert health == {0: True, 1: True, 2: True, 3: True}
        for shard_id in range(4):
            worker = sup.worker(shard_id)
            assert isinstance(worker, ShardWorker)
            assert worker.process.pid != os.getpid()
            assert worker.process.daemon


class TestSupervision:
    def test_scores_match_in_process_scorers(self, supervisor, inproc):
        terms = tuple(tokenize("best smartphone camera"))
        scorers = inproc._shard_scorers()
        for shard_id, scorer in enumerate(scorers):
            assert supervisor.score(shard_id, terms) == scorer.score_terms(
                terms
            )

    def test_killed_worker_respawns_transparently(self, supervisor, inproc):
        terms = tuple(tokenize("best smartphones"))
        expected = inproc._shard_scorers()[2].score_terms(terms)
        victim = supervisor.worker(2)
        victim.process.kill()
        victim.process.join()
        # One scatter-side score call: pipe death -> respawn -> retry.
        assert supervisor.score(2, terms) == expected
        assert supervisor.generation(2) == 1
        assert supervisor.heartbeat() == {i: True for i in range(4)}

    def test_heartbeat_observes_without_respawning(self, supervisor):
        victim = supervisor.worker(1)
        victim.process.kill()
        victim.process.join()
        health = supervisor.heartbeat()
        assert health[1] is False
        assert all(health[i] for i in (0, 2, 3))
        # Pure observation: the generation did not move.
        assert supervisor.generation(1) == 0
        assert supervisor.worker(1) is victim

    def test_respawn_is_generation_checked(self, supervisor):
        first = supervisor.respawn(0, seen_generation=0)
        assert first.generation == 1
        # A racing loser carrying the stale generation reuses the
        # winner's worker instead of killing it.
        assert supervisor.respawn(0, seen_generation=0) is first
        assert supervisor.generation(0) == 1
        # Unconditional respawn always advances.
        assert supervisor.respawn(0).generation == 2

    def test_close_is_idempotent_and_final(self, supervisor):
        retired = [supervisor.worker(i) for i in range(4)]
        supervisor.close()
        supervisor.close()
        assert all(not worker.alive() for worker in retired)
        with pytest.raises(ShardWorkerError, match="supervisor closed"):
            supervisor.respawn(0)

    def test_thread_fallback_same_interface_same_floats(self, inproc):
        index = inproc.index
        sup = ShardSupervisor(
            index.shards, index.global_stats(), use_processes=False
        )
        try:
            assert not sup.resident_processes
            terms = tuple(tokenize("smartphone battery"))
            for shard_id, scorer in enumerate(inproc._shard_scorers()):
                assert sup.score(shard_id, terms) == scorer.score_terms(terms)
            assert sup.heartbeat() == {i: True for i in range(4)}
            # Generations advance identically, so respawn bookkeeping
            # (and the chaos tests that assert it) are platform-proof.
            assert sup.respawn(3).generation == 1
        finally:
            sup.close()

    def test_worker_error_pickles(self):
        error = ShardWorkerError(3, "died twice in one scatter")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.shard_id == 3
        assert clone.reason == error.reason
        assert str(clone) == str(error)


class TestResidentEngineSupervision:
    def test_forked_study_worker_scores_in_process(self, resident, inproc):
        """A foreign pid (a forked study worker) must not speak over the
        parent's pipes: the seam scores on the inherited scorer."""
        terms = tuple(tokenize("best smartphones"))
        scorer = resident._shard_scorers()[0]
        resident.close()
        owner = resident._owner_pid
        try:
            resident._owner_pid = -1  # no real pid: simulate a fork child
            out = resident._score_shard(0, terms, scorer)
        finally:
            resident._owner_pid = owner
        assert out == scorer.score_terms(terms)
        # No fleet was (re)spawned to answer it.
        assert resident._supervisor_table is None

    def test_epoch_move_replaces_the_fleet(self):
        pages = [
            _sparse_page(0, "Best smartphones", "Apple and Samsung lead."),
            _sparse_page(1, "Laptop guide", "Battery and weight balance."),
            _sparse_page(2, "Smartphone cameras", "Quality by smartphone."),
        ]
        registry = build_default_registry()
        engine = ResidentShardedSearchEngine(
            _tiny_corpus(pages), registry, shards=2
        )
        try:
            old = engine.supervisor()
            old_worker = old.worker(0)
            extra = _sparse_page(3, "Smartphone screens", "Bright screens.")
            engine.index.add(extra)
            new = engine.supervisor()
            assert new is not old
            assert not old_worker.alive()  # stale fleet was stopped
            results = engine.search("smartphone screens", 4)
            assert any(r.page is extra for r in results)
        finally:
            engine.close()

    def test_engine_close_stops_fleet_and_respawns_on_demand(self, resident):
        sup = resident.supervisor()
        workers = [sup.worker(i) for i in range(4)]
        resident.close()
        assert all(not w.alive() for w in workers)
        assert resident._supervisor_table is None
        # Next query forks a fresh fleet lazily.
        assert resident.search("best smartphones", 3)
        assert resident.supervisor() is not sup


class TestResidentChaos:
    def test_recoverable_crash_respawns_and_stays_byte_identical(
        self, resident, inproc
    ):
        """Every scatter crashes once: the hook respawns the worker, the
        ladder retries onto the fresh process, and the results are
        byte-identical to a clean run — the acceptance contract."""
        ctx = ResilienceContext(
            ResilienceConfig(
                plan=FaultPlan.parse("search.shard:1.0:1:crash", seed=0)
            )
        )
        resident.clear_query_cache()
        resident.set_resilience(ctx)
        try:
            for query in QUERIES:
                a = resident.search(query, 10)
                b = inproc.search(query, 10)
                assert [(r.url, r.score) for r in a] == [
                    (r.url, r.score) for r in b
                ]
        finally:
            resident.set_resilience(None)
        assert ctx.coverage.count() == 0  # recovered inside the ladder
        assert ctx.events.get("shard_worker_respawns") == len(QUERIES) * 4
        assert ctx.events.get("faults_injected") == len(QUERIES) * 4
        sup = resident.supervisor()
        assert all(sup.generation(i) >= 1 for i in range(4))
        assert sup.heartbeat() == {i: True for i in range(4)}

    def test_unrecoverable_shard_death_degrades_then_recovers(
        self, resident, inproc
    ):
        """Shard 3 dies for good: partial results float-exact equal to
        the surviving-shard merge, coverage populated — and once the
        plan lifts, the respawned worker serves full coverage again."""
        ctx = ResilienceContext(
            ResilienceConfig(
                plan=FaultPlan.parse("search.shard@3:1.0:inf:crash", seed=0)
            )
        )
        resident.clear_query_cache()
        resident.set_resilience(ctx)
        query = "best smartphones"
        try:
            partial = resident.search(query, 10)
            assert [
                (r.url, r.score) for r in partial
            ] == _expected_partial(resident, query, {3}, 10)
            (record,) = ctx.coverage.records()
            assert record.missing == (3,)
            assert record.total_shards == 4
            assert record.reasons == ("crash fault persisted",)
        finally:
            resident.set_resilience(None)
        sup = resident.supervisor()
        assert sup.generation(3) >= 1  # crash hook respawned it
        assert sup.heartbeat() == {i: True for i in range(4)}
        recovered = resident.search(query, 10)
        full = inproc.search(query, 10)
        assert [(r.url, r.score) for r in recovered] == [
            (r.url, r.score) for r in full
        ]
