"""Property tests: sharded search is float-exact equal to single-shard.

The sharding tentpole's contract: for any shard count,
``ShardedSearchEngine`` must reproduce the single-shard ``SearchEngine``
— and therefore ``search_reference`` — *bit for bit*: same rankings,
same float scores, same snippet strings, same page identities.  Every
assertion here is exact equality, never ``approx``.

Edge cases the merge must survive: a term present in only one shard, an
entirely empty shard, crowding-fallback engagement inside the merge
step, and sparse/non-contiguous doc ids.
"""

import datetime as dt

import pytest

from repro.entities import build_default_catalog
from repro.entities.queries import (
    comparison_queries,
    intent_queries,
    ranking_queries,
)
from repro.search.bm25 import BM25Scorer
from repro.search.engine import SearchEngine
from repro.search.seo import SeoWeights
from repro.search.sharding import (
    ShardedIndex,
    ShardedSearchEngine,
    build_shard_indexes,
    exchange_global_stats,
    partition_pages,
    shard_of,
)
from repro.search.tokenize import tokenize
from repro.webgraph.corpus import Corpus, CorpusConfig, CorpusGenerator
from repro.webgraph.dates import StudyClock
from repro.webgraph.domains import build_default_registry
from repro.webgraph.linkgraph import LinkGraph
from repro.webgraph.pages import DateMarkup, Page, PageKind

SEEDS = (3, 11, 23)
SHARD_COUNTS = (1, 2, 4, 8)


@pytest.fixture(scope="module", params=SEEDS, ids=[f"seed{s}" for s in SEEDS])
def shard_world(request):
    seed = request.param
    catalog = build_default_catalog()
    registry = build_default_registry()
    corpus = CorpusGenerator(
        registry, catalog, CorpusConfig(seed=seed)
    ).generate()
    return seed, catalog, registry, corpus, SearchEngine(corpus, registry)


def _chaos_context():
    """A resilience context from ``REPRO_CHAOS``, or ``None``.

    The ``make shard-chaos`` leg sets a *recoverable* ``search.shard``
    plan, so this whole suite re-runs with deterministic faults inside
    every scatter — and every byte-identity assertion must still hold,
    because recoverable faults recover inside the retry ladder.
    """
    from repro.core.config import default_chaos_plan
    from repro.resilience import (
        FaultPlan,
        ResilienceConfig,
        ResilienceContext,
    )

    text, seed = default_chaos_plan()
    if not text:
        return None
    return ResilienceContext(
        ResilienceConfig(plan=FaultPlan.parse(text, seed=seed))
    )


@pytest.fixture(scope="module")
def sharded_engines(shard_world):
    """Memoized sharded engines, so each (shards, kwargs) builds once."""
    __, __, registry, corpus, __ = shard_world
    built = {}

    def get(shards, **kwargs):
        key = (shards, tuple(sorted(kwargs.items())))
        if key not in built:
            engine = ShardedSearchEngine(
                corpus, registry, shards=shards, **kwargs
            )
            ctx = _chaos_context()
            if ctx is not None:
                engine.set_resilience(ctx)
            built[key] = engine
        return built[key]

    return get


def _workload(catalog, seed):
    """A mixed query workload: every query shape plus edge probes."""
    texts = [q.text for q in ranking_queries(catalog, count=10, seed=seed)]
    texts += [
        q.text
        for q in comparison_queries(catalog, n_popular=4, n_niche=4, seed=seed)
    ]
    texts += [q.text for q in intent_queries(catalog, count=6, seed=seed)]
    texts += [
        "qwzx flibber",          # matches nothing
        "best smartphones",      # broad head query
        "where to buy running shoes deals",
    ]
    return texts


def _tiny_corpus(pages):
    """A hand-built corpus (no links): authority falls back to the
    engine's unknown-domain default on both sides of the comparison."""
    return Corpus(
        pages=list(pages), link_graph=LinkGraph(), clock=StudyClock()
    )


def _sparse_page(doc_id: int, title: str, body: str) -> Page:
    return Page(
        doc_id=doc_id,
        url=f"https://example.com/p/{doc_id}",
        domain="example.com",
        kind=PageKind.REVIEW,
        vertical="smartphones",
        title=title,
        body=body,
        published=dt.date(2025, 1, 1),
        date_markup=DateMarkup.NONE,
    )


class TestShardedEquivalence:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_search_matches_single_shard_exactly(
        self, shard_world, sharded_engines, shards
    ):
        seed, catalog, __, __, single = shard_world
        sharded = sharded_engines(shards)
        for query in _workload(catalog, seed):
            for k in (1, 3, 10):
                a = single.search(query, k)
                b = sharded.search(query, k)
                assert len(a) == len(b)
                for x, y in zip(a, b):
                    assert x.rank == y.rank
                    assert x.url == y.url
                    assert x.domain == y.domain
                    assert x.score == y.score  # exact float equality
                    assert x.page is y.page

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_search_matches_reference_exactly(
        self, shard_world, sharded_engines, shards
    ):
        seed, catalog, __, __, __ = shard_world
        sharded = sharded_engines(shards)
        for query in _workload(catalog, seed):
            fast = sharded.search(query, 10)
            ref = sharded.search_reference(query, 10)
            assert [(r.url, r.score) for r in fast] == [
                (r.url, r.score) for r in ref
            ]

    @pytest.mark.parametrize("shards", (2, 8))
    def test_snippets_identical(self, shard_world, sharded_engines, shards):
        seed, catalog, __, __, single = shard_world
        sharded = sharded_engines(shards)
        for query in _workload(catalog, seed)[:8]:
            a = single.search_with_snippets(query, k=6)
            b = sharded.search_with_snippets(query, k=6)
            assert [(s.text, s.url, s.domain) for s in a] == [
                (s.text, s.url, s.domain) for s in b
            ]
            for x, y in zip(a, b):
                assert x.page is y.page

    def test_global_stats_match_single_index(self, shard_world):
        __, __, __, corpus, single = shard_world
        index = single.index
        for shards in SHARD_COUNTS:
            groups = partition_pages(corpus.pages, shards)
            stats = exchange_global_stats(build_shard_indexes(groups))
            assert stats.doc_count == index.doc_count
            assert stats.total_length == index.total_length
            # avgdl is the same int/int division -> the same float.
            assert stats.average_doc_length == index.average_doc_length
            for term in ("best", "smartphone", "review", "zzz-unseen"):
                assert stats.document_frequency(
                    term
                ) == index.document_frequency(term)

    def test_facade_index_reads_match_single_index(self, shard_world):
        __, __, __, corpus, single = shard_world
        facade = ShardedIndex(
            build_shard_indexes(partition_pages(corpus.pages, 4))
        )
        index = single.index
        assert facade.doc_count == index.doc_count
        assert facade.epoch == index.epoch  # composite == total adds
        assert facade.vocabulary_size() == index.vocabulary_size()
        dense_a, table_a = facade.doc_length_table()
        dense_b, table_b = index.doc_length_table()
        assert dense_a == dense_b
        assert list(table_a) == list(table_b)
        for term in ("best", "smartphone", "battery", "hotel"):
            assert facade.postings_arrays(term) == index.postings_arrays(term)
            assert tuple(facade.postings(term)) == tuple(index.postings(term))
        probe = corpus.pages[17]
        assert facade.page(probe.doc_id) is probe
        assert probe.doc_id in facade
        assert facade.doc_length(probe.doc_id) == index.doc_length(
            probe.doc_id
        )

    def test_shard_scorer_scores_bit_identical(self, shard_world):
        """The broadcast half: per-shard scores with global stats union
        to exactly the single-index score dict."""
        seed, catalog, __, corpus, single = shard_world
        shard_indexes = build_shard_indexes(partition_pages(corpus.pages, 4))
        stats = exchange_global_stats(shard_indexes)
        scorers = [
            BM25Scorer(index, stats=stats) for index in shard_indexes
        ]
        reference = BM25Scorer(single.index)
        for query in _workload(catalog, seed)[:10]:
            terms = tokenize(query)
            merged = {}
            for scorer in scorers:
                merged.update(scorer.score_terms(terms))
            assert merged == reference.score_terms(terms)

    def test_query_cache_hit_returns_equal_results(
        self, shard_world, sharded_engines
    ):
        seed, catalog, __, __, __ = shard_world
        sharded = sharded_engines(4)
        query = _workload(catalog, seed)[0]
        sharded.clear_query_cache()
        cold = sharded.search(query, k=10)
        before = sharded.query_cache_stats()
        warm = sharded.search(query, k=10)
        after = sharded.query_cache_stats()
        assert warm == cold
        assert after.hits == before.hits + 1
        # Callers get fresh lists: mutating one never corrupts the cache.
        warm.clear()
        assert sharded.search(query, k=10) == cold


class TestShardEdgeCases:
    def test_term_present_in_only_one_shard(self, shard_world):
        """A df=1 term's postings live in exactly one shard; idf and
        avgdl must still be global — a per-shard-stats bug would
        misscore exactly these queries."""
        __, __, registry, corpus, __ = shard_world
        next_id = max(p.doc_id for p in corpus.pages) + 1
        extra = _sparse_page(
            next_id, "Zephyrblat review", "The zephyrblat outshines rivals."
        )
        extended = Corpus(
            pages=corpus.pages + [extra],
            link_graph=corpus.link_graph,
            clock=corpus.clock,
        )
        single = SearchEngine(extended, registry)
        sharded = ShardedSearchEngine(extended, registry, shards=4)
        facade = sharded.index
        assert isinstance(facade, ShardedIndex)
        assert single.index.document_frequency("zephyrblat") == 1
        owners = [
            shard
            for shard in facade.shards
            if shard.postings_arrays("zephyrblat")[0]
        ]
        assert len(owners) == 1
        for query in ("zephyrblat", "zephyrblat smartphone review"):
            assert [
                (r.url, r.score) for r in single.search(query, 10)
            ] == [(r.url, r.score) for r in sharded.search(query, 10)]

    def test_empty_shard(self):
        """More shards than documents leaves shards empty; stats and
        ranking must be unaffected."""
        pages = [
            _sparse_page(0, "Best smartphones", "Apple and Samsung lead."),
            _sparse_page(1, "Laptop guide", "Battery and weight balance."),
            _sparse_page(2, "Smartphone cameras", "Quality by smartphone."),
        ]
        corpus = _tiny_corpus(pages)
        registry = build_default_registry()
        single = SearchEngine(corpus, registry)
        sharded = ShardedSearchEngine(corpus, registry, shards=8)
        facade = sharded.index
        assert isinstance(facade, ShardedIndex)
        assert sum(1 for s in facade.shards if s.doc_count == 0) == 5
        assert facade.average_doc_length == single.index.average_doc_length
        for query in ("smartphone camera", "laptop battery", "nothing here"):
            assert [
                (r.url, r.score) for r in single.search(query, 5)
            ] == [(r.url, r.score) for r in sharded.search(query, 5)]

    def test_merge_crowding_fallback_is_exercised_and_exact(
        self, shard_world, monkeypatch
    ):
        """With max_per_domain=1 the merged headroom prefix can run dry;
        the merge's full-union fallback must reproduce the reference."""
        seed, catalog, registry, corpus, __ = shard_world
        sharded = ShardedSearchEngine(
            corpus, registry, max_per_domain=1, shards=4
        )
        crowd_calls = []
        original = SearchEngine._crowd

        def spy(self, ordered, k):
            crowd_calls.append(len(ordered))
            return original(self, ordered, k)

        monkeypatch.setattr(SearchEngine, "_crowd", spy)
        fallbacks = 0
        for query in _workload(catalog, seed):
            for k in (5, 10):
                crowd_calls.clear()
                fast = sharded.search(query, k)
                if len(crowd_calls) == 2:
                    fallbacks += 1
                ref = sharded.search_reference(query, k)
                assert [(r.url, r.score) for r in fast] == [
                    (r.url, r.score) for r in ref
                ]
        assert fallbacks > 0, "workload never exhausted the merged headroom"

    def test_blend_subclass_routes_to_reference(self, shard_world):
        __, __, registry, corpus, __ = shard_world
        boosted = ShardedSearchEngine(
            corpus, registry, _BoostedAuthority(), shards=4
        )
        query = "best smartphones"
        assert [(r.url, r.score) for r in boosted.search(query, k=10)] == [
            (r.url, r.score) for r in boosted.search_reference(query, k=10)
        ]
        # The reference path never touches the query cache.
        assert boosted.query_cache_stats().misses == 0

    def test_sparse_doc_ids(self):
        """Non-contiguous ids: routing stays pure-arithmetic and the
        merged length table takes the mapping branch."""
        pages = [
            _sparse_page(3, "Best smartphones", "Apple and Samsung lead."),
            _sparse_page(7, "Laptop guide", "Battery and weight balance."),
            _sparse_page(11, "Smartphone cameras", "Quality by smartphone."),
            _sparse_page(42, "Hotel reviews", "Rooms and breakfast rated."),
        ]
        corpus = _tiny_corpus(pages)
        registry = build_default_registry()
        single = SearchEngine(corpus, registry)
        for shards in (2, 3, 4):
            sharded = ShardedSearchEngine(corpus, registry, shards=shards)
            facade = sharded.index
            assert isinstance(facade, ShardedIndex)
            dense, __ = facade.doc_length_table()
            assert not dense
            for page in pages:
                owner = facade.shard_for(page.doc_id)
                assert owner is facade.shards[shard_of(page.doc_id, shards)]
                assert facade.page(page.doc_id) is page
            for query in ("smartphone camera", "laptop battery", "hotel"):
                assert [
                    (r.url, r.score) for r in single.search(query, 4)
                ] == [(r.url, r.score) for r in sharded.search(query, 4)]

    def test_add_through_facade_bumps_composite_epoch(self):
        pages = [
            _sparse_page(0, "Best smartphones", "Apple and Samsung lead."),
            _sparse_page(1, "Laptop guide", "Battery and weight balance."),
        ]
        corpus = _tiny_corpus(pages)
        registry = build_default_registry()
        sharded = ShardedSearchEngine(corpus, registry, shards=2)
        facade = sharded.index
        assert isinstance(facade, ShardedIndex)
        before = facade.epoch
        assert before == len(pages)
        extra = _sparse_page(2, "Smartphone cameras", "Quality varies.")
        facade.add(extra)
        assert facade.epoch == before + 1
        assert facade.page(2) is extra
        # The re-exchange sees the new document...
        assert facade.global_stats().doc_count == 3
        # ...and the epoch-keyed query path serves it.
        results = sharded.search("smartphone cameras", 3)
        assert any(r.page is extra for r in results)


class TestParallelBuildEquivalence:
    def test_parallel_builds_match_sequential(self, shard_world):
        __, __, __, corpus, __ = shard_world
        groups = partition_pages(corpus.pages, 4)
        sequential = build_shard_indexes(groups, builders=1)
        for executor in ("process", "thread"):
            parallel = build_shard_indexes(
                groups, builders=4, executor=executor
            )
            for a, b in zip(parallel, sequential):
                assert a.doc_count == b.doc_count
                assert a.total_length == b.total_length
                assert a.epoch == b.epoch
                assert a.doc_length_table() == b.doc_length_table()
                for term in ("best", "smartphone", "review"):
                    assert a.postings_arrays(term) == b.postings_arrays(term)

    def test_parallel_built_engine_is_exact(
        self, shard_world, sharded_engines
    ):
        seed, catalog, __, __, single = shard_world
        sharded = sharded_engines(4, builders=4)
        for query in _workload(catalog, seed)[:8]:
            assert [
                (r.url, r.score) for r in single.search(query, 10)
            ] == [(r.url, r.score) for r in sharded.search(query, 10)]

    def test_lazy_index_thaws_on_add(self, shard_world):
        """A worker-built (lazy) shard accepts later adds: the postings
        materialize and the epoch keeps counting."""
        __, __, __, corpus, __ = shard_world
        groups = partition_pages(corpus.pages[:40], 2)
        index, __ = build_shard_indexes(groups, builders=2, executor="thread")
        epoch = index.epoch
        extra = _sparse_page(100001, "Fresh arrival", "Entirely new words.")
        index.add(extra)
        assert index.epoch == epoch + 1
        assert index.document_frequency("fresh") >= 1
        assert index.page(100001) is extra


class _BoostedAuthority(SeoWeights):
    """A blend override: the fast path must not apply to subclasses."""

    def blend(self, relevance, authority, on_page_seo, age_days):
        return (
            super().blend(relevance, authority, on_page_seo, age_days)
            + 0.5 * authority
        )
