"""Tests for PageRank, cross-checked against networkx."""

import networkx as nx
import pytest

from repro.search.pagerank import pagerank
from repro.webgraph.linkgraph import LinkGraph


def build_graph(edges):
    graph = LinkGraph()
    for source, target, weight in edges:
        graph.add_edge(source, target, weight)
    return graph


class TestPagerank:
    def test_empty_graph(self):
        assert pagerank(LinkGraph()) == {}

    def test_single_node(self):
        graph = LinkGraph()
        graph.add_node("a.com")
        assert pagerank(graph) == {"a.com": pytest.approx(1.0)}

    def test_scores_sum_to_one(self):
        graph = build_graph(
            [("a.com", "b.com", 1.0), ("b.com", "c.com", 1.0), ("c.com", "a.com", 1.0)]
        )
        scores = pagerank(graph)
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_symmetric_cycle_is_uniform(self):
        graph = build_graph(
            [("a.com", "b.com", 1.0), ("b.com", "c.com", 1.0), ("c.com", "a.com", 1.0)]
        )
        scores = pagerank(graph)
        assert scores["a.com"] == pytest.approx(1 / 3, abs=1e-8)

    def test_hub_receives_more_rank(self):
        # Everyone links to hub.com; it must outrank the spokes.
        edges = [(f"s{i}.com", "hub.com", 1.0) for i in range(5)]
        scores = pagerank(build_graph(edges))
        assert scores["hub.com"] > max(scores[f"s{i}.com"] for i in range(5))

    def test_dangling_nodes_handled(self):
        # b.com has no out-links; rank must still sum to 1.
        graph = build_graph([("a.com", "b.com", 1.0)])
        scores = pagerank(graph)
        assert sum(scores.values()) == pytest.approx(1.0)
        assert scores["b.com"] > scores["a.com"]

    def test_edge_weights_matter(self):
        graph = build_graph(
            [("src.com", "heavy.com", 9.0), ("src.com", "light.com", 1.0)]
        )
        scores = pagerank(graph)
        assert scores["heavy.com"] > scores["light.com"]

    def test_invalid_damping(self):
        with pytest.raises(ValueError):
            pagerank(LinkGraph(), damping=1.0)

    def test_matches_networkx(self):
        edges = [
            ("a.com", "b.com", 1.0),
            ("a.com", "c.com", 2.0),
            ("b.com", "c.com", 1.0),
            ("c.com", "a.com", 1.0),
            ("d.com", "a.com", 3.0),
            ("b.com", "d.com", 0.5),
        ]
        ours = pagerank(build_graph(edges), damping=0.85)

        nxg = nx.DiGraph()
        for s, t, w in edges:
            nxg.add_edge(s, t, weight=w)
        theirs = nx.pagerank(nxg, alpha=0.85, weight="weight", tol=1e-12)
        for node in theirs:
            assert ours[node] == pytest.approx(theirs[node], abs=1e-6)

    def test_matches_networkx_with_dangling(self):
        edges = [("a.com", "b.com", 1.0), ("c.com", "b.com", 1.0)]
        graph = build_graph(edges)
        ours = pagerank(graph)
        nxg = nx.DiGraph()
        for s, t, w in edges:
            nxg.add_edge(s, t, weight=w)
        theirs = nx.pagerank(nxg, alpha=0.85, weight="weight", tol=1e-12)
        for node in theirs:
            assert ours[node] == pytest.approx(theirs[node], abs=1e-6)
