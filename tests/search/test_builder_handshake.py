"""The publish/retract handshake globals never outlive their fork.

Both fork-inheritance handshakes — the shard builder's
``_BUILDER_GROUPS`` and the resident executor's ``_RESIDENT_SPEC`` —
follow one pattern: publish immediately before the fork, retract in the
outermost ``finally``.  A leak would pin the corpus (or the shard
indexes) in a module global for the process lifetime and hand every
*later* fork a stale snapshot.  These are failure-injection regressions:
whatever breaks mid-spawn (pool creation, task submission, process
construction, ``start()`` itself), the global must come back ``None``.
"""

import pytest

from repro.search import shardexec, sharding
from repro.search.shardexec import ShardSupervisor
from repro.search.sharding import build_shard_indexes, partition_pages

from tests.search.test_sharded_equivalence import _sparse_page


@pytest.fixture
def groups():
    pages = [
        _sparse_page(i, f"Guide {i}", f"Useful advice number {i}.")
        for i in range(8)
    ]
    return partition_pages(pages, 2)


class TestBuilderGroupsRetraction:
    def test_retracted_after_successful_build(self, groups):
        build_shard_indexes(groups, builders=2, executor="process")
        assert sharding._BUILDER_GROUPS is None

    def test_retracted_when_pool_creation_fails(self, groups, monkeypatch):
        def explode(*args, **kwargs):
            raise RuntimeError("no more processes")

        monkeypatch.setattr(sharding, "ProcessPoolExecutor", explode)
        with pytest.raises(RuntimeError, match="no more processes"):
            build_shard_indexes(groups, builders=2, executor="process")
        assert sharding._BUILDER_GROUPS is None

    def test_retracted_when_submission_fails(self, groups, monkeypatch):
        class BrokenPool:
            def __init__(self, *args, **kwargs):
                pass

            def submit(self, *args, **kwargs):
                raise RuntimeError("pool shut down")

            def shutdown(self, *args, **kwargs):
                pass

        monkeypatch.setattr(sharding, "ProcessPoolExecutor", BrokenPool)
        with pytest.raises(RuntimeError, match="pool shut down"):
            build_shard_indexes(groups, builders=2, executor="process")
        assert sharding._BUILDER_GROUPS is None

    def test_thread_executor_never_publishes(self, groups, monkeypatch):
        seen = []

        class SpyPool:
            def __init__(self, *args, **kwargs):
                seen.append(sharding._BUILDER_GROUPS)
                raise RuntimeError("stop here")

        monkeypatch.setattr(sharding, "ThreadPoolExecutor", SpyPool)
        with pytest.raises(RuntimeError, match="stop here"):
            build_shard_indexes(groups, builders=2, executor="thread")
        # Threads share the address space: no handshake is needed, and
        # none was published.
        assert seen == [None]
        assert sharding._BUILDER_GROUPS is None


class TestResidentSpecRetraction:
    @pytest.fixture
    def spec(self, groups):
        shards = build_shard_indexes(groups)
        from repro.search.sharding import exchange_global_stats

        return shards, exchange_global_stats(shards)

    def test_retracted_after_successful_spawn(self, spec):
        shards, stats = spec
        sup = ShardSupervisor(shards, stats)
        try:
            assert shardexec._RESIDENT_SPEC is None
            sup.respawn(0)
            assert shardexec._RESIDENT_SPEC is None
        finally:
            sup.close()

    def test_retracted_when_process_construction_fails(
        self, spec, monkeypatch
    ):
        shards, stats = spec

        class BrokenContext:
            def Process(self, *args, **kwargs):
                raise RuntimeError("pid exhausted")

        monkeypatch.setattr(
            shardexec.multiprocessing,
            "get_context",
            lambda method: BrokenContext(),
        )
        with pytest.raises(RuntimeError, match="pid exhausted"):
            ShardSupervisor(shards, stats)
        assert shardexec._RESIDENT_SPEC is None

    def test_retracted_when_start_fails(self, spec, monkeypatch):
        shards, stats = spec

        class UnstartableProcess:
            def __init__(self, *args, **kwargs):
                pass

            def start(self):
                raise RuntimeError("fd exhausted")

        class Context:
            Process = staticmethod(
                lambda *args, **kwargs: UnstartableProcess()
            )

        monkeypatch.setattr(
            shardexec.multiprocessing,
            "get_context",
            lambda method: Context(),
        )
        with pytest.raises(RuntimeError, match="fd exhausted"):
            ShardSupervisor(shards, stats)
        assert shardexec._RESIDENT_SPEC is None

    def test_published_exactly_during_spawn(self, spec, monkeypatch):
        """The spec is visible to the forking child and nobody else."""
        shards, stats = spec
        observed = []
        real_get_context = shardexec.multiprocessing.get_context

        def spying_get_context(method):
            observed.append(shardexec._RESIDENT_SPEC)
            return real_get_context(method)

        monkeypatch.setattr(
            shardexec.multiprocessing, "get_context", spying_get_context
        )
        sup = ShardSupervisor(shards, stats)
        try:
            assert observed == [(tuple(shards), stats)] * 2
            assert shardexec._RESIDENT_SPEC is None
        finally:
            sup.close()
