"""Shared world fixture for engine tests (built once per session)."""

import pytest

from repro.core import StudyConfig, World


@pytest.fixture(scope="session")
def world():
    return World.build(StudyConfig(seed=7))
