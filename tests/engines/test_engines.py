"""Behavioural tests for the five engines."""

import pytest

from repro.engines.claude import ClaudeEngine
from repro.engines.registry import AI_ENGINE_NAMES, ENGINE_NAMES, build_engines
from repro.entities.intents import Intent
from repro.entities.queries import Query, QueryKind, intent_queries, ranking_queries
from repro.webgraph.urls import registrable_domain


@pytest.fixture(scope="module")
def queries(world):
    return ranking_queries(world.catalog, count=20, seed=21)


class TestRegistry:
    def test_five_engines(self, world):
        assert set(world.engines) == set(ENGINE_NAMES)
        assert set(world.ai_engines()) == set(AI_ENGINE_NAMES)

    def test_engine_names_match_keys(self, world):
        for name, engine in world.engines.items():
            assert engine.name == name

    def test_rebuild_is_identical(self, world):
        engines = build_engines(
            world.corpus, world.registry, world.catalog, world.search_engine,
            study_seed=world.config.seed,
        )
        query = ranking_queries(world.catalog, count=1, seed=3)[0]
        for name in ENGINE_NAMES:
            a = world.engines[name].answer(query)
            b = engines[name].answer(query)
            assert a.cited_urls() == b.cited_urls()

    def test_different_study_seed_changes_ai_answers(self, world):
        engines = build_engines(
            world.corpus, world.registry, world.catalog, world.search_engine,
            study_seed=world.config.seed + 1,
        )
        query = ranking_queries(world.catalog, count=1, seed=3)[0]
        ours = world.engines["GPT-4o"].answer(query)
        theirs = engines["GPT-4o"].answer(query)
        assert ours.ranked_entities != theirs.ranked_entities


class TestGoogle:
    def test_answers_are_result_lists(self, world, queries):
        answer = world.google().answer(queries[0])
        assert answer.engine == "Google"
        assert len(answer.citations) <= 10
        assert "Results for:" in answer.text
        assert not answer.ranked_entities  # Google does not synthesize

    def test_citation_domains_match_urls(self, world, queries):
        for query in queries[:5]:
            for citation in world.google().answer(query).citations:
                assert registrable_domain(citation.url) == citation.domain


class TestGenerativeEngines:
    def test_answers_cite_sources(self, world, queries):
        for name, engine in world.ai_engines().items():
            answer = engine.answer(queries[0])
            assert answer.engine == name
            assert answer.citations, name
            assert "Sources:" in answer.text

    def test_ranking_queries_get_ranked_entities(self, world, queries):
        for engine in world.ai_engines().values():
            answer = engine.answer(queries[0])
            assert answer.ranked_entities
            assert len(answer.ranked_entities) <= queries[0].top_k
            for entity_id in answer.ranked_entities:
                assert entity_id in world.catalog

    def test_determinism(self, world, queries):
        for engine in world.ai_engines().values():
            a = engine.answer(queries[1])
            b = engine.answer(queries[1])
            assert a == b

    def test_citation_count_respects_policy(self, world, queries):
        for name, engine in world.ai_engines().items():
            answer = engine.answer(queries[2])
            assert len(answer.citations) <= engine.policy.citations_per_answer

    def test_engines_disagree_on_sources(self, world, queries):
        answers = {
            name: engine.answer(queries[3]).cited_domains()
            for name, engine in world.ai_engines().items()
        }
        distinct = {frozenset(domains) for domains in answers.values()}
        assert len(distinct) >= 3

    def test_transactional_queries_pull_brand_pages(self, world):
        query = Query(
            id="tq", text="Buy Apple iPhone online with fast shipping",
            kind=QueryKind.INTENT, vertical="smartphones",
            intent=Intent.TRANSACTIONAL,
        )
        engine = world.engines["Perplexity"]
        answer = engine.answer(query)
        brand_like = sum(
            1 for c in answer.citations
            if world.registry.get(c.domain).source_type.value == "brand"
        )
        assert answer.citations
        assert brand_like / len(answer.citations) >= 0.5


class TestClaudeReluctance:
    def test_claude_skips_search_for_most_informational_and_transactional(self, world):
        claude = world.engines["Claude"]
        queries = intent_queries(world.catalog, count=150, seed=9)
        skipped = {Intent.INFORMATIONAL: 0, Intent.TRANSACTIONAL: 0, Intent.CONSIDERATION: 0}
        totals = dict(skipped)
        for query in queries:
            totals[query.intent] += 1
            if not claude.answer(query).citations:
                skipped[query.intent] += 1
        assert skipped[Intent.INFORMATIONAL] / totals[Intent.INFORMATIONAL] > 0.5
        assert skipped[Intent.TRANSACTIONAL] / totals[Intent.TRANSACTIONAL] > 0.5
        assert skipped[Intent.CONSIDERATION] / totals[Intent.CONSIDERATION] < 0.2

    def test_explicit_search_prompting_restores_citations(self, world):
        claude = world.engines["Claude"]
        prompted = ClaudeEngine(
            world.retriever, claude.llm, world.catalog,
            explicit_search_prompting=True,
        )
        queries = intent_queries(world.catalog, count=30, seed=9)
        for query in queries:
            assert prompted.answer(query).citations

    def test_prior_only_answers_still_rank(self, world):
        claude = world.engines["Claude"]
        query = Query(
            id="pq", text="How does battery chemistry work in smartphones?",
            kind=QueryKind.INTENT, vertical="smartphones",
            intent=Intent.INFORMATIONAL,
            entities=("smartphones:apple",),
        )
        # Find the propensity outcome deterministically: answer twice.
        a = claude.answer(query)
        b = claude.answer(query)
        assert a == b


class TestGeminiGrounding:
    def test_gemini_cites_within_googles_reach(self, world, queries):
        gemini = world.engines["Gemini"]
        google_pool = {
            r.domain for r in world.search_engine.search(queries[4].text, k=60)
        }
        answer = gemini.answer(queries[4])
        assert answer.citations
        for citation in answer.citations:
            assert citation.domain in google_pool

    def test_gemini_reranks_rather_than_copies(self, world, queries):
        gemini = world.engines["Gemini"]
        google = world.google()
        diverged = 0
        for query in queries[:10]:
            gemini_domains = gemini.answer(query).cited_domains()
            google_domains = google.answer(query).cited_domains()
            if gemini_domains - google_domains:
                diverged += 1
        assert diverged >= 7
