"""Tests for the Answer model, intent detection and the retriever."""

import pytest

from repro.engines.base import Answer, Citation
from repro.engines.retrieval import SourcingPolicy, detect_intent
from repro.entities.intents import Intent
from repro.webgraph.domains import SourceType


class TestCitationAnswer:
    def test_citation_requires_url(self):
        with pytest.raises(ValueError):
            Citation(url="", domain="x.com")

    def test_cited_domains_normalizes_and_dedupes(self):
        answer = Answer(
            engine="E",
            query_id="q",
            text="t",
            citations=(
                Citation(url="https://www.techradar.com/a", domain="techradar.com"),
                Citation(url="https://techradar.com/b", domain="techradar.com"),
                Citation(url="https://reddit.com/r/x", domain="reddit.com"),
            ),
        )
        assert answer.cited_domains() == {"techradar.com", "reddit.com"}

    def test_unparseable_citations_dropped(self):
        answer = Answer(
            engine="E", query_id="q", text="t",
            citations=(Citation(url="not a url", domain="?"),),
        )
        assert answer.cited_domains() == set()

    def test_cited_urls_order(self):
        answer = Answer(
            engine="E", query_id="q", text="t",
            citations=(
                Citation(url="https://a.com/1", domain="a.com"),
                Citation(url="https://b.com/2", domain="b.com"),
            ),
        )
        assert answer.cited_urls() == ["https://a.com/1", "https://b.com/2"]


class TestDetectIntent:
    def test_transactional_prefix(self):
        assert detect_intent("Buy iPhone 15 online") is Intent.TRANSACTIONAL
        assert detect_intent("Order Pixel with fast shipping") is Intent.TRANSACTIONAL

    def test_deal_language(self):
        assert detect_intent("iPhone 15 best price deals") is Intent.TRANSACTIONAL

    def test_ranking_query_is_consideration(self):
        # "to buy" inside a ranking query must NOT read as transactional.
        assert detect_intent("Top 10 best SUVs to buy in 2025") is Intent.CONSIDERATION

    def test_informational(self):
        assert detect_intent("How does Wi-Fi 7 work?") is Intent.INFORMATIONAL
        assert detect_intent("What is retinol?") is Intent.INFORMATIONAL

    def test_default_consideration(self):
        assert detect_intent("Best laptops for students") is Intent.CONSIDERATION


class TestSourcingPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            SourcingPolicy(candidate_pool=0)
        with pytest.raises(ValueError):
            SourcingPolicy(citations_per_answer=0)
        with pytest.raises(ValueError):
            SourcingPolicy(freshness_half_life_days=0)

    def test_transactional_adaptation(self):
        policy = SourcingPolicy(earned_affinity=0.5, brand_affinity=0.1)
        adapted = policy.adapted_to(Intent.TRANSACTIONAL)
        assert adapted.brand_affinity > policy.brand_affinity
        assert adapted.earned_affinity < policy.earned_affinity
        assert adapted.retailer_affinity > policy.retailer_affinity

    def test_informational_adaptation(self):
        policy = SourcingPolicy(brand_affinity=0.1)
        adapted = policy.adapted_to(Intent.INFORMATIONAL)
        assert adapted.brand_affinity > policy.brand_affinity

    def test_consideration_is_identity(self):
        policy = SourcingPolicy()
        assert policy.adapted_to(Intent.CONSIDERATION) is policy


class TestRetriever:
    def test_candidates_are_relevance_sorted(self, world):
        policy = SourcingPolicy(candidate_pool=20)
        pool = world.retriever.candidates("best smartphones 2025", policy)
        assert pool
        relevances = [r for r, __ in pool]
        assert relevances == sorted(relevances, reverse=True)
        assert relevances[0] == pytest.approx(1.0)

    def test_candidate_pool_capped(self, world):
        policy = SourcingPolicy(candidate_pool=5)
        assert len(world.retriever.candidates("best smartphones", policy)) <= 5

    def test_reformulation_changes_pool(self, world):
        plain = SourcingPolicy(candidate_pool=20)
        reformulated = SourcingPolicy(
            candidate_pool=20, reformulation_terms=("expert", "review")
        )
        a = {p.doc_id for __, p in world.retriever.candidates("best laptops", plain)}
        b = {p.doc_id for __, p in world.retriever.candidates("best laptops", reformulated)}
        assert a != b

    def test_select_sources_respects_count_and_domain_cap(self, world):
        policy = SourcingPolicy(citations_per_answer=6, max_per_domain=1)
        pages = world.retriever.select_sources("best smartwatches 2025", policy)
        assert len(pages) == 6
        assert len({p.domain for p in pages}) == 6

    def test_selection_is_deterministic(self, world):
        policy = SourcingPolicy()
        a = [p.url for p in world.retriever.select_sources("best hotels", policy)]
        b = [p.url for p in world.retriever.select_sources("best hotels", policy)]
        assert a == b

    def test_earned_affinity_shifts_composition(self, world):
        earned_policy = SourcingPolicy(
            earned_affinity=1.5, brand_affinity=0.0, social_affinity=0.0,
            citations_per_answer=8, selection_jitter=0.0,
        )
        brand_policy = SourcingPolicy(
            earned_affinity=0.0, brand_affinity=1.5, social_affinity=0.0,
            citations_per_answer=8, selection_jitter=0.0,
        )
        def earned_share(policy):
            # A navigational-ish query whose candidate pool mixes brand
            # product pages with editorial coverage.
            pages = world.retriever.select_sources(
                "Apple iPhone smartphone", policy, intent=Intent.CONSIDERATION
            )
            earned = sum(
                1 for p in pages
                if world.registry.get(p.domain).source_type is SourceType.EARNED
            )
            return earned / len(pages)
        assert earned_share(earned_policy) > earned_share(brand_policy)

    def test_freshness_weight_prefers_young_pages(self, world):
        fresh = SourcingPolicy(freshness_weight=1.5, selection_jitter=0.0)
        stale = SourcingPolicy(freshness_weight=0.0, selection_jitter=0.0)
        clock = world.corpus.clock
        def mean_age(policy):
            pages = world.retriever.select_sources("best laptops 2025", policy)
            return sum(clock.age_days(p.published) for p in pages) / len(pages)
        assert mean_age(fresh) < mean_age(stale)

    def test_familiarity_bounds(self, world):
        for domain in world.corpus.domains()[:40]:
            assert 0.0 <= world.retriever.familiarity(domain) <= 1.0
        assert world.retriever.familiarity("unknown.example") == 0.0

    def test_nonsense_query_yields_nothing(self, world):
        assert world.retriever.select_sources("qzxv flibbertigibbet", SourcingPolicy()) == []


class TestExplain:
    def test_explain_matches_selection(self, world):
        policy = SourcingPolicy(citations_per_answer=6)
        query = "best smartwatches for running 2025"
        selected = {p.url for p in world.retriever.select_sources(query, policy)}
        explained = world.retriever.explain(query, policy, top=40)
        assert {c.page.url for c in explained if c.selected} == selected

    def test_components_sum_to_total(self, world):
        policy = SourcingPolicy()
        for candidate in world.retriever.explain("best laptops", policy, top=10):
            assert candidate.total == pytest.approx(sum(candidate.components.values()))
            assert set(candidate.components) == {
                "relevance", "type_affinity", "freshness", "authority",
                "quality", "familiarity", "jitter",
            }

    def test_explain_is_sorted_by_total(self, world):
        totals = [c.total for c in world.retriever.explain("best hotels", SourcingPolicy(), top=15)]
        assert totals == sorted(totals, reverse=True)

    def test_persona_score_consistent_with_components(self, world):
        policy = SourcingPolicy()
        pool = world.retriever.candidates("best airlines", policy)[:5]
        for relevance, page in pool:
            total = world.retriever.persona_score(policy, page, relevance, "best airlines")
            parts = world.retriever.score_components(policy, page, relevance, "best airlines")
            assert total == pytest.approx(sum(parts.values()))

    def test_invalid_top(self, world):
        with pytest.raises(ValueError):
            world.retriever.explain("q", SourcingPolicy(), top=0)
