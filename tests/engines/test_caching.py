"""Tests for engine answer memoization."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engines.base import Answer, AnswerEngine
from repro.entities.queries import PopularityClass, Query, QueryKind


class CountingEngine(AnswerEngine):
    name = "Counting"
    cache_limit = 3

    def __init__(self):
        super().__init__()
        self.calls = 0

    def _answer_uncached(self, query: Query) -> Answer:
        self.calls += 1
        return Answer(engine=self.name, query_id=query.id, text=query.text)


def make_query(
    i: int,
    text: str | None = None,
    popularity: PopularityClass | None = None,
) -> Query:
    return Query(
        id=f"q{i}", text=text or f"query {i}", kind=QueryKind.RANKING,
        vertical="suvs", popularity_class=popularity,
    )


class TestAnswerCaching:
    def test_repeat_queries_hit_the_cache(self):
        engine = CountingEngine()
        query = make_query(0)
        first = engine.answer(query)
        second = engine.answer(query)
        assert engine.calls == 1
        assert first is second

    def test_distinct_queries_miss(self):
        engine = CountingEngine()
        engine.answer(make_query(0))
        engine.answer(make_query(1))
        assert engine.calls == 2

    def test_same_id_different_text_misses(self):
        # Identity includes the text, not just the id.
        engine = CountingEngine()
        engine.answer(make_query(0, "alpha"))
        engine.answer(make_query(0, "beta"))
        assert engine.calls == 2

    def test_eviction_beyond_limit(self):
        engine = CountingEngine()
        for i in range(4):  # limit is 3: q0 evicted
            engine.answer(make_query(i))
        engine.answer(make_query(3))  # hit
        assert engine.calls == 4
        engine.answer(make_query(0))  # evicted -> recompute
        assert engine.calls == 5

    def test_answer_all_uses_cache(self):
        engine = CountingEngine()
        queries = [make_query(0), make_query(0), make_query(1)]
        answers = engine.answer_all(queries)
        assert engine.calls == 2
        assert answers[0] is answers[1]

    def test_no_eviction_at_exactly_the_limit(self):
        # Filling the cache to cache_limit must not evict anything:
        # eviction fires only once an insert pushes the size *past* the
        # limit (the old pre-insert eviction oscillated at the limit).
        engine = CountingEngine()
        for i in range(3):  # == limit
            engine.answer(make_query(i))
        for i in range(3):  # all still cached
            engine.answer(make_query(i))
        assert engine.calls == 3

    def test_eviction_is_fifo_by_insertion_order(self):
        engine = CountingEngine()
        for i in range(3):
            engine.answer(make_query(i))
        engine.answer(make_query(0))  # hit; FIFO does not refresh order
        engine.answer(make_query(3))  # over limit: q0 (oldest) evicted
        assert engine.calls == 4
        for i in (1, 2, 3):  # survivors, in order
            engine.answer(make_query(i))
        assert engine.calls == 4
        engine.answer(make_query(0))  # recompute; evicts q1 next
        assert engine.calls == 5
        engine.answer(make_query(1))
        assert engine.calls == 6

    def test_popularity_class_is_part_of_the_key(self):
        # Two queries differing only in popularity_class must not
        # collide in the memo.
        engine = CountingEngine()
        engine.answer(make_query(0, popularity=PopularityClass.POPULAR))
        engine.answer(make_query(0, popularity=PopularityClass.NICHE))
        assert engine.calls == 2
        engine.answer(make_query(0, popularity=PopularityClass.POPULAR))
        assert engine.calls == 2

    def test_hit_miss_counters_and_clear(self):
        engine = CountingEngine()
        engine.answer(make_query(0))
        engine.answer(make_query(0))
        engine.answer(make_query(1))
        assert engine.cache_stats() == (1, 2)
        engine.clear_cache()
        assert engine.cache_stats() == (0, 0)
        engine.answer(make_query(0))
        assert engine.calls == 3  # truly dropped, not just counters

    def test_concurrent_answers_keep_counters_consistent(self):
        # Regression for the hit-path race: _cache_hits was bumped
        # outside _cache_lock, so hammering one engine from many
        # threads lost increments and broke hits + misses == calls.
        engine = CountingEngine()
        engine.cache_limit = 4096  # no eviction noise in this test
        queries = [make_query(i % 8) for i in range(400)]
        barrier = threading.Barrier(8)

        def worker(chunk):
            barrier.wait()
            return [engine.answer(q) for q in chunk]

        chunks = [queries[i::8] for i in range(8)]
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = [f.result() for f in [pool.submit(worker, c) for c in chunks]]

        hits, misses = engine.cache_stats()
        # Every answer() call lands in exactly one counter, and a miss
        # is recorded once per key (by whichever thread inserts first —
        # racing duplicates of the same computation count as hits).
        assert hits + misses == len(queries)
        assert misses == 8
        # One canonical Answer per key, regardless of which thread won.
        by_id = {}
        for answer in (a for chunk in results for a in chunk):
            assert by_id.setdefault(answer.query_id, answer) is answer

    def test_real_engine_caches(self, world):
        from repro.entities.queries import ranking_queries

        query = ranking_queries(world.catalog, count=1, seed=77)[0]
        gpt = world.engines["GPT-4o"]
        first = gpt.answer(query)
        second = gpt.answer(query)
        assert first is second


class _KeyRaisingQuery:
    """A query stand-in whose identity computation itself is broken."""

    id = "broken"
    text = "broken query"

    @property
    def cache_key(self) -> str:
        raise AttributeError("cache_key exploded")


class TestSkippedInitGuard:
    """The memo probe is narrow: only a missing cache disables it.

    Regression for the blanket ``except AttributeError`` that used to
    wrap the whole cache path: an AttributeError raised while computing
    ``query.cache_key`` was indistinguishable from a skipped
    ``__init__``, so broken queries were silently served uncached on
    every call instead of surfacing the error.
    """

    def test_key_raising_query_surfaces_the_error(self):
        engine = CountingEngine()
        with pytest.raises(AttributeError, match="cache_key exploded"):
            engine.answer(_KeyRaisingQuery())
        # And nothing was computed or cached along the way.
        assert engine.calls == 0
        assert engine.cache_stats() == (0, 0)

    def test_skipped_init_still_answers_uncached(self):
        engine = CountingEngine.__new__(CountingEngine)
        engine.calls = 0  # CountingEngine.__init__ skipped entirely
        query = make_query(0)
        first = engine.answer(query)
        second = engine.answer(query)
        assert first == second
        assert engine.calls == 2  # no cache: every call computes


class TestCachedAnswerPeek:
    def test_peek_is_uncounted_and_non_computing(self):
        engine = CountingEngine()
        query = make_query(0)
        assert engine.cached_answer(query) is None
        assert engine.calls == 0
        answer = engine.answer(query)
        assert engine.cached_answer(query) is answer
        # The two peeks moved neither counter; only answer() did.
        assert engine.cache_stats() == (0, 1)

    def test_peek_on_skipped_init_engine_is_none(self):
        engine = CountingEngine.__new__(CountingEngine)
        assert engine.cached_answer(make_query(0)) is None


class EpochedEngine(CountingEngine):
    """A counting engine whose memo epoch is test-controlled."""

    name = "Epoched"

    def __init__(self):
        super().__init__()
        self.generation = 0

    def _cache_epoch(self) -> int:
        return self.generation


class TestEpochKeyedMemo:
    """The answer memo keys on ``(query key, cache epoch)``: bumping the
    generation makes stale entries unreachable instead of served."""

    def test_epoch_bump_invalidates_without_clearing(self):
        engine = EpochedEngine()
        query = make_query(0)
        first = engine.answer(query)
        assert engine.answer(query) is first
        assert engine.calls == 1
        engine.generation += 1
        second = engine.answer(query)
        assert second is not first
        assert engine.calls == 2

    def test_peek_respects_the_epoch(self):
        engine = EpochedEngine()
        query = make_query(0)
        answer = engine.answer(query)
        assert engine.cached_answer(query) is answer
        engine.generation += 1
        assert engine.cached_answer(query) is None

    def test_base_engine_epoch_is_constant(self):
        # Engines with no corpus-derived state keep the degenerate epoch.
        assert CountingEngine()._cache_epoch() == 0

    def test_real_engines_derive_epoch_from_the_index(self, world):
        index_epoch = world.search_engine.index.epoch
        assert world.engines["Google"]._cache_epoch() == index_epoch
        assert world.engines["GPT-4o"]._cache_epoch() == index_epoch
