"""Accuracy of the surface-cue intent detector against labeled queries.

The intent-typed workload (Figure 3) carries ground-truth intent labels
from its templates; the engines' internal detector should recover them
with high accuracy, since intent adaptation (the transactional brand
swing) hinges on it.
"""

from repro.engines.retrieval import detect_intent
from repro.entities.intents import Intent
from repro.entities.queries import intent_queries


def test_detector_accuracy_on_labeled_workload(world):
    queries = intent_queries(world.catalog, count=300, seed=3)
    correct = {intent: 0 for intent in Intent}
    totals = {intent: 0 for intent in Intent}
    for query in queries:
        totals[query.intent] += 1
        if detect_intent(query.text) is query.intent:
            correct[query.intent] += 1
    for intent in Intent:
        recall = correct[intent] / totals[intent]
        assert recall > 0.8, (intent, recall)


def test_detector_never_calls_ranking_queries_transactional(world):
    from repro.entities.queries import ranking_queries

    for query in ranking_queries(world.catalog, count=100, seed=4):
        assert detect_intent(query.text) is not Intent.TRANSACTIONAL, query.text
