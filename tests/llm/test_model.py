"""Tests for the SimulatedLLM score model, ranking and pairwise judgment."""

import pytest

from repro.entities import build_default_catalog
from repro.llm.context import ContextWindow, EvidenceSnippet
from repro.llm.model import GroundingMode, LLMConfig, SimulatedLLM
from repro.llm.pretraining import PretrainedKnowledge
from repro.webgraph.corpus import CorpusConfig, CorpusGenerator
from repro.webgraph.domains import build_default_registry


@pytest.fixture(scope="module")
def llm():
    catalog = build_default_catalog()
    registry = build_default_registry()
    corpus = CorpusGenerator(registry, catalog, CorpusConfig(seed=5)).generate()
    knowledge = PretrainedKnowledge(corpus, catalog, model_seed=1)
    return SimulatedLLM(knowledge, LLMConfig(seed=1))


SUVS = ["suvs:toyota", "suvs:honda", "suvs:kia", "suvs:chevrolet", "suvs:cadillac", "suvs:infiniti"]
LAW = [
    "family_law_toronto:hargrave_family_law",
    "family_law_toronto:lakeside_law_group",
    "family_law_toronto:bloor_street_legal",
    "family_law_toronto:chen_and_osei_llp",
]


def make_context(stance_sets):
    """Build a window from a list of {entity: stance} dicts."""
    return ContextWindow(
        EvidenceSnippet(
            text=f"snippet {i}",
            url=f"https://site{i}.com/page",
            domain=f"site{i}.com",
            entity_stance=stances,
        )
        for i, stances in enumerate(stance_sets)
    )


class TestLLMConfig:
    def test_negative_param_rejected(self):
        with pytest.raises(ValueError):
            LLMConfig(pair_noise=-0.1)

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            LLMConfig(prior_weight=0, context_weight=0)


class TestRanking:
    def test_deterministic_for_identical_calls(self, llm):
        ctx = make_context([{e: 0.2} for e in SUVS])
        a = llm.rank_entities("best suvs", SUVS, ctx)
        b = llm.rank_entities("best suvs", SUVS, ctx)
        assert a.ranking == b.ranking
        assert a.scores == b.scores

    def test_reordering_context_can_change_scores(self, llm):
        ctx = make_context([{e: 0.2} for e in LAW])
        shuffled = ctx.reordered([3, 1, 0, 2])
        a = llm.rank_entities("top law firms", LAW, ctx)
        b = llm.rank_entities("top law firms", LAW, shuffled)
        assert a.scores != b.scores

    def test_empty_candidates_raise(self, llm):
        with pytest.raises(ValueError):
            llm.rank_entities("q", [], make_context([]))

    def test_duplicate_candidates_raise(self, llm):
        with pytest.raises(ValueError):
            llm.rank_entities("q", ["suvs:toyota", "suvs:toyota"], make_context([]))

    def test_top_k_truncates(self, llm):
        ctx = make_context([{e: 0.5} for e in SUVS])
        answer = llm.rank_entities("best suvs", SUVS, ctx, top_k=3)
        assert len(answer.ranking) == 3

    def test_invalid_top_k(self, llm):
        with pytest.raises(ValueError):
            llm.rank_entities("q", SUVS, make_context([]), top_k=0)

    def test_rank_of(self, llm):
        ctx = make_context([{e: 0.5} for e in SUVS])
        answer = llm.rank_entities("best suvs", SUVS, ctx)
        first = answer.ranking[0]
        assert answer.rank_of(first) == 1

    def test_popular_ranking_tracks_prior_not_context(self, llm):
        # Strongly negative evidence about Toyota barely moves it for a
        # popular query: the prior dominates.  Averaged over phrasings so
        # per-call generation noise cancels.
        def mean_rank(stance):
            ranks = []
            for i in range(12):
                ctx = make_context(
                    [{e: (stance if e == "suvs:toyota" else 0.0)} for e in SUVS]
                )
                answer = llm.rank_entities(f"best suvs 2025 v{i}", SUVS, ctx)
                ranks.append(answer.rank_of("suvs:toyota"))
            return sum(ranks) / len(ranks)

        assert mean_rank(-0.9) - mean_rank(0.0) <= 2.0

    def test_niche_ranking_tracks_context(self, llm):
        # The same manipulation on a niche entity swings its rank.
        target = LAW[0]
        promoted = make_context([{target: 0.95}] + [{e: -0.6} for e in LAW[1:]])
        demoted = make_context([{target: -0.95}] + [{e: 0.6} for e in LAW[1:]])
        up = llm.rank_entities("top toronto family law firms", LAW, promoted)
        down = llm.rank_entities("top toronto family law firms", LAW, demoted)
        assert up.rank_of(target) < down.rank_of(target)
        assert up.rank_of(target) == 1

    def test_strict_mode_ignores_prior(self, llm):
        # Evidence only supports the two lowest-prior entities; in strict
        # mode they must outrank everyone unsupported.
        supported = ["suvs:cadillac", "suvs:infiniti"]
        ctx = make_context([{e: 0.6} for e in supported])
        answer = llm.rank_entities("best suvs", SUVS, ctx, mode=GroundingMode.STRICT)
        assert set(answer.ranking[:2]) == set(supported)

    def test_citations_only_for_supported(self, llm):
        ctx = make_context([{"suvs:toyota": 0.5}, {"suvs:honda": 0.4}])
        answer = llm.rank_entities("best suvs", SUVS, ctx)
        assert answer.citations["suvs:toyota"]
        assert answer.citations["suvs:honda"]
        uncited = set(answer.uncited_entities())
        assert uncited == set(SUVS) - {"suvs:toyota", "suvs:honda"}

    def test_citation_urls_come_from_context(self, llm):
        ctx = make_context([{"suvs:toyota": 0.5}])
        answer = llm.rank_entities("best suvs", SUVS, ctx)
        assert answer.citations["suvs:toyota"] == ("https://site0.com/page",)


class TestPairwise:
    def test_symmetric_in_argument_order(self, llm):
        ctx = make_context([{e: 0.3} for e in SUVS])
        a = llm.pairwise_judge("best suvs", "suvs:toyota", "suvs:kia", ctx)
        b = llm.pairwise_judge("best suvs", "suvs:kia", "suvs:toyota", ctx)
        assert a == b

    def test_same_entity_raises(self, llm):
        with pytest.raises(ValueError):
            llm.pairwise_judge("q", "suvs:kia", "suvs:kia", make_context([]))

    def test_clear_popular_gap_is_consistent(self, llm):
        # Toyota (sharp, high prior) vs Infiniti (vague, lower prior): the
        # prior gap must dominate in the clear majority of judgments.
        wins = 0
        for i in range(30):
            ctx = make_context([{e: 0.2} for e in SUVS])
            winner = llm.pairwise_judge(
                f"best suvs v{i}", "suvs:toyota", "suvs:infiniti", ctx
            )
            wins += winner == "suvs:toyota"
        assert wins >= 20

    def test_strict_mode_follows_evidence(self, llm):
        ctx = make_context(
            [{"suvs:infiniti": 0.9}, {"suvs:toyota": -0.8}]
        )
        winner = llm.pairwise_judge(
            "best suvs", "suvs:toyota", "suvs:infiniti", ctx, mode=GroundingMode.STRICT
        )
        assert winner == "suvs:infiniti"

    def test_niche_judgments_fluctuate_across_queries(self, llm):
        # Vague priors re-realize per call: across many query phrasings the
        # same niche pair should not always resolve the same way.
        a, b = LAW[0], LAW[2]
        ctx = make_context([])
        winners = {
            llm.pairwise_judge(f"top family law firms variant {i}", a, b, ctx)
            for i in range(40)
        }
        assert winners == {a, b}

    def test_popular_judgments_lean_strongly_toward_the_better_make(self, llm):
        # Toyota vs Jeep: both popular (sharp priors), clear quality gap.
        # Generation noise re-rolls per phrasing, but the gap must win a
        # strong majority of judgments.
        ctx = make_context([])
        wins = sum(
            llm.pairwise_judge(f"best suvs variant {i}", "suvs:toyota", "suvs:jeep", ctx)
            == "suvs:toyota"
            for i in range(40)
        )
        assert wins >= 28

    def test_popular_vs_vague_flips_occasionally_but_leans_right(self, llm):
        # Toyota vs Infiniti mixes a sharp and a vague prior: the vague
        # side re-realizes per call, so flips happen, but the majority
        # must still follow the sharper, higher prior.
        ctx = make_context([])
        wins = sum(
            llm.pairwise_judge(f"best suvs variant {i}", "suvs:toyota", "suvs:infiniti", ctx)
            == "suvs:toyota"
            for i in range(60)
        )
        assert wins > 33
