"""Tests for the pre-training knowledge model."""

import random

import pytest

from repro.entities import build_default_catalog
from repro.llm.pretraining import PretrainedKnowledge
from repro.webgraph.corpus import CorpusConfig, CorpusGenerator
from repro.webgraph.domains import build_default_registry


@pytest.fixture(scope="module")
def world():
    catalog = build_default_catalog()
    registry = build_default_registry()
    corpus = CorpusGenerator(registry, catalog, CorpusConfig(seed=5)).generate()
    return catalog, corpus


@pytest.fixture(scope="module")
def knowledge(world):
    catalog, corpus = world
    return PretrainedKnowledge(corpus, catalog, model_seed=1)


class TestPretrainedKnowledge:
    def test_every_entity_has_a_belief(self, world, knowledge):
        catalog, __ = world
        for entity in catalog:
            assert entity.id in knowledge
            belief = knowledge.belief(entity.id)
            assert 0.0 <= belief.mean <= 1.0
            assert 0.0 <= belief.confidence <= 1.0

    def test_unknown_entity_raises(self, knowledge):
        with pytest.raises(KeyError):
            knowledge.belief("nope:nothing")

    def test_popular_entities_more_confident(self, knowledge):
        assert knowledge.confidence("suvs:toyota") > knowledge.confidence("suvs:infiniti")
        assert (
            knowledge.confidence("smartphones:apple")
            > knowledge.confidence("family_law_toronto:hargrave_family_law")
        )

    def test_niche_confidence_is_low(self, world, knowledge):
        catalog, __ = world
        for entity in catalog.in_vertical("family_law_toronto"):
            assert knowledge.confidence(entity.id) < 0.35

    def test_popular_confidence_is_high(self, knowledge):
        for entity_id in ("suvs:toyota", "smartphones:apple", "airlines:delta"):
            assert knowledge.confidence(entity_id) > 0.55

    def test_prior_mean_tracks_quality_for_popular(self, world, knowledge):
        catalog, __ = world
        errors_popular, errors_niche = [], []
        for entity in catalog:
            error = abs(knowledge.prior_mean(entity.id) - entity.true_quality)
            (errors_popular if entity.is_popular else errors_niche).append(error)
        mean_pop = sum(errors_popular) / len(errors_popular)
        mean_niche = sum(errors_niche) / len(errors_niche)
        assert mean_pop < mean_niche

    def test_priors_frozen_across_instances(self, world):
        catalog, corpus = world
        a = PretrainedKnowledge(corpus, catalog, model_seed=1)
        b = PretrainedKnowledge(corpus, catalog, model_seed=1)
        for entity in catalog:
            assert a.prior_mean(entity.id) == b.prior_mean(entity.id)

    def test_model_seed_changes_priors(self, world):
        catalog, corpus = world
        a = PretrainedKnowledge(corpus, catalog, model_seed=1)
        b = PretrainedKnowledge(corpus, catalog, model_seed=2)
        diffs = [
            abs(a.prior_mean(e.id) - b.prior_mean(e.id)) for e in catalog
        ]
        assert max(diffs) > 0

    def test_sample_prior_sharp_vs_vague(self, knowledge):
        rng = random.Random(0)
        sharp = [knowledge.sample_prior("suvs:toyota", rng) for _ in range(200)]
        vague = [
            knowledge.sample_prior("family_law_toronto:hargrave_family_law", rng)
            for _ in range(200)
        ]
        def spread(xs):
            return max(xs) - min(xs)
        assert spread(sharp) < spread(vague)

    def test_sample_prior_in_bounds(self, knowledge):
        rng = random.Random(3)
        for _ in range(100):
            value = knowledge.sample_prior("suvs:infiniti", rng)
            assert 0.0 <= value <= 1.0

    def test_parameter_validation(self, world):
        catalog, corpus = world
        with pytest.raises(ValueError):
            PretrainedKnowledge(corpus, catalog, exposure_half_saturation=0)
        with pytest.raises(ValueError):
            PretrainedKnowledge(corpus, catalog, base_sigma=-0.1)

    def test_known_entities_matches_catalog(self, world, knowledge):
        catalog, __ = world
        assert set(knowledge.known_entities()) == {e.id for e in catalog}
