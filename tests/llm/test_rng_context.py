"""Tests for RNG derivation and the context window."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.llm.context import ContextWindow, EvidenceSnippet
from repro.llm.rng import derive_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed("a", 1, "b") == derive_seed("a", 1, "b")

    def test_component_boundaries_matter(self):
        assert derive_seed("ab", "c") != derive_seed("a", "bc")

    def test_order_matters(self):
        assert derive_seed("a", "b") != derive_seed("b", "a")

    def test_rng_reproducible(self):
        a = derive_rng("x", 1).random()
        b = derive_rng("x", 1).random()
        assert a == b

    @given(st.lists(st.text(max_size=10), max_size=5))
    def test_seed_in_64_bit_range(self, parts):
        seed = derive_seed(*parts)
        assert 0 <= seed < 2**64


def snip(url, stances, text="text"):
    return EvidenceSnippet(text=text, url=url, domain="d.com", entity_stance=stances)


class TestEvidenceSnippet:
    def test_supports(self):
        s = snip("https://d.com/1", {"e:a": 0.5})
        assert s.supports("e:a")
        assert not s.supports("e:b")

    def test_with_stances_replaces(self):
        s = snip("https://d.com/1", {"e:a": 0.5})
        swapped = s.with_stances({"e:b": -0.2})
        assert swapped.supports("e:b") and not swapped.supports("e:a")
        assert s.supports("e:a")  # original untouched


class TestContextWindow:
    def make_window(self):
        return ContextWindow(
            [
                snip("https://d.com/1", {"e:a": 0.5, "e:b": -0.1}),
                snip("https://d.com/2", {"e:b": 0.3}),
                snip("https://d.com/3", {"e:c": 0.9}),
            ]
        )

    def test_sequence_protocol(self):
        window = self.make_window()
        assert len(window) == 3
        assert window[0].url == "https://d.com/1"
        assert isinstance(window[:2], ContextWindow)
        assert len(window[:2]) == 2

    def test_support_positions(self):
        window = self.make_window()
        positions = [pos for pos, __ in window.support("e:b")]
        assert positions == [0, 1]
        assert window.support("e:zzz") == []

    def test_supported_entities(self):
        assert self.make_window().supported_entities() == {"e:a", "e:b", "e:c"}

    def test_mention_count(self):
        assert self.make_window().mention_count() == 4

    def test_fingerprint_is_order_sensitive(self):
        window = self.make_window()
        shuffled = window.reordered([2, 0, 1])
        assert window.fingerprint() != shuffled.fingerprint()

    def test_fingerprint_stable(self):
        assert self.make_window().fingerprint() == self.make_window().fingerprint()

    def test_fingerprint_sensitive_to_stances(self):
        a = ContextWindow([snip("https://d.com/1", {"e:a": 0.5})])
        b = ContextWindow([snip("https://d.com/1", {"e:a": -0.5})])
        assert a.fingerprint() != b.fingerprint()

    def test_reordered_validates_permutation(self):
        with pytest.raises(ValueError):
            self.make_window().reordered([0, 0, 1])

    def test_reordered_identity_keeps_fingerprint(self):
        window = self.make_window()
        assert window.reordered([0, 1, 2]).fingerprint() == window.fingerprint()
