"""Property-based tests on the SimulatedLLM's core invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entities import build_default_catalog
from repro.llm.context import ContextWindow, EvidenceSnippet
from repro.llm.model import GroundingMode, LLMConfig, SimulatedLLM
from repro.llm.pretraining import PretrainedKnowledge
from repro.webgraph.corpus import CorpusConfig, CorpusGenerator
from repro.webgraph.domains import build_default_registry

SUVS = [
    "suvs:toyota", "suvs:honda", "suvs:kia", "suvs:hyundai",
    "suvs:chevrolet", "suvs:ford", "suvs:mazda", "suvs:subaru",
]


@pytest.fixture(scope="module")
def llm():
    catalog = build_default_catalog()
    registry = build_default_registry()
    corpus = CorpusGenerator(registry, catalog, CorpusConfig(seed=3)).generate()
    knowledge = PretrainedKnowledge(corpus, catalog, model_seed=2)
    return SimulatedLLM(knowledge, LLMConfig(seed=2))


# Strategy: a context over the SUV entities with random stances/positions.
stance_maps = st.dictionaries(
    st.sampled_from(SUVS),
    st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
    max_size=4,
)
contexts = st.lists(stance_maps, max_size=8).map(
    lambda maps: ContextWindow(
        EvidenceSnippet(
            text=f"snippet {i}",
            url=f"https://s{i}.com/p",
            domain=f"s{i}.com",
            entity_stance=stances,
        )
        for i, stances in enumerate(maps)
    )
)


class TestRankingProperties:
    @settings(max_examples=30, deadline=None)
    @given(contexts, st.sampled_from(list(GroundingMode)))
    def test_ranking_is_a_permutation_of_candidates(self, llm, context, mode):
        answer = llm.rank_entities("q", SUVS, context, mode=mode)
        assert sorted(answer.ranking) == sorted(SUVS)

    @settings(max_examples=30, deadline=None)
    @given(contexts, st.sampled_from(list(GroundingMode)))
    def test_ranking_is_deterministic(self, llm, context, mode):
        a = llm.rank_entities("q", SUVS, context, mode=mode)
        b = llm.rank_entities("q", SUVS, context, mode=mode)
        assert a.ranking == b.ranking

    @settings(max_examples=30, deadline=None)
    @given(contexts)
    def test_ranking_order_matches_scores(self, llm, context):
        answer = llm.rank_entities("q", SUVS, context)
        scores = [answer.scores[e] for e in answer.ranking]
        assert scores == sorted(scores, reverse=True)

    @settings(max_examples=30, deadline=None)
    @given(contexts, st.integers(min_value=1, max_value=8))
    def test_top_k_is_a_prefix_of_the_full_ranking(self, llm, context, k):
        full = llm.rank_entities("q", SUVS, context)
        truncated = llm.rank_entities("q", SUVS, context, top_k=k)
        assert truncated.ranking == full.ranking[:k]

    @settings(max_examples=30, deadline=None)
    @given(contexts)
    def test_citations_point_to_supporting_snippets(self, llm, context):
        answer = llm.rank_entities("q", SUVS, context)
        for entity, urls in answer.citations.items():
            supporting = {s.url for __, s in context.support(entity)}
            for url in urls:
                assert url in supporting
            # Supported entities must be cited, unsupported must not.
            assert bool(urls) == bool(supporting)

    @settings(max_examples=25, deadline=None)
    @given(contexts)
    def test_query_text_changes_rerolls_but_stays_valid(self, llm, context):
        a = llm.rank_entities("query one", SUVS, context)
        b = llm.rank_entities("query two", SUVS, context)
        assert sorted(a.ranking) == sorted(b.ranking)


class TestPairwiseProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        contexts,
        st.sampled_from(SUVS),
        st.sampled_from(SUVS),
        st.sampled_from(list(GroundingMode)),
    )
    def test_winner_is_one_of_the_pair_and_symmetric(self, llm, context, a, b, mode):
        if a == b:
            return
        winner_ab = llm.pairwise_judge("q", a, b, context, mode=mode)
        winner_ba = llm.pairwise_judge("q", b, a, context, mode=mode)
        assert winner_ab in (a, b)
        assert winner_ab == winner_ba
