"""Tests for the typology classifier and answer synthesis."""

import pytest

from repro.entities import build_default_catalog
from repro.llm.classify import SourceTypeClassifier
from repro.llm.generation import synthesize_answer
from repro.webgraph.corpus import CorpusConfig, CorpusGenerator
from repro.webgraph.domains import SourceType, build_default_registry


@pytest.fixture(scope="module")
def world():
    catalog = build_default_catalog()
    registry = build_default_registry()
    corpus = CorpusGenerator(registry, catalog, CorpusConfig(seed=5)).generate()
    return catalog, registry, corpus


class TestSourceTypeClassifier:
    def test_social_platforms(self):
        clf = SourceTypeClassifier()
        for domain in ("reddit.com", "youtube.com", "quora.com", "tripadvisor.com"):
            assert clf.classify_domain(domain) is SourceType.SOCIAL

    def test_retail_platforms(self):
        clf = SourceTypeClassifier()
        for domain in ("bestbuy.com", "amazon.com", "cars.com"):
            assert clf.classify_domain(domain) is SourceType.BRAND

    def test_editorial_defaults_to_earned(self):
        clf = SourceTypeClassifier()
        assert clf.classify_domain("techradar.com") is SourceType.EARNED
        assert clf.classify_domain("unknown-blog.net") is SourceType.EARNED

    def test_forum_name_cue(self):
        clf = SourceTypeClassifier()
        assert clf.classify_domain("avforums.com") is SourceType.SOCIAL

    def test_accuracy_against_registry_ground_truth(self, world):
        catalog, registry, corpus = world
        clf = SourceTypeClassifier()
        correct = total = 0
        per_type_total: dict[SourceType, int] = {t: 0 for t in SourceType}
        per_type_correct: dict[SourceType, int] = {t: 0 for t in SourceType}
        for page in corpus.pages:
            truth = registry.get(page.domain).source_type
            guess = clf.classify(page.domain, page)
            total += 1
            per_type_total[truth] += 1
            if guess is truth:
                correct += 1
                per_type_correct[truth] += 1
        assert correct / total > 0.9
        # No class should be systematically lost.
        for source_type in SourceType:
            if per_type_total[source_type]:
                recall = per_type_correct[source_type] / per_type_total[source_type]
                assert recall > 0.75, (source_type, recall)


class TestSynthesizeAnswer:
    def test_ranking_answer_lists_entities(self, world):
        catalog, __, corpus = world
        sources = corpus.by_entity("suvs:toyota")[:3]
        text = synthesize_answer(
            "best suvs",
            sources,
            catalog,
            ranked_entities=["suvs:toyota", "suvs:honda"],
        )
        assert "1. Toyota" in text
        assert "2. Honda" in text
        assert "Sources:" in text
        assert sources[0].url in text

    def test_attributions_reference_supporting_sources(self, world):
        catalog, __, corpus = world
        sources = corpus.by_entity("suvs:toyota")[:2]
        text = synthesize_answer(
            "best suvs", sources, catalog, ranked_entities=["suvs:toyota"]
        )
        assert "[1]" in text

    def test_no_sources_no_citation_block(self, world):
        catalog, __, __ = world
        text = synthesize_answer("best suvs", [], catalog, ranked_entities=["suvs:kia"])
        assert "Sources:" not in text
        assert "1. Kia" in text

    def test_summary_answer_without_ranking(self, world):
        catalog, __, corpus = world
        sources = corpus.pages[:2]
        text = synthesize_answer("how does 5g work", sources, catalog)
        assert "Based on" in text

    def test_invalid_max_listed(self, world):
        catalog, __, __ = world
        with pytest.raises(ValueError):
            synthesize_answer("q", [], catalog, max_listed=0)
