"""The fault-injection substrate: plans, determinism, the sim clock."""

import pickle

import pytest

from repro.resilience import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ResilienceExhausted,
    SimClock,
)


class TestFaultPlan:
    def test_empty_plan_never_faults(self):
        injector = FaultInjector(FaultPlan())
        for site in ("engine.answer", "retrieval.select_sources"):
            assert injector.would_fault(site, "any-key", 1) is None
            injector.check(site, "any-key", 1)  # does not raise

    def test_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="nonexistent.site")

    def test_rejects_bad_rate_failures_kind(self):
        with pytest.raises(ValueError):
            FaultSpec(site="engine.answer", rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(site="engine.answer", failures=0)
        with pytest.raises(ValueError):
            FaultSpec(site="engine.answer", kind="meteor")

    def test_parse_round_trip(self):
        plan = FaultPlan.parse(
            "engine.answer:0.2:2,retrieval.select_sources:0.1:inf:timeout",
            seed=9,
        )
        assert plan.seed == 9
        assert len(plan.specs) == 2
        assert plan.specs[0] == FaultSpec(site="engine.answer", rate=0.2, failures=2)
        assert plan.specs[1].failures is None
        assert plan.specs[1].kind == "timeout"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("engine.answer")  # missing rate
        with pytest.raises(ValueError):
            FaultPlan.parse("bogus.site:0.5")

    def test_parse_shard_id_match(self):
        plan = FaultPlan.parse("search.shard@3:1.0:inf:crash")
        (spec,) = plan.specs
        assert spec.site == "search.shard"
        assert spec.match == "3"
        assert spec.failures is None
        assert spec.kind == "crash"

    def test_parse_rejects_empty_match(self):
        with pytest.raises(ValueError, match="empty @match"):
            FaultPlan.parse("search.shard@:1.0")


class TestMatchNarrowing:
    """``match`` selection: substring for engines, integer for shards."""

    def test_all_digit_match_compares_shard_ids(self):
        injector = FaultInjector(FaultPlan.parse("search.shard@3:1.0:inf"))
        # The shard.search key shape is (shard id, query text).
        assert injector.would_fault("search.shard", (3, "best laptop"), 1)
        assert injector.would_fault("search.shard", (3, "q"), 50)
        # Integer comparison, not substring: shard 13 is not shard 3...
        assert injector.would_fault("search.shard", (13, "q"), 1) is None
        # ...and a query text containing "3" never selects the spec.
        assert (
            injector.would_fault("search.shard", (1, "top 3 laptops"), 1)
            is None
        )

    def test_engine_name_match_stays_substring(self):
        injector = FaultInjector(
            FaultPlan.parse("engine.answer@Gemini:1.0:inf")
        )
        assert injector.would_fault("engine.answer", ("Gemini", "q3"), 1)
        assert (
            injector.would_fault("engine.answer", ("GPT-4o", "q1"), 1)
            is None
        )

    def test_all_digit_match_on_string_keys_falls_back_to_substring(self):
        # Keys not led by an int (every other site) keep the substring
        # rule even for digit matches.
        injector = FaultInjector(
            FaultPlan.parse("retrieval.select_sources@7:1.0:inf")
        )
        assert injector.would_fault(
            "retrieval.select_sources", "best 7-seater suv", 1
        )
        assert (
            injector.would_fault(
                "retrieval.select_sources", "best sedan", 1
            )
            is None
        )

    def test_match_composes_with_rate_and_failures(self):
        injector = FaultInjector(
            FaultPlan.parse("search.shard@2:1.0:2"),
        )
        assert injector.would_fault("search.shard", (2, "q"), 1)
        assert injector.would_fault("search.shard", (2, "q"), 2)
        assert injector.would_fault("search.shard", (2, "q"), 3) is None
        assert injector.would_fault("search.shard", (0, "q"), 1) is None


class TestInjectionDeterminism:
    def test_same_plan_same_decisions(self):
        plan = FaultPlan.parse("engine.answer:0.5:1", seed=3)
        a, b = FaultInjector(plan), FaultInjector(plan)
        keys = [("GPT-4o", f"q-{i}") for i in range(50)]
        decisions_a = [a.would_fault("engine.answer", k, 1) is not None for k in keys]
        decisions_b = [b.would_fault("engine.answer", k, 1) is not None for k in keys]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)  # rate actually selects

    def test_different_seed_different_selection(self):
        keys = [("GPT-4o", f"q-{i}") for i in range(100)]

        def selected(seed):
            injector = FaultInjector(FaultPlan.parse("engine.answer:0.3:1", seed=seed))
            return [
                k for k in keys if injector.would_fault("engine.answer", k, 1)
            ]

        assert selected(1) != selected(2)

    def test_recoverable_key_succeeds_after_failures(self):
        injector = FaultInjector(FaultPlan.parse("engine.answer:1.0:2", seed=0))
        with pytest.raises(InjectedFault):
            injector.check("engine.answer", "k", 1)
        with pytest.raises(InjectedFault):
            injector.check("engine.answer", "k", 2)
        injector.check("engine.answer", "k", 3)  # recovered

    def test_unrecoverable_key_never_succeeds(self):
        injector = FaultInjector(FaultPlan.parse("engine.answer:1.0:inf", seed=0))
        for attempt in (1, 5, 50):
            with pytest.raises(InjectedFault):
                injector.check("engine.answer", "k", attempt)

    def test_timeout_fault_consumes_simulated_time(self):
        plan = FaultPlan(
            seed=0,
            specs=(
                FaultSpec(
                    site="retrieval.select_sources",
                    kind="timeout",
                    timeout_seconds=5.0,
                ),
            ),
        )
        injector = FaultInjector(plan)
        clock = SimClock()
        with pytest.raises(InjectedFault) as excinfo:
            injector.check("retrieval.select_sources", "q", 1, clock=clock)
        assert excinfo.value.kind == "timeout"
        assert clock.now() == pytest.approx(5.0)


class TestExceptionsCrossThePipe:
    """Both exception types must survive pickling (process-pool results)."""

    def test_injected_fault_pickles(self):
        fault = InjectedFault("engine.answer", ("GPT-4o", "q-1"), 2, "timeout")
        clone = pickle.loads(pickle.dumps(fault))
        assert clone.site == fault.site
        assert clone.key == fault.key
        assert clone.attempt == 2
        assert clone.kind == "timeout"
        assert str(clone) == str(fault)

    def test_resilience_exhausted_pickles(self):
        error = ResilienceExhausted("evidence.context", "q-2", 3, "timeout persisted")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.site == error.site
        assert clone.attempts == 3
        assert clone.reason == "timeout persisted"
        assert str(clone) == str(error)


class TestSimClock:
    def test_advances_only_by_sleep(self):
        clock = SimClock()
        assert clock.now() == 0.0
        clock.sleep(1.5)
        clock.sleep(0.5)
        assert clock.now() == pytest.approx(2.0)

    def test_ignores_non_positive_sleeps(self):
        clock = SimClock()
        clock.sleep(0.0)
        clock.sleep(-3.0)
        assert clock.now() == 0.0
