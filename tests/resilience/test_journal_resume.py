"""The run journal: record, replay, resume-only-what's-missing."""

import json

import pytest

from repro.core.runner import StudyRunner
from repro.core.study import ComparativeStudy
from repro.entities.queries import ranking_queries
from repro.resilience import RunJournal


@pytest.fixture()
def queries(chaos_world):
    return ranking_queries(chaos_world.catalog, count=6, seed=53)


def _runner(world, path, resume, workers=1, executor="process"):
    return StudyRunner(
        world,
        workers=workers,
        executor=executor,
        journal=RunJournal(path, resume=resume),
    )


class TestJournalReplay:
    def test_resume_replays_identical_answers_without_recompute(
        self, chaos_world, queries, tmp_path
    ):
        path = tmp_path / "journal.jsonl"
        chaos_world.clear_caches()
        first = _runner(chaos_world, path, resume=False).answers(queries)
        assert path.exists() and path.read_text().strip()

        # Replay against cold caches: the answers must come back from the
        # journal, not from recomputation.
        chaos_world.clear_caches()
        resumed_runner = _runner(chaos_world, path, resume=True)
        resumed = resumed_runner.answers(queries)
        assert resumed == first
        assert resumed_runner.stats.journal_replays == len(chaos_world.engines)
        # No engine did any work: every memo is still cold.
        assert all(
            engine.cache_stats() == (0, 0)
            for engine in chaos_world.engines.values()
        )

    def test_only_missing_chunks_recompute(self, chaos_world, queries, tmp_path):
        path = tmp_path / "journal.jsonl"
        chaos_world.clear_caches()
        first = _runner(chaos_world, path, resume=False, workers=2).answers(queries)

        # Drop one engine's entries: that engine's chunks are "missing".
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        dropped = "GPT-4o"
        kept = [e for e in lines if e["engine"] != dropped]
        assert len(kept) < len(lines)
        path.write_text("".join(json.dumps(e) + "\n" for e in kept))

        # Thread executor so recomputation hits the parent's memo caches —
        # that's the observable proof of which engines actually worked.
        chaos_world.clear_caches()
        resumed_runner = _runner(
            chaos_world, path, resume=True, workers=2, executor="thread"
        )
        resumed = resumed_runner.answers(queries)
        assert resumed == first
        assert resumed_runner.stats.journal_replays == len(kept)
        # Only the dropped engine recomputed.
        for name, engine in chaos_world.engines.items():
            hits, misses = engine.cache_stats()
            assert (misses > 0) == (name == dropped)

    def test_without_resume_the_journal_is_truncated(
        self, chaos_world, queries, tmp_path
    ):
        path = tmp_path / "journal.jsonl"
        chaos_world.clear_caches()
        _runner(chaos_world, path, resume=False).answers(queries)
        entries_first = len(path.read_text().splitlines())

        chaos_world.clear_caches()
        runner = _runner(chaos_world, path, resume=False)
        runner.answers(queries)
        assert runner.stats.journal_replays == 0  # truncated, not replayed
        assert len(path.read_text().splitlines()) == entries_first


class TestJournalHygiene:
    def test_corrupt_lines_are_skipped(self, chaos_world, queries, tmp_path):
        path = tmp_path / "journal.jsonl"
        chaos_world.clear_caches()
        first = _runner(chaos_world, path, resume=False).answers(queries)
        with path.open("a") as handle:
            handle.write("{torn-mid-write\n")
            handle.write('{"key": "no-answers-field"}\n')

        chaos_world.clear_caches()
        resumed_runner = _runner(chaos_world, path, resume=True)
        assert resumed_runner.answers(queries) == first
        assert resumed_runner.stats.journal_replays == len(chaos_world.engines)

    def test_unrehydratable_citation_invalidates_the_entry(
        self, chaos_world, queries, tmp_path
    ):
        path = tmp_path / "journal.jsonl"
        chaos_world.clear_caches()
        first = _runner(chaos_world, path, resume=False).answers(queries)

        # Corrupt one entry's citation so the corpus cannot resolve it.
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        target = next(e for e in lines if any(a["citations"] for a in e["answers"]))
        for answer in target["answers"]:
            for citation in answer["citations"]:
                citation["url"] = "https://no-such-page.invalid/x"
        path.write_text("".join(json.dumps(e) + "\n" for e in lines))

        chaos_world.clear_caches()
        resumed_runner = _runner(chaos_world, path, resume=True)
        resumed = resumed_runner.answers(queries)
        # The poisoned chunk recomputed (fewer replays), results intact.
        assert resumed == first
        assert resumed_runner.stats.journal_replays == len(lines) - 1

    def test_journal_keys_are_config_and_plan_scoped(self, chaos_world, tmp_path):
        # A journal written under one fault plan must not leak results
        # into a run under a different plan.
        from repro.resilience import (
            FaultPlan,
            ResilienceConfig,
            ResilienceContext,
        )

        queries = ranking_queries(chaos_world.catalog, count=4, seed=59)
        path = tmp_path / "journal.jsonl"
        chaos_world.clear_caches()
        _runner(chaos_world, path, resume=False).answers(queries)

        chaos_world.install_resilience(
            ResilienceContext(
                ResilienceConfig(plan=FaultPlan.parse("engine.answer:0.2:1", seed=1))
            )
        )
        chaos_world.clear_caches()
        resumed_runner = _runner(chaos_world, path, resume=True)
        resumed_runner.answers(queries)
        assert resumed_runner.stats.journal_replays == 0

    def test_journalled_study_results_match(self, chaos_world, tmp_path):
        # End to end: a journalled+resumed experiment renders the same
        # text as a plain run.
        from repro.core.experiments import run_experiment

        chaos_world.clear_caches()
        plain_study = ComparativeStudy(chaos_world, runner=StudyRunner(chaos_world))
        _, plain = run_experiment("fig1", chaos_world, study=plain_study)

        path = tmp_path / "journal.jsonl"
        chaos_world.clear_caches()
        study = ComparativeStudy(
            chaos_world, runner=_runner(chaos_world, path, resume=False)
        )
        _, journalled = run_experiment("fig1", chaos_world, study=study)
        assert journalled == plain

        chaos_world.clear_caches()
        resumed_study = ComparativeStudy(
            chaos_world, runner=_runner(chaos_world, path, resume=True)
        )
        _, resumed = run_experiment("fig1", chaos_world, study=resumed_study)
        assert resumed == plain
        assert resumed_study.runner.stats.journal_replays > 0
