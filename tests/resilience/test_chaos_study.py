"""Study-level chaos invariants.

The acceptance bar for the resilience layer, from weakest to strongest
fault plan:

* empty plan installed -> output byte-identical to the unwired tree;
* recoverable plan -> output byte-identical, with nonzero retries
  surfacing in the stats;
* unrecoverable plan -> the run completes, and the affected cells are
  annotated with quarantine provenance instead of raising;
* fail-fast mode -> the first injected fault propagates raw.
"""

import math

import pytest

from repro.core.experiments import run_experiment
from repro.core.report import render_stats
from repro.core.runner import StudyRunner
from repro.core.study import ComparativeStudy
from repro.resilience import (
    FaultPlan,
    InjectedFault,
    ResilienceConfig,
    ResilienceContext,
)


def _run(world, experiment="fig1", workers=1):
    """One cold experiment run; returns (rendered text, study)."""
    world.clear_caches()
    runner = StudyRunner(world, workers=workers, executor="process")
    study = ComparativeStudy(world, runner=runner)
    _, text = run_experiment(experiment, world, study=study)
    return text, study


def _install(world, spec=None, seed=0, fail_fast=False):
    plan = FaultPlan.parse(spec, seed=seed) if spec else FaultPlan(seed=seed)
    ctx = ResilienceContext(ResilienceConfig(plan=plan, fail_fast=fail_fast))
    world.install_resilience(ctx)
    return ctx


class TestByteIdenticalInvariants:
    def test_empty_plan_output_matches_unwired(self, chaos_world):
        baseline, _ = _run(chaos_world)
        _install(chaos_world)
        wired, _ = _run(chaos_world)
        assert wired == baseline

    def test_recoverable_plan_output_matches_with_nonzero_retries(
        self, chaos_world
    ):
        baseline, _ = _run(chaos_world)
        ctx = _install(chaos_world, "engine.answer:0.4:1")
        chaotic, study = _run(chaos_world)
        assert chaotic == baseline
        assert ctx.events.get("retries") > 0
        assert ctx.events.get("exhausted") == 0
        assert len(ctx.quarantine) == 0
        # The retries are visible to the operator.
        stats_text = render_stats(study)
        assert "resilience" in stats_text
        assert "retries" in stats_text

    def test_recoverable_plan_workers_agree(self, chaos_world):
        _install(chaos_world, "engine.answer:0.4:1")
        sequential, _ = _run(chaos_world, workers=1)
        _install(chaos_world, "engine.answer:0.4:1")
        pooled, _ = _run(chaos_world, workers=4)
        assert pooled == sequential

    def test_recoverable_evidence_faults_match_on_table1(self, chaos_world):
        baseline, _ = _run(chaos_world, experiment="table1")
        ctx = _install(chaos_world, "evidence.context:0.5:2")
        chaotic, _ = _run(chaos_world, experiment="table1")
        assert chaotic == baseline
        assert ctx.events.get("retries") > 0


class TestGracefulDegradation:
    def test_unrecoverable_engine_faults_quarantine_not_raise(self, chaos_world):
        ctx = _install(chaos_world, "engine.answer:0.3:inf")
        text, study = _run(chaos_world)
        assert ctx.quarantine.count("quarantined") > 0
        assert "cell(s) degraded by failures" in text
        assert "site=engine.answer" in text
        stats_text = render_stats(study)
        assert "quarantine registry" in stats_text

    def test_unrecoverable_retrieval_degrades_to_prior_only(self, chaos_world):
        # Retrieval exhaustion is survivable one rung earlier than full
        # quarantine: the engine answers from pre-training, citation-free.
        ctx = _install(chaos_world, "retrieval.select_sources:0.3:inf")
        text, _ = _run(chaos_world)
        degraded = ctx.quarantine.records()
        assert ctx.quarantine.count("degraded") > 0
        assert all(r.site == "retrieval.select_sources" for r in degraded)
        assert ctx.events.get("degraded_answers") > 0
        assert "degraded:" in text

    def test_unrecoverable_evidence_faults_yield_nan_cells(self, chaos_world):
        ctx = _install(chaos_world, "evidence.context:1.0:inf")
        chaos_world.clear_caches()
        study = ComparativeStudy(chaos_world, runner=StudyRunner(chaos_world))
        result = study.perturbation_sensitivity()  # completes, does not raise
        # Every evidence retrieval exhausted: every query was skipped and
        # each cell aggregated over nothing.
        assert all(math.isnan(v) for v in result.ss_normal.values())
        records = ctx.quarantine.records()
        assert records and all(r.engine == "evidence" for r in records)
        assert ctx.events.get("evidence_quarantines") > 0

    def test_chunk_crash_is_contained_by_the_pool(self, chaos_world):
        ctx = _install(chaos_world, "runner.chunk:1.0:1:crash")
        baseline_ctx_events = ctx.events.snapshot()
        assert baseline_ctx_events == {}
        text, _ = _run(chaos_world, workers=4)
        # Every chunk crashed once and succeeded on resubmission — the
        # run completed with no data loss at all.
        assert ctx.events.get("chunk_retries") > 0
        assert len(ctx.quarantine) == 0
        assert "cell(s) degraded" not in text

    def test_chunk_crashes_recoverable_plan_output_matches(self, chaos_world):
        baseline, _ = _run(chaos_world, workers=4)
        _install(chaos_world, "runner.chunk:1.0:1:crash")
        chaotic, _ = _run(chaos_world, workers=4)
        assert chaotic == baseline


class TestFailFast:
    def test_fail_fast_propagates_sequentially(self, chaos_world):
        _install(chaos_world, "engine.answer:0.3:inf", fail_fast=True)
        with pytest.raises(InjectedFault):
            _run(chaos_world)

    def test_fail_fast_propagates_from_the_pool(self, chaos_world):
        from repro.core.runner import ChunkExecutionError

        _install(chaos_world, "engine.answer:0.3:inf", fail_fast=True)
        with pytest.raises(ChunkExecutionError):
            _run(chaos_world, workers=4)


class TestCliChaosFlags:
    def test_run_with_recoverable_chaos_and_stats(self, capsys):
        from repro.__main__ import main

        code = main(
            [
                "run", "fig1", "--stats",
                "--chaos", "engine.answer:0.4:1",
                "--chaos-seed", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 1" in out
        assert "resilience: plan seed=3" in out
        assert "retries" in out

    def test_run_rejects_bad_chaos_spec(self, capsys):
        from repro.__main__ import main

        code = main(["run", "fig1", "--chaos", "bogus.site:0.5"])
        assert code == 2
        assert "bad --chaos spec" in capsys.readouterr().err
