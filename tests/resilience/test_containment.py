"""Runner containment of genuinely buggy engines (not injected faults).

The pre-resilience contract — a raising chunk fails fast with engine and
query attribution — lives in tests/core/test_runner_parallel.py.  Here:
with a resilience context installed, the same failure is contained — the
broken queries quarantine as degraded answers, the rest of the workload
completes, and the pool survives.
"""

import pytest

from repro.core.runner import StudyRunner
from repro.engines.base import Answer, AnswerEngine
from repro.entities.queries import ranking_queries
from repro.resilience import ResilienceConfig, ResilienceContext


class _BoomEngine(AnswerEngine):
    """Deterministically buggy: crashes on one specific query."""

    name = "Boom"

    def __init__(self, poison_id: str) -> None:
        super().__init__()
        self._poison_id = poison_id

    def _answer_uncached(self, query):
        if query.id == self._poison_id:
            raise RuntimeError(f"boom on {query.id}")
        return Answer(engine=self.name, query_id=query.id, text=f"ok {query.id}")


@pytest.fixture()
def queries(chaos_world):
    return ranking_queries(chaos_world.catalog, count=6, seed=47)


@pytest.fixture()
def boom_world(chaos_world, queries):
    """The chaos world plus a buggy engine, removed again afterwards."""
    chaos_world.engines["Boom"] = _BoomEngine(queries[2].id)
    chaos_world.install_resilience(ResilienceContext(ResilienceConfig()))
    yield chaos_world
    del chaos_world.engines["Boom"]


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_buggy_engine_is_quarantined_pool_survives(
    boom_world, queries, executor
):
    ctx = boom_world.resilience
    runner = StudyRunner(boom_world, workers=2, executor=executor)
    answers = runner.answers(queries)

    # The broken query degraded; every other (engine, query) completed.
    assert set(answers) == set(boom_world.engines)
    assert all(len(per_engine) == len(queries) for per_engine in answers.values())
    boom = answers["Boom"]
    assert boom[2].text == ""  # position-aligned degraded placeholder
    assert boom[2].citations == ()
    assert [a.text for i, a in enumerate(boom) if i != 2] == [
        f"ok {q.id}" for i, q in enumerate(queries) if i != 2
    ]
    for name in boom_world.engines:
        if name != "Boom":
            assert all(a.text for a in answers[name])

    # Provenance: one quarantine record naming the engine and query.
    records = [r for r in ctx.quarantine.records() if r.engine == "Boom"]
    assert len(records) == 1
    assert records[0].key == queries[2].id
    assert "unhandled RuntimeError" in records[0].reason
    assert ctx.events.get("quarantined_queries") == 1
    # The chunk was retried before falling back to per-query salvage.
    assert ctx.events.get("chunk_retries") > 0
    assert ctx.events.get("chunk_fallbacks") == 1


def test_buggy_engine_contained_sequentially(boom_world, queries):
    ctx = boom_world.resilience
    runner = StudyRunner(boom_world, workers=1)
    answers = runner.answers(queries)
    assert answers["Boom"][2].text == ""
    assert ctx.events.get("quarantined_queries") == 1
    assert ctx.events.get("chunk_retries") == 0  # no pool involved


def test_fail_fast_restores_propagation(boom_world, queries):
    from repro.core.runner import ChunkExecutionError

    boom_world.install_resilience(
        ResilienceContext(ResilienceConfig(fail_fast=True))
    )
    runner = StudyRunner(boom_world, workers=2, executor="process")
    with pytest.raises(ChunkExecutionError, match="boom"):
        runner.answers(queries)
