"""Retry backoff, circuit breaking, deadline budgets, and ctx.call."""

import pytest

from repro.resilience import (
    CircuitBreaker,
    FaultPlan,
    InjectedFault,
    ResilienceConfig,
    ResilienceContext,
    ResilienceExhausted,
    RetryPolicy,
    SimClock,
)


class TestRetryPolicy:
    def test_exponential_backoff_capped(self):
        policy = RetryPolicy(max_attempts=6, base_delay=1.0, multiplier=2.0, max_delay=5.0)
        assert [policy.delay(a) for a in (1, 2, 3, 4)] == [1.0, 2.0, 4.0, 5.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


class TestCircuitBreaker:
    def test_opens_at_threshold_and_short_circuits(self):
        clock = SimClock()
        breaker = CircuitBreaker(clock, failure_threshold=2, cooldown=100.0)
        assert breaker.allow()
        assert not breaker.record_exhaustion()
        assert not breaker.is_open
        assert breaker.record_exhaustion()  # threshold reached: opens
        assert breaker.is_open
        assert not breaker.allow()
        assert breaker.short_circuits == 1
        assert breaker.opens == 1

    def test_half_open_trial_after_cooldown(self):
        clock = SimClock()
        breaker = CircuitBreaker(clock, failure_threshold=1, cooldown=10.0)
        breaker.record_exhaustion()
        assert not breaker.allow()
        clock.sleep(10.0)
        assert breaker.allow()  # half-open trial
        breaker.record_success()
        assert not breaker.is_open
        assert breaker.allow()

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(SimClock(), failure_threshold=2)
        breaker.record_exhaustion()
        breaker.record_success()
        assert not breaker.record_exhaustion()  # count restarted
        assert not breaker.is_open


def _always_fault(site="engine.answer"):
    return FaultPlan.parse(f"{site}:1.0:inf", seed=0)


def _recoverable(site="engine.answer", failures=1):
    return FaultPlan.parse(f"{site}:1.0:{failures}", seed=0)


class TestContextCall:
    def test_recoverable_fault_retries_then_succeeds(self):
        ctx = ResilienceContext(ResilienceConfig(plan=_recoverable(failures=2)))
        calls = []
        result = ctx.call("engine.answer", "k", lambda: calls.append(1) or "ok")
        assert result == "ok"
        assert len(calls) == 1  # injection fires before fn; fn ran once
        assert ctx.events.get("retries") == 2
        assert ctx.events.get("faults_injected") == 2
        assert ctx.events.get("exhausted") == 0
        # Backoff slept on the simulated clock: 0.1 + 0.2.
        assert ctx.clock.now() == pytest.approx(0.3)

    def test_unrecoverable_fault_exhausts(self):
        ctx = ResilienceContext(ResilienceConfig(plan=_always_fault()))
        with pytest.raises(ResilienceExhausted) as excinfo:
            ctx.call("engine.answer", "k", lambda: "never")
        assert excinfo.value.attempts == ctx.config.retry.max_attempts
        assert ctx.events.get("exhausted") == 1

    def test_fail_fast_propagates_the_raw_fault(self):
        ctx = ResilienceContext(
            ResilienceConfig(plan=_recoverable(), fail_fast=True)
        )
        with pytest.raises(InjectedFault):
            ctx.call("engine.answer", "k", lambda: "never")
        assert ctx.events.get("retries") == 0

    def test_real_exceptions_propagate_untouched(self):
        ctx = ResilienceContext(ResilienceConfig(plan=FaultPlan()))

        def bug():
            raise KeyError("genuine bug")

        with pytest.raises(KeyError, match="genuine bug"):
            ctx.call("engine.answer", "k", bug)
        assert ctx.events.get("retries") == 0

    def test_breaker_counts_exhaustions_not_transients(self):
        # Recoverable faults retry to success; the breaker must never
        # see them — the invariant that keeps recoverable chaos runs
        # byte-identical to clean ones.
        ctx = ResilienceContext(ResilienceConfig(plan=_recoverable()))
        for i in range(20):
            ctx.call("engine.answer", f"k-{i}", lambda: "ok", engine="GPT-4o")
        assert not ctx.breaker_for("GPT-4o").is_open
        assert ctx.events.get("breaker_opens") == 0

    def test_breaker_opens_after_threshold_exhaustions(self):
        ctx = ResilienceContext(
            ResilienceConfig(plan=_always_fault(), breaker_threshold=2)
        )
        for i in range(2):
            with pytest.raises(ResilienceExhausted):
                ctx.call("engine.answer", f"k-{i}", lambda: "never", engine="GPT-4o")
        assert ctx.breaker_for("GPT-4o").is_open
        assert ctx.events.get("breaker_opens") == 1
        # Subsequent calls short-circuit without invoking fn at all.
        with pytest.raises(ResilienceExhausted) as excinfo:
            ctx.call("engine.answer", "k-3", lambda: "never", engine="GPT-4o")
        assert excinfo.value.attempts == 0
        assert excinfo.value.reason == "circuit open"
        assert ctx.events.get("breaker_short_circuits") == 1
        # The other engine's breaker is unaffected.
        assert not ctx.breaker_for("Gemini").is_open

    def test_deadline_budget_stops_retries_early(self):
        # Budget smaller than the first backoff delay: one attempt, then
        # exhaustion citing the budget.
        ctx = ResilienceContext(
            ResilienceConfig(
                plan=_recoverable(failures=2),
                retry=RetryPolicy(max_attempts=5, base_delay=10.0),
                deadline_budget=5.0,
            )
        )
        ctx.begin_phase("table1")
        with pytest.raises(ResilienceExhausted) as excinfo:
            ctx.call("engine.answer", "k", lambda: "never")
        assert "deadline budget" in excinfo.value.reason
        assert excinfo.value.attempts == 1

    def test_begin_phase_resets_the_budget(self):
        ctx = ResilienceContext(
            ResilienceConfig(plan=FaultPlan(), deadline_budget=1.0)
        )
        ctx.begin_phase("fig1")
        ctx.clock.sleep(5.0)  # fig1's budget is gone
        assert not ctx.deadline_allows(0.5)
        ctx.begin_phase("fig2")  # fresh budget
        assert ctx.deadline_allows(0.5)


class TestEventDeltas:
    def test_snapshot_merge_delta_round_trip(self):
        from repro.resilience import ResilienceEvents

        events = ResilienceEvents()
        events.bump("retries", 2)
        before = events.snapshot()
        events.bump("retries")
        events.bump("exhausted")
        delta = ResilienceEvents.delta(before, events.snapshot())
        assert delta == {"exhausted": 1, "retries": 1}

        other = ResilienceEvents()
        other.merge(delta)
        assert other.snapshot() == delta
