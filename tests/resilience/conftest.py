"""Fixtures for the chaos / resilience suite.

The chaos world is module-scoped and owned by this suite (not the
session-shared ``tiny_world``): these tests install and tear down
resilience contexts and inject faults, and must never leak a wired
world — or warm caches shaped by injected degradation — into the
determinism suites.
"""

import pytest

from repro.core.config import StudyConfig, WorkloadSizes
from repro.core.world import World

#: Smallest workload the validators accept; the suite asserts execution
#: semantics (retry, quarantine, replay), not the paper's shape claims.
CHAOS_SIZES = WorkloadSizes(
    ranking_queries=20,
    comparison_popular=6,
    comparison_niche=6,
    intent_queries=12,
    freshness_queries_per_vertical=5,
    perturbation_queries=3,
    perturbation_runs=2,
    pairwise_queries=2,
    citation_queries=6,
)


@pytest.fixture(scope="module")
def chaos_world():
    return World.build(StudyConfig(seed=13, corpus_scale=0.35, sizes=CHAOS_SIZES))


@pytest.fixture(autouse=True)
def _detach_resilience(chaos_world):
    """Every test starts and ends with a clean, unwired world."""
    chaos_world.clear_resilience()
    yield
    chaos_world.clear_resilience()
