"""Tests for the query generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entities.catalog import build_default_catalog
from repro.entities.intents import Intent
from repro.entities.queries import (
    PopularityClass,
    Query,
    QueryKind,
    comparison_queries,
    intent_queries,
    ranking_queries,
)
from repro.entities.verticals import CONSUMER_TOPICS, NICHE_VERTICALS


@pytest.fixture(scope="module")
def catalog():
    return build_default_catalog()


class TestQueryModel:
    def test_empty_text_rejected(self):
        with pytest.raises(ValueError):
            Query(id="q", text="  ", kind=QueryKind.RANKING, vertical="suvs")

    def test_bad_top_k_rejected(self):
        with pytest.raises(ValueError):
            Query(id="q", text="x", kind=QueryKind.RANKING, vertical="suvs", top_k=0)

    def test_unknown_vertical_rejected(self):
        with pytest.raises(KeyError):
            Query(id="q", text="x", kind=QueryKind.RANKING, vertical="nope")


class TestRankingQueries:
    def test_count_and_vertical_spread(self, catalog):
        queries = ranking_queries(catalog, count=100, seed=0)
        assert len(queries) == 100
        verticals = {q.vertical for q in queries}
        assert verticals == set(CONSUMER_TOPICS)

    def test_deterministic(self, catalog):
        a = ranking_queries(catalog, count=30, seed=5)
        b = ranking_queries(catalog, count=30, seed=5)
        assert [q.text for q in a] == [q.text for q in b]

    def test_seed_changes_texts(self, catalog):
        a = ranking_queries(catalog, count=30, seed=5)
        b = ranking_queries(catalog, count=30, seed=6)
        assert [q.text for q in a] != [q.text for q in b]

    def test_ids_unique(self, catalog):
        queries = ranking_queries(catalog, count=50, seed=0)
        assert len({q.id for q in queries}) == 50

    def test_candidates_come_from_vertical(self, catalog):
        for query in ranking_queries(catalog, count=20, seed=1):
            for entity_id in query.entities:
                assert catalog.get(entity_id).vertical == query.vertical

    def test_popular_pool_by_default(self, catalog):
        for query in ranking_queries(catalog, count=20, seed=1):
            assert all(catalog.get(e).is_popular for e in query.entities)

    def test_niche_pool_on_request(self, catalog):
        queries = ranking_queries(
            catalog, verticals=NICHE_VERTICALS, count=9, seed=1, niche_entities=True
        )
        for query in queries:
            assert query.popularity_class is PopularityClass.NICHE
            assert all(not catalog.get(e).is_popular for e in query.entities)

    def test_texts_look_like_ranking_queries(self, catalog):
        for query in ranking_queries(catalog, count=20, seed=2):
            assert query.text.startswith("Top ")

    def test_invalid_args(self, catalog):
        with pytest.raises(ValueError):
            ranking_queries(catalog, count=0)
        with pytest.raises(ValueError):
            ranking_queries(catalog, verticals=(), count=5)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=100))
    def test_any_count_seed_combination_is_valid(self, count, seed):
        catalog = build_default_catalog()
        queries = ranking_queries(catalog, count=count, seed=seed)
        assert len(queries) == count
        for query in queries:
            assert query.top_k >= 1
            assert query.kind is QueryKind.RANKING


class TestComparisonQueries:
    def test_split(self, catalog):
        queries = comparison_queries(catalog, n_popular=20, n_niche=20, seed=0)
        popular = [q for q in queries if q.popularity_class is PopularityClass.POPULAR]
        niche = [q for q in queries if q.popularity_class is PopularityClass.NICHE]
        assert len(popular) == 20 and len(niche) == 20

    def test_pairs_are_distinct_same_vertical(self, catalog):
        for query in comparison_queries(catalog, n_popular=15, n_niche=15, seed=1):
            a, b = query.entities
            assert a != b
            assert catalog.get(a).vertical == catalog.get(b).vertical == query.vertical

    def test_popular_pairs_are_popular(self, catalog):
        for query in comparison_queries(catalog, n_popular=15, n_niche=0, seed=1):
            assert all(catalog.get(e).is_popular for e in query.entities)

    def test_niche_pairs_are_niche(self, catalog):
        for query in comparison_queries(catalog, n_popular=0, n_niche=15, seed=1):
            assert all(not catalog.get(e).is_popular for e in query.entities)

    def test_entity_names_appear_in_text(self, catalog):
        for query in comparison_queries(catalog, n_popular=10, n_niche=10, seed=2):
            a, b = (catalog.get(e).name for e in query.entities)
            assert a in query.text and b in query.text


class TestIntentQueries:
    def test_even_intent_split(self, catalog):
        queries = intent_queries(catalog, count=300, seed=0)
        counts = {intent: 0 for intent in Intent}
        for query in queries:
            counts[query.intent] += 1
        assert set(counts.values()) == {100}

    def test_electronics_only_by_default(self, catalog):
        for query in intent_queries(catalog, count=60, seed=0):
            assert query.vertical in ("smartphones", "laptops", "smartwatches")

    def test_too_small_count_rejected(self, catalog):
        with pytest.raises(ValueError):
            intent_queries(catalog, count=2)

    def test_texts_are_filled_templates(self, catalog):
        for query in intent_queries(catalog, count=30, seed=3):
            assert "{" not in query.text and "}" not in query.text
