"""Tests for verticals and the entity catalog."""

import pytest

from repro.entities.catalog import (
    POPULARITY_THRESHOLD,
    Entity,
    EntityCatalog,
    build_default_catalog,
)
from repro.entities.verticals import (
    AUTOMOTIVE_VERTICALS,
    CONSUMER_TOPICS,
    NICHE_VERTICALS,
    VerticalGroup,
    all_verticals,
    get_vertical,
)


class TestVerticals:
    def test_ten_consumer_topics(self):
        assert len(CONSUMER_TOPICS) == 10
        assert len(set(CONSUMER_TOPICS)) == 10

    def test_paper_topics_present(self):
        for topic in (
            "smartphones", "athletic_shoes", "skincare", "electric_cars",
            "streaming", "laptops", "airlines", "hotels", "credit_cards",
            "smartwatches",
        ):
            assert topic in CONSUMER_TOPICS

    def test_get_vertical(self):
        assert get_vertical("suvs").noun == "SUVs"
        with pytest.raises(KeyError, match="unknown vertical"):
            get_vertical("zeppelins")

    def test_niche_verticals_flagged(self):
        for vertical_id in NICHE_VERTICALS:
            assert get_vertical(vertical_id).is_niche

    def test_consumer_topics_not_niche(self):
        for vertical_id in CONSUMER_TOPICS:
            assert not get_vertical(vertical_id).is_niche

    def test_automotive_ages_slower(self):
        for vertical_id in AUTOMOTIVE_VERTICALS:
            assert get_vertical(vertical_id).age_scale > 2.0
        assert get_vertical("smartphones").age_scale == 1.0

    def test_all_verticals_have_vocabulary(self):
        for vertical in all_verticals():
            assert len(vertical.keywords) >= 3
            assert len(vertical.qualifiers) >= 3
            assert vertical.noun
            assert isinstance(vertical.group, VerticalGroup)


class TestEntity:
    def test_validation(self):
        with pytest.raises(ValueError, match="popularity"):
            Entity(id="x", name="X", vertical="suvs", popularity=1.2, true_quality=0.5)
        with pytest.raises(ValueError, match="true_quality"):
            Entity(id="x", name="X", vertical="suvs", popularity=0.5, true_quality=-0.1)
        with pytest.raises(KeyError):
            Entity(id="x", name="X", vertical="nope", popularity=0.5, true_quality=0.5)

    def test_popularity_split(self):
        popular = Entity(
            id="a", name="A", vertical="suvs",
            popularity=POPULARITY_THRESHOLD, true_quality=0.5,
        )
        niche = Entity(
            id="b", name="B", vertical="suvs",
            popularity=POPULARITY_THRESHOLD - 0.01, true_quality=0.5,
        )
        assert popular.is_popular and not niche.is_popular

    def test_surface_forms(self):
        entity = Entity(
            id="a", name="Apple", vertical="smartphones",
            popularity=0.9, true_quality=0.9, aliases=("iPhone",),
        )
        assert entity.surface_forms() == ("Apple", "iPhone")


class TestEntityCatalog:
    def test_duplicate_id_rejected(self):
        catalog = EntityCatalog()
        entity = Entity(id="a", name="A", vertical="suvs", popularity=0.5, true_quality=0.5)
        catalog.add(entity)
        with pytest.raises(ValueError, match="already"):
            catalog.add(entity)

    def test_unknown_lookup(self):
        with pytest.raises(KeyError, match="unknown entity"):
            EntityCatalog().get("nope")


class TestDefaultCatalog:
    @pytest.fixture(scope="class")
    def catalog(self):
        return build_default_catalog()

    def test_every_consumer_topic_populated(self, catalog):
        for topic in CONSUMER_TOPICS:
            assert len(catalog.in_vertical(topic)) >= 8, topic

    def test_every_consumer_topic_has_popular_core_and_niche_tail(self, catalog):
        for topic in CONSUMER_TOPICS:
            assert len(catalog.popular(topic)) >= 4, topic
            assert len(catalog.niche(topic)) >= 1, topic

    def test_niche_verticals_are_all_niche(self, catalog):
        for vertical_id in NICHE_VERTICALS:
            entities = catalog.in_vertical(vertical_id)
            assert len(entities) >= 12, vertical_id
            assert all(not e.is_popular for e in entities), vertical_id

    def test_table3_entities_exist_with_coverage_gradient(self, catalog):
        gradient = ["suvs:toyota", "suvs:honda", "suvs:kia", "suvs:cadillac", "suvs:infiniti"]
        pops = [catalog.get(e).popularity for e in gradient]
        # Mainstream makes strictly more popular than peripheral ones.
        assert min(pops[:3]) > max(pops[3:])

    def test_ids_are_unique_and_well_formed(self, catalog):
        for entity in catalog:
            vertical, __, slug = entity.id.partition(":")
            assert vertical == entity.vertical
            assert slug and slug == slug.lower()

    def test_brand_domains_mostly_assigned(self, catalog):
        with_domain = sum(1 for e in catalog if e.brand_domain)
        assert with_domain / len(catalog) > 0.95

    def test_brand_domains_are_registrable(self, catalog):
        # A brand "domain" must be an eTLD+1, not a subdomain — otherwise
        # citation normalization and the domain registry disagree about
        # the same site.
        from repro.webgraph.urls import registrable_domain

        for entity in catalog:
            if entity.brand_domain:
                assert (
                    registrable_domain(f"https://{entity.brand_domain}/x")
                    == entity.brand_domain
                ), entity.id
