"""detlint baseline, reporter and CLI behaviour — plus the meta-test
that holds ``src/repro`` itself to the determinism contract."""

import json
from pathlib import Path

from repro.__main__ import main
from repro.devtools.detlint import all_rules, lint_paths, rule_table
from repro.devtools.common.baseline import load_baseline, write_baseline
from repro.devtools.common.reporters import render_json, render_text

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"

BAD_SOURCE = "import random\nrng = random.Random(3)\nother = random.Random(3)\n"


def write_bad_module(tmp_path: Path) -> Path:
    module = tmp_path / "mod.py"
    module.write_text(BAD_SOURCE, encoding="utf-8")
    return module


class TestBaseline:
    def test_baselined_findings_stop_blocking(self, tmp_path):
        module = write_bad_module(tmp_path)
        baseline = tmp_path / "baseline.json"

        before = lint_paths([module], baseline=baseline)
        assert len(before.blocking) == 2

        write_baseline(before.findings, baseline)
        after = lint_paths([module], baseline=baseline)
        assert after.exit_code == 0
        assert len(after.baselined) == 2
        assert after.blocking == []

    def test_new_findings_still_fail_beyond_allowance(self, tmp_path):
        module = write_bad_module(tmp_path)
        baseline = tmp_path / "baseline.json"
        write_baseline(lint_paths([module], baseline=baseline).findings, baseline)

        # A third identical occurrence exceeds the grandfathered count=2.
        module.write_text(BAD_SOURCE + "third = random.Random(3)\n", encoding="utf-8")
        report = lint_paths([module], baseline=baseline)
        assert len(report.baselined) == 2
        # The *latest* occurrence is the one left blocking.
        assert [f.line for f in report.blocking] == [4]

    def test_keys_are_line_number_independent(self, tmp_path):
        module = write_bad_module(tmp_path)
        baseline = tmp_path / "baseline.json"
        write_baseline(lint_paths([module], baseline=baseline).findings, baseline)

        # Unrelated edits above the grandfathered lines keep them matched.
        module.write_text("# a new comment\n\n" + BAD_SOURCE, encoding="utf-8")
        assert lint_paths([module], baseline=baseline).exit_code == 0

    def test_absolute_and_relative_paths_share_keys(self, tmp_path, monkeypatch):
        module = write_bad_module(tmp_path)
        baseline = tmp_path / "baseline.json"
        write_baseline(lint_paths([module], baseline=baseline).findings, baseline)
        monkeypatch.chdir(tmp_path)
        assert lint_paths([Path("mod.py")], baseline=baseline).exit_code == 0
        assert load_baseline(baseline)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}


class TestReporters:
    def test_text_report_mentions_location_and_summary(self, tmp_path):
        report = lint_paths([write_bad_module(tmp_path)], baseline=None)
        text = render_text(report)
        assert "mod.py:2" in text
        assert "DET001" in text
        assert "2 blocking" in text

    def test_json_report_parses(self, tmp_path):
        report = lint_paths([write_bad_module(tmp_path)], baseline=None)
        payload = json.loads(render_json(report))
        assert payload["summary"]["blocking"] == 2
        assert {f["rule"] for f in payload["findings"]} == {"DET001"}


class TestCli:
    def test_lint_fixture_dir_fails(self, capsys):
        code = main(
            ["lint", str(FIXTURES / "det001_rng.py"), "--no-baseline"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "DET001" in out

    def test_json_format(self, capsys):
        code = main(
            [
                "lint", str(FIXTURES / "det002_clock.py"),
                "--no-baseline", "--format", "json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["blocking"] > 0

    def test_update_baseline_roundtrip(self, tmp_path, capsys):
        module = write_bad_module(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(
            ["lint", str(module), "--baseline", str(baseline), "--update-baseline"]
        ) == 0
        assert main(["lint", str(module), "--baseline", str(baseline)]) == 0
        assert main(
            ["lint", str(module), "--baseline", str(baseline), "--no-baseline"]
        ) == 1
        entries = json.loads(baseline.read_text())["entries"]
        assert entries and all(e["reason"] for e in entries)

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code, __, __ in rule_table():
            assert code in out


class TestRepositoryIsClean:
    """The meta-test: the library itself satisfies its own contract."""

    def test_src_repro_has_zero_nonbaselined_findings(self):
        report = lint_paths(
            [REPO_ROOT / "src" / "repro"],
            baseline=REPO_ROOT / ".detlint-baseline.json",
        )
        assert report.files_checked > 50
        offenders = [f"{f.location()} {f.rule}" for f in report.blocking]
        assert offenders == []

    def test_every_baseline_entry_is_documented(self):
        data = json.loads(
            (REPO_ROOT / ".detlint-baseline.json").read_text(encoding="utf-8")
        )
        for entry in data["entries"]:
            assert entry["reason"]
            assert "TODO" not in entry["reason"]

    def test_all_six_rules_registered(self):
        codes = [cls.code for cls in all_rules()]
        assert codes == [f"DET00{i}" for i in range(1, 7)]
