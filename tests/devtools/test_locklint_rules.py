"""locklint rule tests, driven by whole-module fixture files.

Same harness contract as the detlint/conclint fixture tests: every line
that must produce a finding carries an ``# expect[LOCKnnn]`` marker and
the analyzer must produce *exactly* the marked findings.  The unit of
analysis is the whole module — lock-order cycles and blocking
reachability are interprocedural facts, so each fixture builds its own
lock graph.
"""

import re
from pathlib import Path

import pytest

from repro.devtools.locklint import analyze_paths, build_sites, lock_rule_table
from repro.devtools.conclint.symbols import ProjectIndex
from repro.lockorder import CANONICAL_HIERARCHY

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures" / "locklint"

_EXPECT_RE = re.compile(r"#\s*expect\[([A-Z0-9,]+)\]")


def expected_findings(source: str) -> set[tuple[int, str]]:
    expected = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match:
            for code in match.group(1).split(","):
                expected.add((lineno, code))
    return expected


def analyze_fixture(name: str):
    path = FIXTURES / name
    source = path.read_text(encoding="utf-8")
    return source, analyze_paths([path]).findings


RULE_FIXTURES = [
    ("LOCK001", "lock001_inversion.py"),
    ("LOCK002", "lock002_blocking.py"),
    ("LOCK003", "lock003_reentrant.py"),
    ("LOCK004", "lock004_bare_acquire.py"),
    ("LOCK005", "lock005_wait.py"),
]


class TestRuleFixtures:
    @pytest.mark.parametrize("code,fixture", RULE_FIXTURES)
    def test_exact_findings(self, code, fixture):
        source, findings = analyze_fixture(fixture)
        expected = expected_findings(source)
        assert expected, f"fixture {fixture} has no expect markers"
        actual = {(f.line, f.rule) for f in findings if not f.waived}
        assert actual == expected

    @pytest.mark.parametrize("code,fixture", RULE_FIXTURES)
    def test_rule_has_failing_case(self, code, fixture):
        """Acceptance: every rule is demonstrated by a failing fixture."""
        __, findings = analyze_fixture(fixture)
        assert any(f.rule == code and f.blocking for f in findings)


class TestInversionFixture:
    """The static half of the two-lock inversion contract; the runtime
    half (the witness catching the same module live) is
    ``tests/test_lockwitness.py``."""

    def test_witness_built_inversion_is_flagged(self):
        source, findings = analyze_fixture("inversion_live.py")
        expected = expected_findings(source)
        actual = {(f.line, f.rule) for f in findings if not f.waived}
        assert actual == expected
        (finding,) = [f for f in findings if f.rule == "LOCK001"]
        # Both acquisition orders must be in the message.
        assert "InvertedPair._first" in finding.message
        assert "InvertedPair._second" in finding.message
        assert "reverse order" in finding.message

    def test_witness_site_names_resolve(self):
        # witness_lock("InvertedPair._first") must register the same
        # site a bare threading.Lock() would.
        index = ProjectIndex.build(
            [FIXTURES / "inversion_live.py"], tool="locklint"
        )
        table = build_sites(index)
        assert "InvertedPair._first" in table.sites
        assert "InvertedPair._second" in table.sites
        assert table.mismatched == []
        assert all(site.mutex for site in table.sites.values())


class TestPragmas:
    def test_locklint_pragma_waives_but_detlint_pragma_does_not(self):
        source, findings = analyze_fixture("pragma_waivers.py")
        assert {f.rule for f in findings} == {"LOCK002"}
        waived = [f for f in findings if f.waived]
        blocking = [f for f in findings if f.blocking]
        assert len(waived) == 1 and len(blocking) == 1
        # The surviving finding is the one under the wrong tool's pragma.
        assert "detlint" in source.splitlines()[blocking[0].line - 1]


class TestRepositoryIsClean:
    """The meta-tests: src/repro holds its own lock discipline, and the
    runtime witness agrees with the static analysis."""

    def test_src_repro_has_zero_nonbaselined_findings(self):
        report = analyze_paths(
            [REPO_ROOT / "src" / "repro"],
            baseline=REPO_ROOT / ".locklint-baseline.json",
        )
        assert report.files_checked > 50
        offenders = [f"{f.location()} {f.rule}" for f in report.blocking]
        assert offenders == []

    def test_checked_in_baseline_is_empty(self):
        # src/repro carries no grandfathered lock debt, by policy.
        import json

        data = json.loads(
            (REPO_ROOT / ".locklint-baseline.json").read_text(encoding="utf-8")
        )
        assert data["entries"] == []

    def test_hierarchy_matches_runtime_witness(self):
        # The order the witness enforces at runtime is exactly the
        # order locklint derives statically; drift here means one half
        # of the contract is lying.
        report = analyze_paths([REPO_ROOT / "src" / "repro"], baseline=None)
        assert report.graph.hierarchy() == list(CANONICAL_HIERARCHY)

    def test_every_project_lock_site_is_witnessed(self):
        # Every mutex attribute site in src/repro is built through
        # witness_lock with its canonical name (no drifting strings).
        index = ProjectIndex.build(
            sorted((REPO_ROOT / "src" / "repro").rglob("*.py")),
            tool="locklint",
        )
        table = build_sites(index)
        assert table.mismatched == []
        mutex_attrs = {
            name
            for name, site in table.sites.items()
            if site.mutex and site.scope == "attr"
            and not site.owner.startswith("repro.lockorder")
        }
        assert mutex_attrs == set(CANONICAL_HIERARCHY)

    def test_all_five_rules_registered(self):
        codes = [code for code, __, __ in lock_rule_table()]
        assert codes == [f"LOCK00{i}" for i in range(1, 6)]
