"""conclint rule tests, driven by whole-module fixture files.

Same harness contract as the detlint fixture tests: every line that
must produce a finding carries an ``# expect[CONCnnn]`` marker, and the
analyzer must produce *exactly* the marked findings — false negatives
and false positives fail the same assertion.  Unlike detlint the unit
of analysis is the whole module: each fixture builds its own call graph
(pool submissions or an ``AnswerEngine`` subclass make code
worker-reachable).
"""

import re
from pathlib import Path

import pytest

from repro.devtools.conclint import analyze_paths

FIXTURES = Path(__file__).parent / "fixtures" / "conclint"

_EXPECT_RE = re.compile(r"#\s*expect\[([A-Z0-9,]+)\]")


def expected_findings(source: str) -> set[tuple[int, str]]:
    expected = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match:
            for code in match.group(1).split(","):
                expected.add((lineno, code))
    return expected


def analyze_fixture(name: str):
    path = FIXTURES / name
    source = path.read_text(encoding="utf-8")
    return source, analyze_paths([path]).findings


RULE_FIXTURES = [
    ("CONC001", "conc001_globals.py"),
    ("CONC002", "conc002_cache.py"),
    ("CONC003", "conc003_forkship.py"),
    ("CONC004", "conc004_capture.py"),
    ("CONC005", "conc005_rng.py"),
]


class TestRuleFixtures:
    @pytest.mark.parametrize("code,fixture", RULE_FIXTURES)
    def test_exact_findings(self, code, fixture):
        source, findings = analyze_fixture(fixture)
        expected = expected_findings(source)
        assert expected, f"fixture {fixture} has no expect markers"
        actual = {(f.line, f.rule) for f in findings if not f.waived}
        assert actual == expected

    @pytest.mark.parametrize("code,fixture", RULE_FIXTURES)
    def test_rule_has_failing_case(self, code, fixture):
        """Acceptance: every rule is demonstrated by a failing fixture."""
        __, findings = analyze_fixture(fixture)
        assert any(f.rule == code and f.blocking for f in findings)


class TestPragmas:
    def test_conclint_pragma_waives_but_detlint_pragma_does_not(self):
        source, findings = analyze_fixture("pragma_waivers.py")
        assert {f.rule for f in findings} == {"CONC001"}
        waived = [f for f in findings if f.waived]
        blocking = [f for f in findings if f.blocking]
        assert len(waived) == 1 and len(blocking) == 1
        # The surviving finding is the one under the wrong tool's pragma.
        assert "detlint" in source.splitlines()[blocking[0].line - 1]

    def test_skip_file(self):
        __, findings = analyze_fixture("skip_file.py")
        assert findings == []


class TestFindingQuality:
    def test_messages_carry_reachability_provenance(self):
        # Why-is-this-worker-side must be in the message ("via <entry>").
        __, findings = analyze_fixture("conc001_globals.py")
        blocking = [f for f in findings if f.blocking]
        assert blocking
        assert all("via " in f.message for f in blocking)

    def test_findings_sorted_and_snippeted(self):
        __, findings = analyze_fixture("conc002_cache.py")
        assert findings == sorted(findings)
        assert all(f.snippet for f in findings)
