"""cachelint baseline, CLI, cache-graph dump and registry behaviour.

Also home of the SARIF round-trip test (the renderer is shared by all
four analyzers through :mod:`repro.devtools.common.sarif`, so one
round-trip against the JSON reporter pins the mapping for everyone).
"""

import json
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.devtools.cachelint import analyze_paths, cache_rule_table
from repro.devtools.common.baseline import write_baseline
from repro.devtools.common.cli import TOOL_COMMANDS
from repro.devtools.common.reporters import render_json
from repro.devtools.common.sarif import render_sarif

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures" / "cachelint"

BAD_SOURCE = '''\
class Table:
    def __init__(self):
        self._rows = {}
        self._epoch = 0

    @property
    def epoch(self):
        return self._epoch

    def add(self, key, value):
        self._rows[key] = value
        self._epoch += 1


class Memo:
    def __init__(self, table: Table):
        self._table = table
        self._memo_cache = {}

    def compute(self, key):
        if key in self._memo_cache:
            return self._memo_cache[key]
        value = str(self._table)
        self._memo_cache[key] = value
        return value
'''


def write_bad_module(tmp_path: Path) -> Path:
    module = tmp_path / "mod.py"
    module.write_text(BAD_SOURCE, encoding="utf-8")
    return module


class TestBaseline:
    def test_baselined_findings_stop_blocking(self, tmp_path):
        module = write_bad_module(tmp_path)
        baseline = tmp_path / "baseline.json"

        before = analyze_paths([module], baseline=baseline)
        assert len(before.blocking) == 1

        write_baseline(before.findings, baseline)
        after = analyze_paths([module], baseline=baseline)
        assert after.exit_code == 0
        assert len(after.baselined) == 1
        assert after.blocking == []


class TestCli:
    def test_fixture_fails_with_text_report(self, capsys):
        code = main(
            ["cachelint", str(FIXTURES / "cache002_unkeyed.py"), "--no-baseline"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "CACHE002" in out
        assert "cachelint:" in out

    def test_json_format(self, capsys):
        code = main(
            [
                "cachelint", str(FIXTURES / "cache005_contract.py"),
                "--no-baseline", "--format", "json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["blocking"] > 0
        assert {f["rule"] for f in payload["findings"]} == {"CACHE005"}

    def test_update_baseline_roundtrip(self, tmp_path, capsys):
        module = write_bad_module(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(
            ["cachelint", str(module), "--baseline", str(baseline),
             "--update-baseline"]
        ) == 0
        assert main(
            ["cachelint", str(module), "--baseline", str(baseline)]
        ) == 0
        assert main(
            ["cachelint", str(module), "--baseline", str(baseline),
             "--no-baseline"]
        ) == 1
        entries = json.loads(baseline.read_text())["entries"]
        assert entries and all(e["reason"] for e in entries)

    def test_list_rules(self, capsys):
        assert main(["cachelint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code, __, __ in cache_rule_table():
            assert code in out

    def test_dump_cachegraph_is_deterministic_json(self, capsys):
        args = [
            "cachelint", str(REPO_ROOT / "src" / "repro"),
            "--no-baseline", "--dump-cachegraph",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert set(payload) == {
            "sites", "epoch_bearing", "epoch_coupled", "primitive_classes", "ops",
        }
        site_names = {s["name"] for s in payload["sites"]}
        assert "SearchEngine._query_cache" in site_names
        assert "World.evidence_cache" in site_names
        # Every insert into the repo's caches carries an epoch component
        # (or the site is content-addressed and exempt from CACHE002).
        epoch_keyed = [
            op["epoch_keyed"]
            for ops in payload["ops"].values()
            for op in ops
            if op["kind"] == "insert" and op["site"] != "SnippetCache._cache"
        ]
        assert epoch_keyed and all(epoch_keyed)


class TestToolRegistry:
    """Satellite: all four analyzers route through the one registry."""

    def test_registry_lists_all_four_analyzers(self):
        assert [c.command for c in TOOL_COMMANDS] == [
            "lint", "conclint", "locklint", "cachelint",
        ]

    @pytest.mark.parametrize("command", [c.command for c in TOOL_COMMANDS])
    def test_every_registered_tool_dispatches(self, command, capsys):
        assert main([command, "--list-rules"]) == 0
        assert capsys.readouterr().out.strip()

    def test_loaded_cli_tool_names_match_commands(self):
        # The detlint subcommand is spelled "lint"; the rest match 1:1.
        names = {c.command: c.load().tool for c in TOOL_COMMANDS}
        assert names == {
            "lint": "detlint",
            "conclint": "conclint",
            "locklint": "locklint",
            "cachelint": "cachelint",
        }


class TestSarifReporter:
    """Satellite: the shared SARIF renderer round-trips against the JSON
    reporter — same findings, same rule ids, lines, paths and levels."""

    def _report(self):
        return analyze_paths([FIXTURES / "pragma_waivers.py"], baseline=None)

    def test_round_trip_against_json_reporter(self):
        report = self._report()
        plain = json.loads(render_json(report))
        sarif = json.loads(render_sarif(report, tool="cachelint",
                                        rules=cache_rule_table()))
        (run,) = sarif["runs"]
        results = run["results"]
        assert len(results) == len(plain["findings"])
        for result, finding in zip(results, plain["findings"]):
            assert result["ruleId"] == finding["rule"]
            assert result["message"]["text"] == finding["message"]
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"] == finding["path"]
            assert location["region"]["startLine"] == finding["line"]
            expected_level = "note" if finding["waived"] else "error"
            assert result["level"] == expected_level

    def test_waived_findings_carry_in_source_suppression(self):
        report = self._report()
        sarif = json.loads(render_sarif(report, tool="cachelint"))
        results = sarif["runs"][0]["results"]
        suppressed = [r for r in results if "suppressions" in r]
        assert len(suppressed) == 1
        assert suppressed[0]["suppressions"][0]["kind"] == "inSource"

    def test_driver_rules_come_from_the_rule_table(self):
        report = self._report()
        sarif = json.loads(render_sarif(report, tool="cachelint",
                                        rules=cache_rule_table()))
        driver = sarif["runs"][0]["tool"]["driver"]
        assert driver["name"] == "cachelint"
        assert [r["id"] for r in driver["rules"]] == [
            code for code, __, __ in cache_rule_table()
        ]

    def test_output_is_deterministic(self):
        rendered = {
            render_sarif(self._report(), tool="cachelint",
                         rules=cache_rule_table())
            for _ in range(3)
        }
        assert len(rendered) == 1
        assert json.loads(next(iter(rendered)))["version"] == "2.1.0"

    def test_cli_format_sarif_flag(self, capsys):
        code = main(
            ["cachelint", str(FIXTURES / "cache002_unkeyed.py"),
             "--no-baseline", "--format", "sarif"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        assert payload["runs"][0]["results"][0]["ruleId"] == "CACHE002"

    @pytest.mark.parametrize("command", [c.command for c in TOOL_COMMANDS])
    def test_every_analyzer_speaks_sarif(self, command, capsys):
        # The flag exists and renders valid SARIF for all four tools.
        code = main([command, "--no-baseline", "--format", "sarif",
                     str(REPO_ROOT / "src" / "repro" / "core" / "config.py")])
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert payload["version"] == "2.1.0"
        assert isinstance(payload["runs"][0]["results"], list)
        assert code in (0, 1)
