"""DET002 fixture: wall-clock reads."""
import datetime
import datetime as dt
import time
from datetime import date, datetime as datetime_cls
from time import time as time_fn

# --- positives -------------------------------------------------------
now_s = time.time()  # expect[DET002]
now_mono = time.monotonic()  # expect[DET002]
now_perf = time.perf_counter()  # expect[DET002]
now_dt = datetime.datetime.now()  # expect[DET002]
now_utc = dt.datetime.utcnow()  # expect[DET002]
today = date.today()  # expect[DET002]
now_cls = datetime_cls.now()  # expect[DET002]
now_from = time_fn()  # expect[DET002]

# --- negatives -------------------------------------------------------
fixed = datetime.date(2025, 6, 1)  # an explicit date is deterministic
stamp = datetime.datetime(2025, 6, 1, 12, 0)
time.sleep(0)  # sleeping reads no clock value into results
parsed = datetime.datetime.fromisoformat("2025-06-01T00:00:00")
