"""CACHE003: mutating epoch-bearing state without bumping the counter.

``DriftingIndex.add()`` is the honest mutation path — it writes the
docs table, resets the derived memo, and bumps the epoch, so
epoch-keyed consumers invalidate.  ``sneak_update`` writes the same
table without the bump: every epoch-keyed cache keeps serving the
pre-mutation view.  ``view``'s memo write is licensed because the
bumping method resets that memo wholesale.
"""


class DriftingIndex:
    def __init__(self):
        self._docs = {}
        self._views_memo = {}
        self._epoch = 0

    @property
    def epoch(self):
        return self._epoch

    def add(self, doc_id, text):
        self._docs[doc_id] = text
        self._views_memo = {}
        self._epoch += 1

    def sneak_update(self, doc_id, text):
        self._docs[doc_id] = text  # expect[CACHE003]

    def view(self, doc_id):
        key = (doc_id, self._epoch)
        if key not in self._views_memo:
            self._views_memo[key] = len(self._docs.get(doc_id, ""))
        return self._views_memo[key]
