"""CACHE004: a cached mutable value mutated after insertion.

``build`` stores a list in the memo and then appends to it — every
later hit observes the append.  ``fetch`` stores and returns the raw
list without a defensive copy; ``decorate`` mutates what it got back,
corrupting the cached entry from outside the class.
"""


class Reports:
    def __init__(self):
        self._report_cache = {}

    def build(self, key):
        rows = [key, key.upper()]
        self._report_cache[key] = rows
        rows.append("post-insert")  # expect[CACHE004]
        return rows

    def fetch(self, key):
        if key in self._report_cache:
            return self._report_cache[key]
        rows = [key]
        self._report_cache[key] = rows
        return rows


def decorate(reports: Reports, key):
    rows = reports.fetch(key)
    rows.append("decorated")  # expect[CACHE004]
    return rows
