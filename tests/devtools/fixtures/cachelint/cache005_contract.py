"""CACHE005: bypassing the cache's counted interface.

``Station`` keeps hit/miss counters next to its memo, which pins the
contract: every insert records the miss.  ``put_uncounted`` skips the
bump, so the hit rate drifts from reality; ``poke`` reaches into the
storage dict from outside the class entirely.
"""


class Station:
    def __init__(self):
        self._memo = {}
        self._hits = 0
        self._misses = 0

    def get(self, key):
        if key in self._memo:
            self._hits += 1
            return self._memo[key]
        return None

    def put_counted(self, key, value):
        self._misses += 1
        self._memo[key] = value

    def put_uncounted(self, key, value):
        self._memo[key] = value  # expect[CACHE005]


def poke(station: Station, value):
    station._memo["k"] = value  # expect[CACHE005]
