"""CACHE001: a cache the world-level clear walk never reaches.

``App.clear_caches()`` clears its own results memo directly, clears the
snippet-cache primitive through its ``clear()`` method, and reaches the
registry memo through a ``reset()`` call the walk follows by name.  The
orphan memo is the bug: reachable from the clear-caches owner, cleared
by nothing.
"""


class SnipCache:
    """A cache primitive: its internal dict is storage, not a site."""

    def __init__(self):
        self._store_cache = {}

    def get(self, key):
        return self._store_cache.get(key)

    def put(self, key, value):
        self._store_cache[key] = value

    def clear(self):
        self._store_cache.clear()


class Registry:
    """Cleared transitively through the name-based ``reset`` edge."""

    def __init__(self):
        self._entries_cache = {}

    def lookup(self, key):
        return self._entries_cache.get(key)

    def reset(self):
        self._entries_cache.clear()


class App:
    def __init__(self, registry: Registry):
        self.registry = registry
        self.pages = SnipCache()
        self._results_cache = {}
        self._orphan_memo = {}  # expect[CACHE001]

    def clear_caches(self):
        self._results_cache.clear()
        self.pages.clear()
        self.registry.reset()
