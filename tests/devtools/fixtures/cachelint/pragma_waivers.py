"""Pragma waivers are tool-scoped: cachelint honours only its own."""


class Meter:
    def __init__(self):
        self._ticks = {}
        self._epoch = 0

    @property
    def epoch(self):
        return self._epoch

    def tick(self, key):
        self._ticks[key] = key
        self._epoch += 1


class Board:
    def __init__(self, meter: Meter):
        self._meter = meter
        self._waived_cache = {}
        self._blocked_cache = {}

    def waived(self, key):
        self._waived_cache[key] = key  # cachelint: ignore[CACHE002] -- keyed epoch-free on purpose
        return self._waived_cache[key]

    def blocked(self, key):
        self._blocked_cache[key] = key  # detlint: ignore[CACHE002] -- wrong tool, does not waive
        return self._blocked_cache[key]
