"""A staleness bug cachelint flags statically AND the witness catches live.

``SummaryBoard`` memoizes per-key summaries derived from a mutable
``TinyTable`` but keys the memo without the table's epoch — CACHE002
statically.  Under ``REPRO_CACHE_WITNESS=1`` the same bug trips at
runtime: the generation-stamped witness raises
:class:`repro.cachewitness.CacheCoherenceViolation` on the first cached
read after ``table.add()`` bumps the epoch, because the entry outlived
the generation it was computed under.
"""

from repro.cachewitness import witness_for


class TinyTable:
    def __init__(self):
        self._rows = {}
        self._epoch = 0

    @property
    def epoch(self):
        return self._epoch

    def add(self, key, value):
        self._rows[key] = value
        self._epoch += 1

    def lookup(self, key):
        return self._rows.get(key)


class SummaryBoard:
    def __init__(self, table: TinyTable):
        self._table = table
        self._summary_memo = {}
        self._witness = witness_for(
            "SummaryBoard._summary_memo", epochs=lambda: self._table.epoch
        )

    def summary(self, key):
        if key in self._summary_memo:
            cached = self._summary_memo[key]
            if self._witness is not None:
                self._witness.verify(key, cached)
            return cached
        value = "{}={!r}".format(key, self._table.lookup(key))
        self._summary_memo[key] = value  # expect[CACHE002]
        if self._witness is not None:
            self._witness.record(key, value)
        return value
