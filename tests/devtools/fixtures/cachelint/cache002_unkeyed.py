"""CACHE002: an epoch-coupled memo keyed without the epoch.

``EpochTable`` is epoch-bearing (its ``epoch`` property reads the
generation counter ``add()`` bumps); ``Summaries`` holds one, so it is
epoch-coupled.  ``summarize`` memoizes a value derived from the table
but keys only on the argument — entries keep being served after the
table changes.  ``summarize_keyed`` builds the same key *with* the
epoch and is clean.
"""


class EpochTable:
    def __init__(self):
        self._rows = {}
        self._generation = 0

    @property
    def epoch(self):
        return self._generation

    def add(self, key, value):
        self._rows[key] = value
        self._generation += 1

    def lookup(self, key):
        return self._rows.get(key)


class Summaries:
    def __init__(self, table: EpochTable):
        self._table = table
        self._memo_cache = {}
        self._good_cache = {}

    def summarize(self, key):
        if key in self._memo_cache:
            return self._memo_cache[key]
        value = len(str(self._table.lookup(key)))
        self._memo_cache[key] = value  # expect[CACHE002]
        return value

    def summarize_keyed(self, key):
        cache_key = (key, self._table.epoch)
        if cache_key in self._good_cache:
            return self._good_cache[cache_key]
        value = len(str(self._table.lookup(key)))
        self._good_cache[cache_key] = value
        return value
