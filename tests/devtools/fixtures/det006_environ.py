"""DET006 fixture: ambient environment reads outside repro.core.config."""
import os
from os import environ, getenv

# --- positives -------------------------------------------------------
workers = os.environ.get("REPRO_WORKERS", "1")  # expect[DET006]
home = os.environ["HOME"]  # expect[DET006]
debug = os.getenv("DEBUG")  # expect[DET006]
from_import = environ.get("PATH")  # expect[DET006]
from_getenv = getenv("PATH")  # expect[DET006]

# --- negatives -------------------------------------------------------
cpus = os.cpu_count()  # machine introspection, not environment config
path = os.path.sep
