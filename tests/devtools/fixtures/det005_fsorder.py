"""DET005 fixture: filesystem enumeration order."""
import glob
import os
from pathlib import Path

root = Path("results")

# --- positives -------------------------------------------------------
names = os.listdir(".")  # expect[DET005]
entries = os.scandir(".")  # expect[DET005]
matched = glob.glob("*.json")  # expect[DET005]
children = root.iterdir()  # expect[DET005]
deep = Path(".").rglob("*.py")  # expect[DET005]
patterned = root.glob("*.json")  # expect[DET005]

# --- negatives -------------------------------------------------------
sorted_names = sorted(os.listdir("."))
sorted_deep = sorted(Path(".").rglob("*.py"))
sorted_matches = sorted(root.glob("*.json"), key=str)
joined = os.path.join("a", "b")  # os.path is not enumeration
