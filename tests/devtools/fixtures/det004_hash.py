"""DET004 fixture: builtin hash() is PYTHONHASHSEED-salted."""
import hashlib

from repro.llm.rng import derive_seed

# --- positives -------------------------------------------------------
bucket = hash("entity:acme") % 8  # expect[DET004]
mixed = hash(b"payload")  # expect[DET004]
indirect = hash(("a", "b"))  # tuples of str are salted too  # expect[DET004]

# --- negatives -------------------------------------------------------
stable = derive_seed("entity:acme") % 8
digest = hashlib.sha256(b"payload").hexdigest()


class Entity:
    def __hash__(self) -> int:  # defining __hash__ is not calling hash()
        return 0
