"""CONC002 fixture: unguarded writes to shared instance cache state.

``MemoEngine`` subclasses :class:`AnswerEngine`, so its ``answer``-family
methods are worker-side entry points.  Cache writes (memo dict, hit
counters) outside ``self._memo_lock`` are marked; the identical writes
under the lock, ``__init__`` initialization, and rebinding a local
alias must stay clean.
"""

import threading

from repro.engines.base import AnswerEngine


class MemoEngine(AnswerEngine):
    def __init__(self):
        super().__init__()
        self._memo_cache = {}  # initialization: fine
        self._memo_hits = 0
        self._memo_lock = threading.Lock()

    def _answer_uncached(self, query):
        key = query.id
        self._memo_hits += 1  # expect[CONC002]
        self._memo_cache[key] = query  # expect[CONC002]
        self._memo_cache.pop(key, None)  # expect[CONC002]
        with self._memo_lock:
            self._memo_hits += 1  # guarded: fine
            self._memo_cache[key] = query
            self._memo_cache.pop(key, None)
        return query

    def answer_all(self, queries):
        cache = getattr(self, "_memo_cache", None)  # alias rebind: fine
        if cache is None:
            return [self._answer_uncached(q) for q in queries]
        with self._memo_lock:
            cache["warm"] = True  # guarded alias write: fine
        cache["cold"] = True  # expect[CONC002]
        return [self._answer_uncached(q) for q in queries]
