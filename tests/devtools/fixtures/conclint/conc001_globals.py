"""CONC001 fixture: module-global mutation from worker-reachable code.

``fan_out`` submits the leading underscore functions to a pool, which
makes them worker-reachable entry points; every marked line mutates
module-level state from one of them.  The unmarked cases — local
mutation inside a worker, and parent-side bookkeeping — must stay
clean.
"""

_SEEN = {}
_TOTAL = 0
_MODE = "idle"


def _record(item):
    _SEEN[item] = True  # expect[CONC001]
    _SEEN.update({item: True})  # expect[CONC001]
    return item


def _bump():
    global _TOTAL
    _TOTAL += 1  # expect[CONC001]


def _rebind_mode(value):
    global _MODE
    _MODE = value  # expect[CONC001]


def _clean_local(item):
    seen = {}
    seen[item] = True  # local dict: fine
    total = 0
    total += 1  # local counter: fine
    return seen, total


def parent_side_bookkeeping(item):
    # Not worker-reachable; parent-side mutation is not CONC001's concern.
    _SEEN[item] = True


def fan_out(pool, items):
    futures = [pool.submit(_record, item) for item in items]
    futures += [pool.submit(_bump) for __ in items]
    futures.append(pool.submit(_rebind_mode, "busy"))
    futures.append(pool.submit(_clean_local, "x"))
    return futures
