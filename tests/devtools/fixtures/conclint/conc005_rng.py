"""CONC005 fixture: shared RNG streams crossing the worker boundary.

Draws from a module-level or instance-shared ``random.Random`` inside
worker-reachable code are marked; deriving a fresh per-task stream with
``derive_rng`` is the clean pattern.
"""

import random

from repro.llm.rng import derive_rng

_SHUFFLER = random.Random(1234)


class Sampler:
    def __init__(self):
        self._draw_rng = random.Random(7)

    def pick(self, items):
        return self._draw_rng.choice(items)  # expect[CONC005]

    def pick_derived(self, task_id, items):
        rng = derive_rng("pick", task_id)
        return rng.choice(items)  # per-task stream: fine


def _shuffle_chunk(chunk):
    _SHUFFLER.shuffle(chunk)  # expect[CONC005]
    return chunk


def _derived_chunk(task_id, chunk):
    rng = derive_rng("chunk", task_id)
    rng.shuffle(chunk)  # per-task stream: fine
    return chunk


def fan_out(pool, sampler, chunks):
    futures = [pool.submit(_shuffle_chunk, c) for c in chunks]
    futures += [pool.submit(_derived_chunk, i, c) for i, c in enumerate(chunks)]
    futures += [pool.submit(sampler.pick, c) for c in chunks]
    futures += [pool.submit(sampler.pick_derived, i, c) for i, c in enumerate(chunks)]
    return futures
