"""CONC004 fixture: fork-unsafe resources crossing the worker boundary.

Module-level handles/locks referenced by worker-reachable code, and
local handles captured by submitted lambdas or closures, are marked.
Opening the file *inside* the task is the clean pattern.
"""

import threading

_EVENT_LOG = open("events.log", "a")
_STATE_LOCK = threading.Lock()


def _append_event(event):
    _EVENT_LOG.write(event)  # expect[CONC004]
    with _STATE_LOCK:  # expect[CONC004]
        return event


def _clean_task(path, event):
    with open(path, "a") as handle:  # opened inside the task: fine
        handle.write(event)


def fan_out(pool, events):
    futures = [pool.submit(_append_event, e) for e in events]
    futures += [pool.submit(_clean_task, "out.log", e) for e in events]
    return futures


def submit_lambda_capture(pool, path):
    handle = open(path, "a")
    return pool.submit(lambda event: handle.write(event), "x")  # expect[CONC004]


def submit_closure_capture(pool, path):
    handle = open(path, "a")

    def _task(event):  # expect[CONC004]
        handle.write(event)

    return pool.submit(_task, "x")
