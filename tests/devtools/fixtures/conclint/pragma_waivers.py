"""Pragma semantics: conclint pragmas waive, detlint pragmas do not."""

_REGISTRY = {}


def _tracked(item):
    _REGISTRY[item] = True  # conclint: ignore[CONC001] -- test-only registry
    return item


def _still_flagged(item):
    _REGISTRY[item] = True  # detlint: ignore[CONC001] -- wrong tool, still blocks
    return item


def fan_out(pool, items):
    futures = [pool.submit(_tracked, i) for i in items]
    futures += [pool.submit(_still_flagged, i) for i in items]
    return futures
