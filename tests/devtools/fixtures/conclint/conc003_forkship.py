"""CONC003 fixture: parent-side mutation after fork-shipping an object.

``run_diverging`` assigns ``world`` to a handshake global and then
keeps mutating it while the pool is live — the forked workers never see
those writes.  Mutations *before* the ship, and mutations of unrelated
objects, must stay clean.
"""

from concurrent.futures import ProcessPoolExecutor

_SHIPPED_WORLD = None


def _chunk_task(chunk):
    return list(chunk)


def run_diverging(world, chunks):
    global _SHIPPED_WORLD
    world.tags["phase"] = "warming"  # before the ship: fine
    _SHIPPED_WORLD = world
    pool = ProcessPoolExecutor(max_workers=2)
    futures = [pool.submit(_chunk_task, chunk) for chunk in chunks]
    world.tags["phase"] = "running"  # expect[CONC003]
    world.pages.append("late")  # expect[CONC003]
    other = {"phase": "running"}
    other["phase"] = "done"  # unrelated object: fine
    pool.shutdown()
    _SHIPPED_WORLD = None
    return futures
