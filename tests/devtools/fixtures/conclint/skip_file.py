# conclint: skip-file -- scratch module exercising the file-scope escape
"""Violations below must not be reported: the whole file is skipped."""

_SEEN = {}


def _record(item):
    _SEEN[item] = True
    return item


def fan_out(pool, items):
    return [pool.submit(_record, i) for i in items]
