"""DET003 fixture: set iteration order leaking into ordered output."""

items = ["b", "a", "c", "a"]
other = {"c", "d"}

# --- positives -------------------------------------------------------
for item in set(items):  # expect[DET003]
    print(item)

for item in {"x", "y"}:  # expect[DET003]
    print(item)

joined = ",".join(set(items))  # expect[DET003]
as_list = list(frozenset(items))  # expect[DET003]
as_tuple = tuple({"x", "y"})  # expect[DET003]
listed_comp = [x for x in set(items)]  # expect[DET003]
gen_total = "/".join(x for x in {"p", "q"})  # expect[DET003]
union_loop = list(set(items) | other)  # expect[DET003]
method_union = list(set(items).union(other))  # expect[DET003]
numbered = list(enumerate({"x", "y"}))  # expect[DET003]

# --- negatives -------------------------------------------------------
for item in sorted(set(items)):
    print(item)

ordered = sorted({"x", "y"})
total = sum({1, 2, 3})  # order-insensitive aggregate
size = len(set(items))
biggest = max({3, 1, 2})
reset = {x for x in set(items)}  # set -> set keeps it unordered, no leak
keyed = {x: 1 for x in set(items)}  # dict comp rebuilds; flagged at use, not build
deduped = list(dict.fromkeys(items))  # insertion-ordered dedup, deterministic
for key in {"a": 1, "b": 2}:  # dict iteration is insertion-ordered (3.7+)
    print(key)
