"""DET001 fixture: ad-hoc RNG use vs. the derive_seed discipline."""
import random
import random as _aliased
from random import Random
from random import Random as RenamedRandom

from repro.llm.rng import derive_rng, derive_seed

seed = 7

# --- positives -------------------------------------------------------
value = random.random()  # expect[DET001]
random.shuffle([1, 2, 3])  # expect[DET001]
pick = random.choice("abc")  # expect[DET001]
rng_plain = random.Random(seed)  # expect[DET001]
rng_repr = random.Random((seed, "q", 3).__repr__())  # expect[DET001]
rng_aliased = _aliased.Random(seed)  # expect[DET001]
rng_from = Random(seed)  # expect[DET001]
rng_renamed = RenamedRandom(seed)  # expect[DET001]
rng_sys = random.SystemRandom()  # expect[DET001]
rng_kw = random.Random(x=seed)  # expect[DET001]

# --- negatives -------------------------------------------------------
good_rng = derive_rng("study", seed, "query")
good_seeded = random.Random(derive_seed("study", seed))
good_from = Random(derive_seed("study", seed))
instance_draw = good_rng.random()  # method on an instance, not the module
annotated: random.Random = good_rng
