"""LOCK004 fixture: bare ``.acquire()`` without a guaranteed release.

An exception between the acquire and the release leaks the lock (or a
semaphore permit) forever.  Guarded shapes — try/finally and the
handoff pattern (release in an ``except`` handler, success path hands
ownership downstream) — must stay clean.
"""

import threading


class Handoff:
    def __init__(self):
        self._lock = threading.Lock()
        self._gate = threading.Semaphore(2)
        self._n = 0

    def bare(self):
        self._lock.acquire()  # expect[LOCK004]
        self._n += 1
        self._lock.release()

    def bare_semaphore(self):
        self._gate.acquire()  # expect[LOCK004]
        self._n += 1
        self._gate.release()

    def guarded_finally(self):
        self._lock.acquire()
        try:
            self._n += 1
        finally:
            self._lock.release()

    def guarded_handoff(self):
        self._gate.acquire()
        try:
            self._ship()
        except Exception:
            self._gate.release()
            raise

    def _ship(self):
        self._n += 1

    def with_block(self):
        with self._lock:
            self._n += 1
