"""LOCK003 fixture: re-entrant acquisition of non-reentrant sites.

A direct nested re-entry and an interprocedural one (holding the lock
across a call to a method that takes it again).  Re-entering an RLock
is that primitive's contract and must stay clean.
"""

import threading


class DirectCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self._rlock = threading.RLock()

    def double_enter(self):
        with self._lock:
            with self._lock:  # expect[LOCK003]
                return "deadlocked"

    def rlock_reenter(self):
        with self._rlock:
            with self._rlock:  # reentrant by contract: fine
                return "fine"


class IndirectCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self._n = 0

    def bump(self):
        with self._lock:
            self._log()  # expect[LOCK003]

    def _log(self):
        with self._lock:
            self._n += 1
