"""Pragma namespacing: a ``locklint: ignore`` waives, other tools' don't."""

import threading
import time


class Sleeper:
    def __init__(self):
        self._lock = threading.Lock()

    def waived(self):
        with self._lock:
            time.sleep(0.1)  # locklint: ignore[LOCK002] -- fixture: bounded pause under lock

    def wrong_tool(self):
        with self._lock:
            time.sleep(0.1)  # detlint: ignore[LOCK002] -- wrong namespace, must not waive
