"""LOCK005 fixture: ``Condition.wait`` outside a predicate loop.

A naked ``wait()`` trusts that one wakeup means the condition holds;
spurious wakeups and stolen signals break that.  The canonical
``while not predicate: wait()`` shape must stay clean, as must
``notify`` calls.
"""

import threading


class Mailbox:
    def __init__(self):
        self._cond = threading.Condition()
        self._items = []

    def naked_wait(self):
        with self._cond:
            self._cond.wait()  # expect[LOCK005]
            return self._items.pop()

    def predicate_wait(self):
        with self._cond:
            while not self._items:
                self._cond.wait()  # predicate loop: fine
            return self._items.pop()

    def put(self, item):
        with self._cond:
            self._items.append(item)
            self._cond.notify()
