"""A two-lock inversion built on :func:`repro.lockorder.witness_lock`.

This fixture is checked twice, by design:

* **statically** — locklint flags the inversion as LOCK001
  (``tests/devtools/test_locklint_rules.py``);
* **dynamically** — with ``REPRO_LOCK_WITNESS=1`` the same inversion,
  actually executed, raises :class:`repro.lockorder.LockOrderViolation`
  instead of deadlocking (``tests/test_lockwitness.py``).

The static and runtime halves of the lock-discipline contract must
agree on this module or one of them is broken.
"""

from repro.lockorder import witness_lock


class InvertedPair:
    def __init__(self):
        self._first = witness_lock("InvertedPair._first")
        self._second = witness_lock("InvertedPair._second")

    def forward(self):
        with self._first:
            with self._second:  # expect[LOCK001]
                return "forward"

    def backward(self):
        with self._second:
            with self._first:
                return "backward"
