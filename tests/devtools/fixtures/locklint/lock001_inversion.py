"""LOCK001 fixture: two lock pairs acquired in both orders.

``Pair._a``/``Pair._b`` invert directly (nested ``with`` blocks in
opposite orders); ``Pair._c``/``Pair._d`` invert interprocedurally —
``caller_cd`` holds ``_c`` across a call whose callee acquires ``_d``,
while ``backward_cd`` nests the locks the other way round.  Each pair
is reported exactly once, anchored at the edge that sorts first.
"""

import threading


class Pair:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()
        self._c = threading.Lock()
        self._d = threading.Lock()

    def forward(self):
        with self._a:
            with self._b:  # expect[LOCK001]
                return "a then b"

    def backward(self):
        with self._b:
            with self._a:
                return "b then a"

    def caller_cd(self):
        with self._c:
            return self._grab_d()  # expect[LOCK001]

    def _grab_d(self):
        with self._d:
            return "d"

    def backward_cd(self):
        with self._d:
            with self._c:
                return "d then c"

    def repeat_forward(self):
        # Same order as forward(): no new cycle, no second finding.
        with self._a:
            with self._b:
                return "still a then b"
