"""LOCK002 fixture: blocking operations reachable while a lock is held.

Direct hazards (sleep, ``Event.wait``, ``Queue.get``, builtin ``open``)
and an interprocedural one (a call whose callee sleeps).  The same
blocking operations *outside* the lock must stay clean — LOCK002 is
about the held set, not the operation.
"""

import queue
import threading
import time


class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self._ready = threading.Event()
        self._jobs = queue.Queue()

    def direct_sleep(self):
        with self._lock:
            time.sleep(0.1)  # expect[LOCK002]

    def event_wait(self):
        with self._lock:
            self._ready.wait()  # expect[LOCK002]

    def queue_get(self):
        with self._lock:
            return self._jobs.get()  # expect[LOCK002]

    def file_io(self):
        with self._lock:
            with open("state.json") as handle:  # expect[LOCK002]
                return handle.read()

    def indirect(self):
        with self._lock:
            self._fetch()  # expect[LOCK002]

    def _fetch(self):
        time.sleep(0.2)  # not held here: fine

    def outside(self):
        time.sleep(0.3)  # no lock held: fine
        self._ready.wait()  # fine
        with self._lock:
            pass
        return self._jobs.get()  # fine
