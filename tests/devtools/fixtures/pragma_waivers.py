"""Pragma fixture: every finding here is waived inline."""
import os
import random
import time

seed = 3

rng = random.Random(seed)  # detlint: ignore[DET001] -- fixture waiver
started = time.time()  # detlint: ignore[DET002] -- fixture waiver
flag = os.getenv("FLAG")  # detlint: ignore -- bare pragma waives every rule
both = random.Random(hash("x"))  # detlint: ignore[DET001,DET004] -- two codes
spanning = random.Random(
    seed
)  # detlint: ignore[DET001] -- pragma on the statement's last line
