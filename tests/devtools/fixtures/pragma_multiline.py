"""Pragmas anchored to the first line of a multi-line statement.

Each violation sits on a *continuation* line of a statement whose first
line carries the waiver; pragma lookup must honour the statement anchor,
not just the violating node's own physical lines.
"""

import random
import time

total = sum(  # detlint: ignore[DET001] -- waiver on the statement's first line
    random.random()
    for _ in range(3)
)

timestamp = max(  # detlint: ignore[DET002] -- waiver on the statement's first line
    0.0,
    time.time(),
)
