"""Pragma fixture: waivers that must NOT suppress the finding."""
import random

seed = 3

wrong_code = random.Random(seed)  # detlint: ignore[DET002] -- wrong rule  # expect[DET001]

# detlint: ignore[DET001] -- comment on the line above does not waive
next_line = random.Random(seed)  # expect[DET001]

in_string = random.Random(seed)  # expect[DET001]
TEXT = "this string mentions # detlint: ignore[DET001] but is not a comment"
