# detlint: skip-file -- generated-file escape hatch; nothing here counts
import random

anything = random.random()
clockish = __import__("time").time()
