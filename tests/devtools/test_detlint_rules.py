"""detlint rule tests, driven by the fixture files.

Each fixture marks every line that must produce a finding with an
``# expect[DETnnn]`` comment; the harness asserts the linter produces
*exactly* the marked findings — so both false negatives (a positive
case the rule misses) and false positives (a negative case it flags)
fail the same assertion.
"""

import re
from pathlib import Path

import pytest

from repro.devtools.detlint import lint_source

FIXTURES = Path(__file__).parent / "fixtures"

_EXPECT_RE = re.compile(r"#\s*expect\[([A-Z0-9,]+)\]")


def expected_findings(source: str) -> set[tuple[int, str]]:
    expected = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match:
            for code in match.group(1).split(","):
                expected.add((lineno, code))
    return expected


def lint_fixture(name: str):
    path = FIXTURES / name
    source = path.read_text(encoding="utf-8")
    return source, lint_source(source, path)


RULE_FIXTURES = [
    ("DET001", "det001_rng.py"),
    ("DET002", "det002_clock.py"),
    ("DET003", "det003_setorder.py"),
    ("DET004", "det004_hash.py"),
    ("DET005", "det005_fsorder.py"),
    ("DET006", "det006_environ.py"),
]


class TestRuleFixtures:
    @pytest.mark.parametrize("code,fixture", RULE_FIXTURES)
    def test_exact_findings(self, code, fixture):
        source, findings = lint_fixture(fixture)
        expected = expected_findings(source)
        assert expected, f"fixture {fixture} has no expect markers"
        actual = {(f.line, f.rule) for f in findings if not f.waived}
        assert actual == expected

    @pytest.mark.parametrize("code,fixture", RULE_FIXTURES)
    def test_rule_has_failing_case(self, code, fixture):
        """Acceptance: every rule is demonstrated by a failing fixture."""
        __, findings = lint_fixture(fixture)
        assert any(f.rule == code and f.blocking for f in findings)


class TestPragmas:
    def test_all_findings_waived(self):
        __, findings = lint_fixture("pragma_waivers.py")
        assert findings, "waiver fixture must still produce findings"
        assert all(f.waived for f in findings)
        assert not any(f.blocking for f in findings)
        # The two-code pragma waived two distinct rules on one line.
        waived_rules = {f.rule for f in findings}
        assert {"DET001", "DET002", "DET004", "DET006"} <= waived_rules

    def test_non_matching_pragmas_do_not_waive(self):
        source, findings = lint_fixture("pragma_not_matching.py")
        expected = expected_findings(source)
        actual = {(f.line, f.rule) for f in findings if f.blocking}
        assert actual == expected

    def test_pragma_on_first_line_of_multiline_statement_waives(self):
        # The violations sit on continuation lines; the pragmas sit on
        # the statements' first lines.  Both must anchor the waiver.
        __, findings = lint_fixture("pragma_multiline.py")
        assert findings, "multi-line fixture must still produce findings"
        assert {f.rule for f in findings} == {"DET001", "DET002"}
        assert all(f.waived for f in findings), [
            (f.line, f.stmt_line, f.rule) for f in findings if not f.waived
        ]
        # The statement anchor is distinct from the reported line.
        assert all(f.stmt_line < f.line for f in findings)

    def test_skip_file(self):
        __, findings = lint_fixture("skip_file.py")
        assert findings == []


class TestModuleExemptions:
    def test_rng_module_is_exempt_from_det001(self, tmp_path):
        target = tmp_path / "repro" / "llm" / "rng.py"
        target.parent.mkdir(parents=True)
        source = "import random\nrng = random.Random(0)\n"
        assert lint_source(source, target) == []
        # The same source anywhere else is a finding.
        elsewhere = tmp_path / "repro" / "llm" / "other.py"
        assert [f.rule for f in lint_source(source, elsewhere)] == ["DET001"]

    def test_config_module_is_exempt_from_det006(self, tmp_path):
        target = tmp_path / "repro" / "core" / "config.py"
        target.parent.mkdir(parents=True)
        source = 'import os\nraw = os.environ.get("REPRO_WORKERS", "")\n'
        assert lint_source(source, target) == []
        elsewhere = tmp_path / "repro" / "core" / "runner.py"
        assert [f.rule for f in lint_source(source, elsewhere)] == ["DET006"]

    def test_unparseable_file_reports_det000(self):
        findings = lint_source("def broken(:\n", "bad.py")
        assert [f.rule for f in findings] == ["DET000"]
        assert findings[0].blocking


class TestFindingModel:
    def test_findings_sorted_and_keyed(self):
        __, findings = lint_fixture("det001_rng.py")
        assert findings == sorted(findings)
        first = findings[0]
        assert first.key().endswith(f"::{first.rule}::{first.snippet}")
        assert str(first.line) in first.location()

    def test_to_dict_roundtrips_fields(self):
        __, findings = lint_fixture("det004_hash.py")
        payload = findings[0].to_dict()
        assert payload["rule"] == "DET004"
        assert payload["path"].endswith("det004_hash.py")
        assert set(payload) == {
            "path", "line", "col", "rule", "message",
            "snippet", "waived", "baselined",
        }
