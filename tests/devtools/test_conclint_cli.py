"""conclint baseline, CLI and dump behaviour — plus the meta-test that
holds ``src/repro`` itself to the parallel sharing contract."""

import json
from pathlib import Path

from repro.__main__ import main
from repro.devtools.conclint import analyze_paths
from repro.devtools.conclint.rules import conc_rule_table
from repro.devtools.common.baseline import write_baseline

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures" / "conclint"

BAD_SOURCE = """\
_STATE = {}


def _worker(item):
    _STATE[item] = True
    return item


def drive(pool, items):
    return [pool.submit(_worker, item) for item in items]
"""


def write_bad_module(tmp_path: Path) -> Path:
    module = tmp_path / "mod.py"
    module.write_text(BAD_SOURCE, encoding="utf-8")
    return module


class TestBaseline:
    def test_baselined_findings_stop_blocking(self, tmp_path):
        module = write_bad_module(tmp_path)
        baseline = tmp_path / "baseline.json"

        before = analyze_paths([module], baseline=baseline)
        assert len(before.blocking) == 1

        write_baseline(before.findings, baseline)
        after = analyze_paths([module], baseline=baseline)
        assert after.exit_code == 0
        assert len(after.baselined) == 1
        assert after.blocking == []

    def test_new_findings_still_fail_beyond_allowance(self, tmp_path):
        module = write_bad_module(tmp_path)
        baseline = tmp_path / "baseline.json"
        write_baseline(
            analyze_paths([module], baseline=baseline).findings, baseline
        )

        # A second identical write exceeds the grandfathered count=1.
        module.write_text(
            BAD_SOURCE.replace(
                "    return item\n",
                "    _STATE[item] = True\n    return item\n",
                1,
            ),
            encoding="utf-8",
        )
        report = analyze_paths([module], baseline=baseline)
        assert len(report.baselined) == 1
        assert len(report.blocking) == 1


class TestCli:
    def test_fixture_fails_with_text_report(self, capsys):
        code = main(
            ["conclint", str(FIXTURES / "conc001_globals.py"), "--no-baseline"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "CONC001" in out
        assert "conclint:" in out

    def test_json_format(self, capsys):
        code = main(
            [
                "conclint", str(FIXTURES / "conc005_rng.py"),
                "--no-baseline", "--format", "json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["blocking"] > 0
        assert {f["rule"] for f in payload["findings"]} == {"CONC005"}

    def test_update_baseline_roundtrip(self, tmp_path, capsys):
        module = write_bad_module(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(
            ["conclint", str(module), "--baseline", str(baseline),
             "--update-baseline"]
        ) == 0
        assert main(
            ["conclint", str(module), "--baseline", str(baseline)]
        ) == 0
        assert main(
            ["conclint", str(module), "--baseline", str(baseline),
             "--no-baseline"]
        ) == 1
        entries = json.loads(baseline.read_text())["entries"]
        assert entries and all(e["reason"] for e in entries)

    def test_list_rules(self, capsys):
        assert main(["conclint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code, __, __ in conc_rule_table():
            assert code in out

    def test_dump_callgraph_is_deterministic_json(self, capsys):
        args = [
            "conclint", str(FIXTURES / "conc001_globals.py"),
            "--no-baseline", "--dump-callgraph",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert set(payload) == {
            "modules", "functions", "edges", "entry_points", "reachable",
        }
        assert payload["entry_points"]


class TestRepositoryIsClean:
    """The meta-test: the runner's sharing contract holds in src/repro."""

    def test_src_repro_has_zero_nonbaselined_findings(self):
        report = analyze_paths(
            [REPO_ROOT / "src" / "repro"],
            baseline=REPO_ROOT / ".conclint-baseline.json",
        )
        assert report.files_checked > 50
        offenders = [f"{f.location()} {f.rule}" for f in report.blocking]
        assert offenders == []

    def test_checked_in_baseline_is_empty_or_documented(self):
        data = json.loads(
            (REPO_ROOT / ".conclint-baseline.json").read_text(encoding="utf-8")
        )
        for entry in data["entries"]:
            assert entry["reason"]
            assert "TODO" not in entry["reason"]

    def test_engine_answer_hierarchy_is_worker_reachable(self):
        # The reachability premise behind the whole analysis: every
        # engine's answer path must be in the worker-reachable set.
        report = analyze_paths([REPO_ROOT / "src" / "repro"], baseline=None)
        reachable = report.graph.reachable
        assert "repro.core.runner._answer_chunk" in reachable
        assert "repro.engines.base.AnswerEngine.answer" in reachable
        assert (
            "repro.engines.generative.GenerativeEngine._answer_uncached"
            in reachable
        )

    def test_all_five_rules_registered(self):
        codes = [code for code, __, __ in conc_rule_table()]
        assert codes == [f"CONC00{i}" for i in range(1, 6)]
