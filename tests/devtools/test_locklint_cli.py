"""locklint baseline, CLI and lock-graph dump behaviour."""

import json
from pathlib import Path

from repro.__main__ import main
from repro.devtools.locklint import analyze_paths
from repro.devtools.locklint.rules import lock_rule_table
from repro.devtools.common.baseline import write_baseline

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures" / "locklint"

BAD_SOURCE = """\
import threading
import time


class Holder:
    def __init__(self):
        self._lock = threading.Lock()

    def nap(self):
        with self._lock:
            time.sleep(1.0)
"""


def write_bad_module(tmp_path: Path) -> Path:
    module = tmp_path / "mod.py"
    module.write_text(BAD_SOURCE, encoding="utf-8")
    return module


class TestBaseline:
    def test_baselined_findings_stop_blocking(self, tmp_path):
        module = write_bad_module(tmp_path)
        baseline = tmp_path / "baseline.json"

        before = analyze_paths([module], baseline=baseline)
        assert len(before.blocking) == 1

        write_baseline(before.findings, baseline)
        after = analyze_paths([module], baseline=baseline)
        assert after.exit_code == 0
        assert len(after.baselined) == 1
        assert after.blocking == []


class TestCli:
    def test_fixture_fails_with_text_report(self, capsys):
        code = main(
            ["locklint", str(FIXTURES / "lock001_inversion.py"), "--no-baseline"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "LOCK001" in out
        assert "locklint:" in out

    def test_json_format(self, capsys):
        code = main(
            [
                "locklint", str(FIXTURES / "lock005_wait.py"),
                "--no-baseline", "--format", "json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["blocking"] > 0
        assert {f["rule"] for f in payload["findings"]} == {"LOCK005"}

    def test_update_baseline_roundtrip(self, tmp_path, capsys):
        module = write_bad_module(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(
            ["locklint", str(module), "--baseline", str(baseline),
             "--update-baseline"]
        ) == 0
        assert main(
            ["locklint", str(module), "--baseline", str(baseline)]
        ) == 0
        assert main(
            ["locklint", str(module), "--baseline", str(baseline),
             "--no-baseline"]
        ) == 1
        entries = json.loads(baseline.read_text())["entries"]
        assert entries and all(e["reason"] for e in entries)

    def test_list_rules(self, capsys):
        assert main(["locklint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code, __, __ in lock_rule_table():
            assert code in out

    def test_dump_lockgraph_is_deterministic_json(self, capsys):
        args = [
            "locklint", str(REPO_ROOT / "src" / "repro"),
            "--no-baseline", "--dump-lockgraph",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert set(payload) == {"sites", "edges", "hierarchy"}
        # The one real held-across edge in the serving/resilience stack:
        # CircuitBreaker.allow() reads its injected clock under its lock.
        assert {
            (e["outer"], e["inner"]) for e in payload["edges"]
        } == {("CircuitBreaker._lock", "SimClock._lock")}
        site_names = {s["name"] for s in payload["sites"]}
        assert "ServeStats._lock" in site_names
        assert "SingleFlight._lock" in site_names

    def test_dump_on_fixture_shows_cycle_in_edges(self, capsys):
        assert main(
            ["locklint", str(FIXTURES / "lock001_inversion.py"),
             "--no-baseline", "--dump-lockgraph"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        pairs = {(e["outer"], e["inner"]) for e in payload["edges"]}
        assert ("Pair._a", "Pair._b") in pairs
        assert ("Pair._b", "Pair._a") in pairs
