"""Call-graph construction and worker-reachability, on synthetic modules.

These tests feed small hand-written module sets straight into
:class:`ProjectIndex` (no filesystem), so each asserts one structural
property of the graph: submission entries, engine-hierarchy entries,
class-family dispatch, the unresolved-receiver fallback, and the
deterministic dump.
"""

from repro.devtools.conclint import ProjectIndex, build_callgraph

ENGINE_MODULE = """\
from repro.engines.base import AnswerEngine


def shared_helper(query):
    return query


class LocalEngine(AnswerEngine):
    def _answer_uncached(self, query):
        return shared_helper(query)
"""

SUBMIT_MODULE = """\
def _task(item):
    return _leaf(item)


def _leaf(item):
    return item


def untouched(item):
    return item


def drive(pool, items):
    return [pool.submit(_task, item) for item in items]
"""


def build(*modules: tuple[str, str]):
    index = ProjectIndex()
    for source, path in modules:
        index.add_module(source, path)
    return build_callgraph(index)


class TestEntryPoints:
    def test_submitted_function_is_an_entry(self):
        graph = build((SUBMIT_MODULE, "submitters.py"))
        assert "submitters._task" in graph.entries
        assert "submitted to a pool" in graph.entries["submitters._task"]

    def test_engine_methods_are_entries(self):
        graph = build((ENGINE_MODULE, "localengine.py"))
        entry = "localengine.LocalEngine._answer_uncached"
        assert entry in graph.entries
        assert "engine _answer_uncached implementation" in graph.entries[entry]

    def test_configured_runner_entry(self):
        source = "def _answer_chunk(name, queries):\n    return []\n"
        graph = build((source, "src/repro/core/runner.py"))
        assert (
            graph.entries["repro.core.runner._answer_chunk"]
            == "configured pool entry point"
        )


class TestReachability:
    def test_transitive_with_provenance(self):
        graph = build((SUBMIT_MODULE, "submitters.py"))
        # _task -> _leaf is reachable; the recorded origin is the entry.
        assert graph.is_worker_reachable("submitters._leaf")
        assert graph.reached_via("submitters._leaf") == "submitters._task"
        # The parent-side driver and an uncalled function are not.
        assert not graph.is_worker_reachable("submitters.drive")
        assert not graph.is_worker_reachable("submitters.untouched")

    def test_engine_entry_reaches_module_helpers(self):
        graph = build((ENGINE_MODULE, "localengine.py"))
        assert graph.is_worker_reachable("localengine.shared_helper")

    def test_self_dispatch_covers_the_class_family(self):
        base = (
            "class Base:\n"
            "    def run(self):\n"
            "        return self.step()\n"
            "    def step(self):\n"
            "        return 0\n"
        )
        sub = (
            "from base import Base\n"
            "class Sub(Base):\n"
            "    def step(self):\n"
            "        return 1\n"
        )
        driver = (
            "def drive(pool, obj):\n"
            "    return pool.submit(obj.run)\n"
        )
        graph = build((base, "base.py"), (sub, "sub.py"), (driver, "driver.py"))
        # obj.run resolves by name (CHA fallback) to Base.run; from there
        # self.step() dispatches over the whole family, Sub included.
        assert graph.is_worker_reachable("base.Base.run")
        assert graph.is_worker_reachable("base.Base.step")
        assert graph.is_worker_reachable("sub.Sub.step")

    def test_unresolved_receiver_links_by_method_name(self):
        holder = (
            "class Holder:\n"
            "    def work(self):\n"
            "        return 1\n"
        )
        driver = (
            "def drive(pool, registry, key):\n"
            "    return pool.submit(registry[key].work)\n"
        )
        graph = build((holder, "holder.py"), (driver, "driver.py"))
        assert graph.is_worker_reachable("holder.Holder.work")


class TestDeterministicDump:
    def test_insertion_order_does_not_change_the_dump(self):
        modules = [
            (SUBMIT_MODULE, "submitters.py"),
            (ENGINE_MODULE, "localengine.py"),
        ]
        forward = build(*modules)
        backward = build(*reversed(modules))
        assert forward.to_json() == backward.to_json()

    def test_dump_shape(self):
        payload = build((SUBMIT_MODULE, "submitters.py")).to_dict()
        assert set(payload) == {
            "modules", "functions", "edges", "entry_points", "reachable",
        }
        assert payload["modules"] == ["submitters"]
        assert ["submitters._task", "submitters._leaf"] in payload["edges"]
