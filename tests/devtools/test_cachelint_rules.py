"""cachelint rule tests, driven by whole-module fixture files.

Same harness contract as the detlint/conclint/locklint fixture tests:
every line that must produce a finding carries an ``# expect[CACHEnnn]``
marker and the analyzer must produce *exactly* the marked findings.
The unit of analysis is the whole module — epoch coupling and the
clear-caches walk are interprocedural facts, so each fixture builds its
own cache graph.
"""

import json
import re
from pathlib import Path

import pytest

from repro.devtools.cachelint import (
    analyze_paths,
    build_cache_sites,
    cache_rule_table,
)
from repro.devtools.cachelint.rules import _clear_walk, _reachable_classes
from repro.devtools.cachelint.runner import EXEMPT_MODULES
from repro.devtools.cachelint.cachegraph import build_cachegraph
from repro.devtools.conclint.symbols import ProjectIndex

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures" / "cachelint"

_EXPECT_RE = re.compile(r"#\s*expect\[([A-Z0-9,]+)\]")


def expected_findings(source: str) -> set[tuple[int, str]]:
    expected = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match:
            for code in match.group(1).split(","):
                expected.add((lineno, code))
    return expected


def analyze_fixture(name: str):
    path = FIXTURES / name
    source = path.read_text(encoding="utf-8")
    return source, analyze_paths([path]).findings


RULE_FIXTURES = [
    ("CACHE001", "cache001_unregistered.py"),
    ("CACHE002", "cache002_unkeyed.py"),
    ("CACHE003", "cache003_nobump.py"),
    ("CACHE004", "cache004_aliasing.py"),
    ("CACHE005", "cache005_contract.py"),
]


class TestRuleFixtures:
    @pytest.mark.parametrize("code,fixture", RULE_FIXTURES)
    def test_exact_findings(self, code, fixture):
        source, findings = analyze_fixture(fixture)
        expected = expected_findings(source)
        assert expected, f"fixture {fixture} has no expect markers"
        actual = {(f.line, f.rule) for f in findings if not f.waived}
        assert actual == expected

    @pytest.mark.parametrize("code,fixture", RULE_FIXTURES)
    def test_rule_has_failing_case(self, code, fixture):
        """Acceptance: every rule is demonstrated by a failing fixture."""
        __, findings = analyze_fixture(fixture)
        assert any(f.rule == code and f.blocking for f in findings)


class TestStalenessFixture:
    """The static half of the staleness contract; the runtime half (the
    witness catching the same module live) is
    ``tests/serve/test_cachewitness.py``."""

    def test_witness_built_memo_is_flagged(self):
        source, findings = analyze_fixture("staleness_live.py")
        expected = expected_findings(source)
        actual = {(f.line, f.rule) for f in findings if not f.waived}
        assert actual == expected
        (finding,) = [f for f in findings if f.rule == "CACHE002"]
        assert "SummaryBoard._summary_memo" in finding.message
        assert "epoch" in finding.message

    def test_fixture_sites_and_epoch_tables_resolve(self):
        index = ProjectIndex.build(
            [FIXTURES / "staleness_live.py"], tool="cachelint"
        )
        table = build_cache_sites(index)
        assert "SummaryBoard._summary_memo" in table.sites
        bearing = [c for c in table.epoch_bearing if c.endswith("TinyTable")]
        assert bearing, "TinyTable must be epoch-bearing via its property"
        assert table.epoch_bearing[bearing[0]] == ("_epoch",)
        coupled = [c for c in table.epoch_coupled if c.endswith("SummaryBoard")]
        assert coupled, "SummaryBoard couples through its typed table attr"


class TestClearWalk:
    """CACHE001's name-based dispatch: the only place cachelint follows
    untyped edges, because a missed clear edge would invent findings."""

    def test_walk_reaches_sites_through_named_reset(self):
        index = ProjectIndex.build(
            [FIXTURES / "cache001_unregistered.py"], tool="cachelint"
        )
        graph = build_cachegraph(index)
        (root,) = [
            info.methods["clear_caches"]
            for info in index.classes.values()
            if "clear_caches" in info.methods
        ]
        cleared = _clear_walk(graph, root)
        assert "App._results_cache" in cleared
        assert "App.pages" in cleared  # typed clear on the primitive holder
        assert "Registry._entries_cache" in cleared  # via reset() by name
        assert "App._orphan_memo" not in cleared

    def test_reachability_crosses_typed_attrs(self):
        index = ProjectIndex.build(
            [FIXTURES / "cache001_unregistered.py"], tool="cachelint"
        )
        graph = build_cachegraph(index)
        (app,) = [c for c in index.classes if c.endswith(".App")]
        reached = {c.rsplit(".", 1)[-1] for c in _reachable_classes(graph, app)}
        assert {"App", "Registry", "SnipCache"} <= reached


class TestPragmas:
    def test_cachelint_pragma_waives_but_detlint_pragma_does_not(self):
        source, findings = analyze_fixture("pragma_waivers.py")
        assert {f.rule for f in findings} == {"CACHE002"}
        waived = [f for f in findings if f.waived]
        blocking = [f for f in findings if f.blocking]
        assert len(waived) == 1 and len(blocking) == 1
        # The surviving finding is the one under the wrong tool's pragma.
        assert "detlint" in source.splitlines()[blocking[0].line - 1]


class TestRepositoryIsClean:
    """The meta-tests: src/repro holds its own cache discipline."""

    def test_src_repro_has_zero_nonbaselined_findings(self):
        report = analyze_paths(
            [REPO_ROOT / "src" / "repro"],
            baseline=REPO_ROOT / ".cachelint-baseline.json",
        )
        assert report.files_checked > 50
        offenders = [f"{f.location()} {f.rule}" for f in report.blocking]
        assert offenders == []

    def test_checked_in_baseline_is_empty(self):
        # src/repro carries no grandfathered cache debt, by policy.
        data = json.loads(
            (REPO_ROOT / ".cachelint-baseline.json").read_text(encoding="utf-8")
        )
        assert data["entries"] == []

    def test_discovered_sites_are_the_known_caches(self):
        # The site inventory is pinned: a new memo in src/repro must
        # either register here (and with World.clear_caches()) or not
        # look like a cache at all.
        index = ProjectIndex.build(
            sorted((REPO_ROOT / "src" / "repro").rglob("*.py")),
            tool="cachelint",
        )
        table = build_cache_sites(index)
        witness_sites = {
            name
            for name, site in table.sites.items()
            if any(
                site.owner == mod or site.owner.startswith(mod + ".")
                for mod in EXEMPT_MODULES
            )
        }
        assert set(table.sites) - witness_sites == {
            "AnswerEngine._answer_cache",
            "SearchEngine._query_cache",
            "SearchEngine.snippet_cache",
            "SnippetCache._cache",
            "World.evidence_cache",
        }
        assert {
            c.rsplit(".", 1)[-1] for c in table.primitive_classes
        } == {"BoundedCache", "EvidenceCache"}

    def test_all_five_rules_registered(self):
        codes = [code for code, __, __ in cache_rule_table()]
        assert codes == [f"CACHE00{i}" for i in range(1, 6)]


class TestWorldClearCompleteness:
    """Satellite meta-test: every cache site reachable from the world is
    covered by ``World.clear_caches()`` — driven by cachelint's own
    discovery pass so the check extends to caches added later."""

    def test_every_world_reachable_site_is_cleared(self):
        index = ProjectIndex.build(
            sorted((REPO_ROOT / "src" / "repro").rglob("*.py")),
            tool="cachelint",
        )
        graph = build_cachegraph(index)
        (world,) = [
            cls
            for cls, info in index.classes.items()
            if cls.endswith(".World") and "clear_caches" in info.methods
        ]
        reached = _reachable_classes(graph, world)
        cleared = _clear_walk(graph, index.classes[world].methods["clear_caches"])
        reachable_sites = {
            name
            for name, site in graph.table.sites.items()
            if site.scope == "attr" and site.owner in reached
        }
        assert reachable_sites, "discovery must see the world's caches"
        assert reachable_sites - cleared == set()
