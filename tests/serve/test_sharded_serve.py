"""Serving over a sharded world is byte-identical to the classic world.

The serving tier never looks at the search substrate's topology: a
world assembled with ``search_shards=N`` must drain the smoke request
stream to the exact ``answers_digest`` the unsharded world records in
``BENCH_serving.json`` — the digest PR'd in with the serving tier and
gated by ``tools/serve_smoke.py``.  This pins the whole stack end to
end: sharded scatter-gather feeds the engines the same evidence, the
engines produce the same answers, the loop coalesces the same misses.
"""

import json
import pathlib

import pytest

from repro.core.config import StudyConfig
from repro.core.world import World
from repro.search.engine import SearchEngine
from repro.search.sharding import ShardedSearchEngine
from repro.serve import LoadProfile, answers_digest, generate_requests

from tests.serve.conftest import SERVE_SIZES

BENCH_SERVING = pathlib.Path(__file__).parents[2] / "BENCH_serving.json"

#: The exact profile ``tools/serve_smoke.py`` records the digest under.
SMOKE_PROFILE = LoadProfile(
    requests=400, qps=200.0, burstiness=4.0, zipf_s=1.1, pool_size=48, seed=17
)


def _recorded_digest() -> str:
    payload = json.loads(BENCH_SERVING.read_text())
    return payload["smoke"]["answers_digest"]


@pytest.fixture(scope="module", params=(1, 4), ids=("shards1", "shards4"))
def sharded_world(request):
    return World.build(
        StudyConfig(
            seed=13,
            corpus_scale=0.35,
            sizes=SERVE_SIZES,
            search_shards=request.param,
        )
    )


class TestShardedServe:
    def test_world_assembles_sharded_engine(self, sharded_world):
        engine = sharded_world.search_engine
        assert isinstance(engine, ShardedSearchEngine)
        assert engine.shard_count == sharded_world.config.search_shards

    def test_unsharded_config_keeps_plain_engine(self):
        # search_shards=0 pinned explicitly: the suite also runs under
        # REPRO_SHARDS=1/4 legs, which would flip the default factory.
        world = World.build(
            StudyConfig(
                seed=13, corpus_scale=0.2, sizes=SERVE_SIZES, search_shards=0
            )
        )
        assert type(world.search_engine) is SearchEngine

    def test_smoke_digest_matches_recorded_baseline(self, sharded_world):
        """The digest recorded by the unsharded smoke gate, reproduced
        bit-for-bit over a sharded substrate."""
        requests = generate_requests(sharded_world.catalog, SMOKE_PROFILE)
        results = sharded_world.serve_loop(workers=1).serve(requests)
        assert answers_digest(results) == _recorded_digest()

    def test_digest_stable_across_widths(self, sharded_world):
        requests = generate_requests(sharded_world.catalog, SMOKE_PROFILE)
        sharded_world.clear_caches()
        narrow = sharded_world.serve_loop(workers=1).serve(requests)
        sharded_world.clear_caches()
        wide = sharded_world.serve_loop(workers=4).serve(requests)
        assert answers_digest(narrow) == answers_digest(wide)
