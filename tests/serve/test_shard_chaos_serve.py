"""Serving under shard chaos: byte-identical or honestly partial.

The acceptance contract for the resident/partial-coverage work at the
serving tier:

* **Recoverable** ``search.shard`` plans recover inside the retry
  ladder, so the served stream's ``answers_digest`` is byte-identical
  to the clean baseline recorded in ``BENCH_serving.json`` — at any
  shard count and worker width, with zero coverage records.
* **Unrecoverable** loss of a shard degrades requests to ``partial``:
  the answer is served (from the surviving shards' evidence), coverage
  provenance is populated, and *nothing* partial enters the memo — a
  re-drain recomputes instead of replaying the degraded answer as a
  ``hit``.
"""

import json
import pathlib

import pytest

from repro.core.config import StudyConfig
from repro.core.report import render_serve_stats
from repro.core.world import World
from repro.engines.registry import ENGINE_NAMES
from repro.resilience import (
    FaultPlan,
    ResilienceConfig,
    ResilienceContext,
)
from repro.serve import LoadProfile, answers_digest, generate_requests
from repro.serve.loadgen import query_pool

from tests.serve.conftest import SERVE_SIZES
from tests.serve.test_serve_loop import _requests_for

BENCH_SERVING = pathlib.Path(__file__).parents[2] / "BENCH_serving.json"

#: The exact profile ``tools/serve_smoke.py`` records the digest under.
SMOKE_PROFILE = LoadProfile(
    requests=400, qps=200.0, burstiness=4.0, zipf_s=1.1, pool_size=48, seed=17
)


def _install(world, spec, seed=0):
    ctx = ResilienceContext(
        ResilienceConfig(plan=FaultPlan.parse(spec, seed=seed))
    )
    world.install_resilience(ctx)
    return ctx


@pytest.fixture(scope="module", params=(1, 4), ids=("shards1", "shards4"))
def chaos_world(request):
    return World.build(
        StudyConfig(
            seed=13,
            corpus_scale=0.35,
            sizes=SERVE_SIZES,
            search_shards=request.param,
        )
    )


@pytest.fixture(autouse=True)
def _pristine_chaos(chaos_world):
    chaos_world.clear_resilience()
    chaos_world.clear_caches()
    yield
    chaos_world.clear_resilience()
    chaos_world.clear_caches()


class TestRecoverableShardChaos:
    def test_digest_matches_clean_baseline(self, chaos_world):
        """failures=2 recovers at attempt 3: the whole smoke stream
        digests to the pinned clean-run baseline, bit for bit."""
        ctx = _install(chaos_world, "search.shard:0.5:2:error", seed=5)
        requests = generate_requests(chaos_world.catalog, SMOKE_PROFILE)
        results = chaos_world.serve_loop(workers=4).serve(requests)
        recorded = json.loads(BENCH_SERVING.read_text())["smoke"][
            "answers_digest"
        ]
        assert answers_digest(results) == recorded
        assert ctx.coverage.count() == 0
        snapshot = {r.outcome for r in results}
        assert "partial" not in snapshot
        assert "degraded" not in snapshot
        if chaos_world.config.search_shards:
            assert ctx.events.get("faults_injected") > 0


class TestUnrecoverableShardLoss:
    def test_partial_outcomes_with_coverage_provenance(self, chaos_world):
        if chaos_world.config.search_shards < 4:
            pytest.skip("single-shard world: losing shard 2 needs 4 shards")
        ctx = _install(chaos_world, "search.shard@2:1.0:inf")
        queries = query_pool(chaos_world.catalog, 6, seed=31)
        loop = chaos_world.serve_loop(workers=1)
        results = loop.serve(_requests_for(queries, copies=2))
        assert len(results) == len(queries) * 2 * len(ENGINE_NAMES)
        outcomes = loop.stats.snapshot().outcomes
        assert outcomes["partial"] > 0
        assert outcomes["shed"] == 0
        assert ctx.coverage.count() > 0
        assert all(
            record.missing == (2,) for record in ctx.coverage.records()
        )
        # Partial answers are real answers over surviving shards, not
        # degraded apologies.
        for result in results:
            if result.outcome == "partial":
                assert result.answer.text
        text = render_serve_stats(loop.stats.snapshot())
        assert "partial" in text

    def test_partial_answers_never_enter_the_memo(self, chaos_world):
        """A second drain of the same stream recomputes every partial
        leader — none were memoized, so none come back as hits."""
        if chaos_world.config.search_shards < 4:
            pytest.skip("single-shard world: losing shard 2 needs 4 shards")
        _install(chaos_world, "search.shard@2:1.0:inf")
        queries = query_pool(chaos_world.catalog, 5, seed=32)
        stream = _requests_for(queries)
        first_loop = chaos_world.serve_loop(workers=1)
        first = first_loop.serve(stream)
        second_loop = chaos_world.serve_loop(workers=1)
        second = second_loop.serve(stream)
        counts_first = first_loop.stats.snapshot().outcomes
        counts_second = second_loop.stats.snapshot().outcomes
        assert counts_first["partial"] > 0
        assert counts_second["partial"] == counts_first["partial"]
        # Deterministic even while degraded: same stream, same answers.
        assert answers_digest(first) == answers_digest(second)

    def test_recovery_after_plan_lift_restores_clean_digest(
        self, chaos_world
    ):
        """Once the shard 'recovers' (plan detached), the same stream
        digests to the clean baseline — no partial state lingers."""
        if chaos_world.config.search_shards < 4:
            pytest.skip("single-shard world: losing shard 2 needs 4 shards")
        _install(chaos_world, "search.shard@2:1.0:inf")
        requests = generate_requests(chaos_world.catalog, SMOKE_PROFILE)
        chaos_world.serve_loop(workers=1).serve(requests)
        chaos_world.clear_resilience()
        chaos_world.clear_caches()
        results = chaos_world.serve_loop(workers=1).serve(requests)
        recorded = json.loads(BENCH_SERVING.read_text())["smoke"][
            "answers_digest"
        ]
        assert answers_digest(results) == recorded
