"""Fixtures for the serving-tier suite.

The serve world is module-scoped and owned by this suite: serving tests
install resilience contexts, trip breakers, and warm memo caches with
degraded traffic, none of which may leak into the session-shared
determinism suites.
"""

import pytest

from repro.core.config import StudyConfig, WorkloadSizes
from repro.core.world import World

#: Smallest workload the validators accept; serving tests assert the
#: tier's execution semantics, not the paper's shape claims.
SERVE_SIZES = WorkloadSizes(
    ranking_queries=20,
    comparison_popular=6,
    comparison_niche=6,
    intent_queries=12,
    freshness_queries_per_vertical=5,
    perturbation_queries=3,
    perturbation_runs=2,
    pairwise_queries=2,
    citation_queries=6,
)


@pytest.fixture(scope="module")
def serve_world():
    return World.build(
        StudyConfig(seed=13, corpus_scale=0.35, sizes=SERVE_SIZES)
    )


@pytest.fixture(autouse=True)
def _pristine(serve_world):
    """Every test starts and ends with a cold, unwired world."""
    serve_world.clear_resilience()
    serve_world.clear_caches()
    yield
    serve_world.clear_resilience()
    serve_world.clear_caches()
