"""Unit tests for the single-flight coalescing primitive."""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve.singleflight import SingleFlight


class TestSingleFlight:
    def test_sequential_calls_each_lead(self):
        flight = SingleFlight()
        value, led = flight.do("k", lambda: 41)
        assert (value, led) == (41, True)
        value, led = flight.do("k", lambda: 42)
        # The first flight retired with its computation; a later call
        # starts fresh (upstream memos, not the flight, absorb repeats).
        assert (value, led) == (42, True)
        assert flight.counters() == (2, 0)

    def test_concurrent_duplicates_compute_once(self):
        flight = SingleFlight()
        calls = []
        gate = threading.Event()

        def compute():
            calls.append(1)
            gate.wait(timeout=5.0)
            return "answer"

        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [pool.submit(flight.do, "k", compute) for _ in range(8)]
            # Let every follower join the in-flight leader, then open
            # the gate.
            deadline = time.monotonic() + 5.0
            while flight.counters()[1] < 7 and time.monotonic() < deadline:
                time.sleep(0.001)
            gate.set()
            results = [f.result() for f in futures]
        assert len(calls) == 1
        assert {value for value, _ in results} == {"answer"}
        assert sum(1 for _, led in results if led) == 1
        assert flight.counters() == (1, 7)

    def test_distinct_keys_do_not_coalesce(self):
        flight = SingleFlight()
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(flight.do, key, lambda key=key: key * 2)
                for key in range(4)
            ]
            results = [f.result() for f in futures]
        assert sorted(value for value, _ in results) == [0, 2, 4, 6]
        assert all(led for _, led in results)

    def test_leader_exception_shared_with_followers(self):
        flight = SingleFlight()
        gate = threading.Event()
        boom = ValueError("deterministic failure")

        def compute():
            gate.wait(timeout=5.0)
            raise boom

        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(flight.do, "k", compute) for _ in range(4)]
            deadline = time.monotonic() + 5.0
            while flight.counters()[1] < 3 and time.monotonic() < deadline:
                time.sleep(0.001)
            gate.set()
            errors = []
            for future in futures:
                with pytest.raises(ValueError) as excinfo:
                    future.result()
                errors.append(excinfo.value)
        assert all(error is boom for error in errors)
        # A failed flight retires too: the key is free again.
        assert len(flight) == 0
        value, led = flight.do("k", lambda: "recovered")
        assert (value, led) == ("recovered", True)

    def test_reset_zeroes_counters(self):
        flight = SingleFlight()
        flight.do("k", lambda: 1)
        flight.reset()
        assert flight.counters() == (0, 0)
