"""Unit tests for the single-flight coalescing primitive."""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve.singleflight import SingleFlight


class TestSingleFlight:
    def test_sequential_calls_each_lead(self):
        flight = SingleFlight()
        value, led = flight.do("k", lambda: 41)
        assert (value, led) == (41, True)
        value, led = flight.do("k", lambda: 42)
        # The first flight retired with its computation; a later call
        # starts fresh (upstream memos, not the flight, absorb repeats).
        assert (value, led) == (42, True)
        assert flight.counters() == (2, 0)

    def test_concurrent_duplicates_compute_once(self):
        flight = SingleFlight()
        calls = []
        gate = threading.Event()

        def compute():
            calls.append(1)
            gate.wait(timeout=5.0)
            return "answer"

        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [pool.submit(flight.do, "k", compute) for _ in range(8)]
            # Let every follower join the in-flight leader, then open
            # the gate.
            deadline = time.monotonic() + 5.0
            while flight.counters()[1] < 7 and time.monotonic() < deadline:
                time.sleep(0.001)
            gate.set()
            results = [f.result() for f in futures]
        assert len(calls) == 1
        assert {value for value, _ in results} == {"answer"}
        assert sum(1 for _, led in results if led) == 1
        assert flight.counters() == (1, 7)

    def test_distinct_keys_do_not_coalesce(self):
        flight = SingleFlight()
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(flight.do, key, lambda key=key: key * 2)
                for key in range(4)
            ]
            results = [f.result() for f in futures]
        assert sorted(value for value, _ in results) == [0, 2, 4, 6]
        assert all(led for _, led in results)

    def test_leader_exception_propagates_to_followers(self):
        flight = SingleFlight()
        gate = threading.Event()
        boom = ValueError("deterministic failure")

        def compute():
            gate.wait(timeout=5.0)
            raise boom

        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(flight.do, "k", compute) for _ in range(4)]
            deadline = time.monotonic() + 5.0
            while flight.counters()[1] < 3 and time.monotonic() < deadline:
                time.sleep(0.001)
            gate.set()
            errors = []
            for future in futures:
                with pytest.raises(ValueError) as excinfo:
                    future.result()
                errors.append(excinfo.value)
        # The leader re-raises the original; followers raise per-caller
        # copies chained to it (so error type and args still match, and
        # `except ValueError` handlers behave identically everywhere).
        assert sum(error is boom for error in errors) == 1
        followers = [error for error in errors if error is not boom]
        assert len(followers) == 3
        assert all(error.__cause__ is boom for error in followers)
        assert all(error.args == boom.args for error in followers)
        # A failed flight retires too: the key is free again.
        assert len(flight) == 0
        value, led = flight.do("k", lambda: "recovered")
        assert (value, led) == ("recovered", True)

    def test_followers_raise_distinct_exception_instances(self):
        # Regression: followers used to re-raise the *same* exception
        # instance the leader raised.  Concurrent raises then mutated
        # one shared `__traceback__` across threads, producing garbled
        # tracebacks under load.  Each follower must get its own copy.
        flight = SingleFlight()
        gate = threading.Event()
        boom = ValueError("shared failure")

        def compute():
            gate.wait(timeout=5.0)
            raise boom

        followers = 6
        with ThreadPoolExecutor(max_workers=followers + 1) as pool:
            futures = [
                pool.submit(flight.do, "k", compute)
                for _ in range(followers + 1)
            ]
            deadline = time.monotonic() + 5.0
            while (
                flight.counters()[1] < followers
                and time.monotonic() < deadline
            ):
                time.sleep(0.001)
            gate.set()
            errors = []
            for future in futures:
                with pytest.raises(ValueError) as excinfo:
                    future.result()
                errors.append(excinfo.value)
        assert len(errors) == followers + 1
        # Every caller saw a ValueError, but no two followers share an
        # instance — and none shares the leader's traceback object.
        follower_errors = [error for error in errors if error is not boom]
        assert len(follower_errors) == followers
        assert len({id(error) for error in follower_errors}) == followers
        for error in follower_errors:
            assert type(error) is ValueError
            assert error.__cause__ is boom
            assert error.__traceback__ is not boom.__traceback__

    def test_reset_zeroes_counters(self):
        flight = SingleFlight()
        flight.do("k", lambda: 1)
        flight.reset()
        assert flight.counters() == (0, 0)
