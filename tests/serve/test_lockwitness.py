"""The runtime lock-order witness (:mod:`repro.lockorder`).

The witness is the dynamic half of the locklint contract: with
``REPRO_LOCK_WITNESS=1`` every witnessed acquisition is checked —
before blocking — against the canonical hierarchy and the global
observed-order graph, so an ordering bug raises
:class:`LockOrderViolation` with a readable message instead of hanging
a worker.  The centerpiece here is the two-lock inversion fixture that
locklint flags statically (LOCK001) being caught *live* by the witness.
"""

import importlib.util
import threading
from pathlib import Path

import pytest

from repro.lockorder import (
    CANONICAL_HIERARCHY,
    LockOrderViolation,
    OrderedLock,
    observed_edges,
    reset_witness,
    witness_lock,
)

INVERSION_FIXTURE = (
    Path(__file__).resolve().parents[1]
    / "devtools" / "fixtures" / "locklint" / "inversion_live.py"
)


@pytest.fixture
def witness_on(monkeypatch):
    monkeypatch.setenv("REPRO_LOCK_WITNESS", "1")
    reset_witness()
    yield
    reset_witness()


def load_inversion_module():
    spec = importlib.util.spec_from_file_location(
        "inversion_live_under_test", INVERSION_FIXTURE
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestWitnessLockFactory:
    def test_disabled_by_default_returns_plain_lock(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCK_WITNESS", raising=False)
        lock = witness_lock("ServeStats._lock")
        assert not isinstance(lock, OrderedLock)
        with lock:
            assert lock.locked()

    def test_enabled_returns_ordered_lock(self, witness_on):
        lock = witness_lock("ServeStats._lock")
        assert isinstance(lock, OrderedLock)
        assert lock.site == "ServeStats._lock"


class TestOrderedLockSemantics:
    def test_context_manager_and_locked(self, witness_on):
        lock = OrderedLock("ServeStats._lock")
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_nonblocking_acquire(self, witness_on):
        lock = OrderedLock("ServeStats._lock")
        assert lock.acquire(blocking=False)
        lock.release()

    def test_reentrant_acquisition_raises_instead_of_hanging(self, witness_on):
        lock = OrderedLock("ServeStats._lock")
        with lock:
            with pytest.raises(LockOrderViolation, match="re-entrant"):
                lock.acquire()

    def test_hierarchy_order_is_allowed(self, witness_on):
        outer = OrderedLock("CircuitBreaker._lock")
        inner = OrderedLock("SimClock._lock")
        with outer:
            with inner:
                pass
        assert (
            "CircuitBreaker._lock",
            "SimClock._lock",
        ) in {(o, i) for o, i, _ in observed_edges()}

    def test_hierarchy_inversion_raises(self, witness_on):
        # SimClock ranks after CircuitBreaker in CANONICAL_HIERARCHY;
        # acquiring them inverted must raise before blocking.
        assert CANONICAL_HIERARCHY.index(
            "CircuitBreaker._lock"
        ) < CANONICAL_HIERARCHY.index("SimClock._lock")
        outer = OrderedLock("SimClock._lock")
        inner = OrderedLock("CircuitBreaker._lock")
        with outer:
            with pytest.raises(LockOrderViolation, match="hierarchy inversion"):
                with inner:
                    pass
        # The failed acquisition must not leak held state.
        with inner:
            with outer:
                pass

    def test_unranked_cycle_detected_via_observed_edges(self, witness_on):
        # Sites outside the canonical hierarchy still get cycle
        # detection from the global observed-order graph.
        a = OrderedLock("Fixture._a")
        b = OrderedLock("Fixture._b")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderViolation, match="cycle"):
                a.acquire()

    def test_cycle_message_names_both_paths(self, witness_on):
        a = OrderedLock("Fixture._a")
        b = OrderedLock("Fixture._b")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderViolation) as excinfo:
                a.acquire()
        message = str(excinfo.value)
        assert "first observed" in message
        assert "Fixture._a" in message and "Fixture._b" in message

    def test_edges_recorded_across_threads(self, witness_on):
        a = OrderedLock("Fixture._a")
        b = OrderedLock("Fixture._b")

        def forward():
            with a:
                with b:
                    pass

        worker = threading.Thread(target=forward, name="forward-thread")
        worker.start()
        worker.join()
        edges = {(o, i) for o, i, _ in observed_edges()}
        assert ("Fixture._a", "Fixture._b") in edges
        # The other thread's edge now protects this thread too.
        with b:
            with pytest.raises(LockOrderViolation, match="cycle"):
                a.acquire()


class TestInversionFixtureCaughtLive:
    """The contract centerpiece: the module locklint flags as LOCK001
    raises under the witness when the inversion actually executes."""

    def test_inversion_raises_instead_of_deadlocking(self, witness_on):
        pair = load_inversion_module().InvertedPair()
        assert isinstance(pair._first, OrderedLock)
        assert pair.forward() == "forward"
        with pytest.raises(LockOrderViolation, match="cycle"):
            pair.backward()

    def test_single_order_alone_is_clean(self, witness_on):
        pair = load_inversion_module().InvertedPair()
        for _ in range(3):
            assert pair.forward() == "forward"
        edges = {(o, i) for o, i, _ in observed_edges()}
        assert edges == {("InvertedPair._first", "InvertedPair._second")}

    def test_disabled_witness_means_plain_locks(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCK_WITNESS", raising=False)
        pair = load_inversion_module().InvertedPair()
        assert not isinstance(pair._first, OrderedLock)
        # Run only one order — actually inverting plain locks from one
        # thread self-deadlocks, which is exactly the point.
        assert pair.forward() == "forward"


class TestHierarchyContract:
    def test_hierarchy_is_duplicate_free(self):
        assert len(set(CANONICAL_HIERARCHY)) == len(CANONICAL_HIERARCHY)

    def test_reset_clears_edges(self, witness_on):
        a = OrderedLock("Fixture._a")
        b = OrderedLock("Fixture._b")
        with a:
            with b:
                pass
        assert observed_edges()
        reset_witness()
        assert observed_edges() == []
