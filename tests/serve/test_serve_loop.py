"""Serving-tier acceptance: coalescing, determinism, backpressure.

The bar, in increasing strength:

* a coalesced serve of a duplicated workload returns byte-identical
  answers to the batch :class:`~repro.core.runner.StudyRunner`;
* the hit/coalesce/miss split is counter-verified — misses equal
  distinct cold keys *exactly*, at any worker width;
* a targeted ``engine.answer`` chaos plan trips only the faulted
  engine's breaker, sheds only its traffic, and leaves every other
  engine's answers untouched;
* recoverable chaos leaves the digest byte-identical to a clean run.
"""

import pytest

from repro.core.report import render_serve_stats
from repro.core.runner import StudyRunner
from repro.engines.registry import ENGINE_NAMES
from repro.resilience import (
    FaultPlan,
    ResilienceConfig,
    ResilienceContext,
)
from repro.serve.loadgen import LoadProfile, ServeRequest, generate_requests, query_pool
from repro.serve.loop import answers_digest


def _requests_for(queries, engines=ENGINE_NAMES, copies=1, gap=0.01):
    """A hand-built stream: every (engine, query) pair, ``copies`` times.

    Duplicates are interleaved (all pairs once, then again) so that at
    small gaps concurrent duplicates actually overlap in the pool.
    """
    requests = []
    arrival = 0.0
    for _ in range(copies):
        for query in queries:
            for engine in engines:
                arrival += gap
                requests.append(
                    ServeRequest(
                        index=len(requests),
                        arrival=arrival,
                        engine=engine,
                        query=query,
                    )
                )
    return requests


def _install(world, spec=None, seed=0, **config):
    plan = FaultPlan.parse(spec, seed=seed) if spec else FaultPlan(seed=seed)
    ctx = ResilienceContext(ResilienceConfig(plan=plan, **config))
    world.install_resilience(ctx)
    return ctx


class TestCoalescedServingEquivalence:
    def test_duplicated_workload_matches_batch_runner(self, serve_world):
        queries = query_pool(serve_world.catalog, 12, seed=21)
        batch = StudyRunner(serve_world, workers=1).answers(queries)

        serve_world.clear_caches()
        loop = serve_world.serve_loop(workers=4)
        results = loop.serve(_requests_for(queries, copies=3, gap=0.001))

        served = {}
        for result in results:
            served.setdefault(result.request.engine, {})[
                result.request.query.cache_key
            ] = result.answer
        for engine in ENGINE_NAMES:
            for query, expected in zip(queries, batch[engine]):
                assert served[engine][query.cache_key] == expected

    def test_miss_count_equals_distinct_keys_exactly(self, serve_world):
        queries = query_pool(serve_world.catalog, 10, seed=22)
        engines = ("Google", "Gemini")
        loop = serve_world.serve_loop(workers=4)
        copies = 4
        results = loop.serve(
            _requests_for(queries, engines=engines, copies=copies, gap=0.0005)
        )
        snapshot = loop.stats.snapshot()
        distinct = len(queries) * len(engines)
        total = distinct * copies
        assert len(results) == total
        assert snapshot.outcomes["miss"] == distinct
        assert (
            snapshot.outcomes["hit"] + snapshot.outcomes["coalesced"]
            == total - distinct
        )
        assert snapshot.outcomes["shed"] == snapshot.outcomes["degraded"] == 0
        assert snapshot.duplicate_absorption == pytest.approx(
            1.0 - distinct / total
        )
        # The engines agree: each computed exactly its distinct queries.
        for engine in engines:
            __, misses = serve_world.engines[engine].cache_stats()
            assert misses == len(queries)

    def test_coalesced_requests_share_the_leaders_answer(self, serve_world):
        queries = query_pool(serve_world.catalog, 4, seed=23)
        loop = serve_world.serve_loop(workers=8)
        results = loop.serve(
            _requests_for(queries, engines=("Claude",), copies=8, gap=0.0)
        )
        by_key = {}
        for result in results:
            by_key.setdefault(result.request.query.cache_key, set()).add(
                id(result.answer)
            )
        # Every duplicate of a key received the *same object*: either
        # the memo entry or the in-flight leader's result.
        assert all(len(ids) == 1 for ids in by_key.values())


class TestWorkerWidthDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_digest_identical_at_any_width(self, serve_world, workers):
        profile = LoadProfile(requests=120, pool_size=24, burstiness=3.0, seed=7)
        requests = generate_requests(serve_world.catalog, profile)
        serve_world.clear_caches()
        loop = serve_world.serve_loop(workers=workers)
        digest = answers_digest(loop.serve(requests))
        serve_world.clear_caches()
        again = serve_world.serve_loop(workers=workers)
        assert answers_digest(again.serve(requests)) == digest
        # Cross-width: pin against the sequential reference.
        serve_world.clear_caches()
        reference = serve_world.serve_loop(workers=1)
        assert answers_digest(reference.serve(requests)) == digest

    def test_warm_serve_digests_like_cold(self, serve_world):
        profile = LoadProfile(requests=60, pool_size=12, seed=9)
        requests = generate_requests(serve_world.catalog, profile)
        loop = serve_world.serve_loop(workers=4)
        cold = answers_digest(loop.serve(requests))
        warm = answers_digest(loop.serve(requests))
        assert warm == cold
        # Second pass is all hits: the memo absorbed the whole stream.
        assert loop.stats.snapshot().outcomes["hit"] >= len(requests)


class TestBackpressureAndChaos:
    def test_targeted_chaos_trips_only_the_faulted_breaker(self, serve_world):
        ctx = _install(serve_world, "engine.answer@Gemini:1.0:inf")
        queries = query_pool(serve_world.catalog, 8, seed=31)
        loop = serve_world.serve_loop(workers=4)
        results = loop.serve(_requests_for(queries, copies=2, gap=0.01))

        assert ctx.breaker_for("Gemini").is_open
        for engine in ENGINE_NAMES:
            if engine != "Gemini":
                assert not ctx.breaker_for(engine).is_open
        # Shed and degraded traffic is Gemini's alone; everyone else
        # answered normally.
        bad = [r for r in results if r.outcome in ("shed", "degraded")]
        assert bad and all(r.request.engine == "Gemini" for r in bad)
        snapshot = loop.stats.snapshot()
        assert snapshot.outcomes["degraded"] >= ctx.config.breaker_threshold
        assert snapshot.outcomes["shed"] > 0
        assert ctx.events.get("serve_shed") == snapshot.outcomes["shed"]
        # Quarantine provenance points at the serve phase.
        records = ctx.quarantine.records("serve")
        assert records and all(r.engine == "Gemini" for r in records)

    def test_unfaulted_engines_answers_match_clean_run(self, serve_world):
        queries = query_pool(serve_world.catalog, 6, seed=32)
        clean_loop = serve_world.serve_loop(workers=4)
        clean = clean_loop.serve(_requests_for(queries, copies=2))
        serve_world.clear_caches()
        _install(serve_world, "engine.answer@Perplexity:1.0:inf")
        chaotic_loop = serve_world.serve_loop(workers=4)
        chaotic = chaotic_loop.serve(_requests_for(queries, copies=2))
        keep = [r for r in clean if r.request.engine != "Perplexity"]
        kept = [r for r in chaotic if r.request.engine != "Perplexity"]
        assert answers_digest(keep) == answers_digest(kept)

    def test_recoverable_chaos_is_byte_identical_to_clean(self, serve_world):
        profile = LoadProfile(requests=80, pool_size=16, seed=33)
        requests = generate_requests(serve_world.catalog, profile)
        clean = answers_digest(serve_world.serve_loop(workers=4).serve(requests))
        serve_world.clear_caches()
        ctx = _install(serve_world, "engine.answer:0.4:1")
        chaotic = answers_digest(
            serve_world.serve_loop(workers=4).serve(requests)
        )
        assert chaotic == clean
        assert ctx.events.get("retries") > 0
        # Recoverable faults never trip a breaker (PR 5 invariant).
        for engine in ENGINE_NAMES:
            assert not ctx.breaker_for(engine).is_open

    def test_admission_window_blocks_but_completes(self, serve_world):
        profile = LoadProfile(requests=60, pool_size=12, qps=1000.0, seed=34)
        requests = generate_requests(serve_world.catalog, profile)
        loop = serve_world.serve_loop(workers=2, max_pending=1)
        results = loop.serve(requests)
        assert len(results) == len(requests)
        snapshot = loop.stats.snapshot()
        assert snapshot.requests == len(requests)
        # With a one-slot window under a 1000-qps burst the submitter
        # must have stalled at least once — and dropped nothing.
        assert snapshot.admission_waits > 0

    def test_fail_fast_propagates(self, serve_world):
        from repro.resilience.faults import InjectedFault

        _install(
            serve_world, "engine.answer@Claude:1.0:inf", fail_fast=True
        )
        queries = query_pool(serve_world.catalog, 4, seed=35)
        loop = serve_world.serve_loop(workers=2)
        with pytest.raises(InjectedFault):
            loop.serve(_requests_for(queries, engines=("Claude",)))


class TestServeStatsRendering:
    def test_render_serve_stats_covers_the_headline_counters(self, serve_world):
        profile = LoadProfile(requests=40, pool_size=8, seed=41)
        requests = generate_requests(serve_world.catalog, profile)
        loop = serve_world.serve_loop(workers=2)
        loop.serve(requests)
        text = render_serve_stats(loop.stats.snapshot())
        assert "Serving statistics" in text
        assert "requests: 40" in text
        assert "coalesced" in text and "miss" in text
        assert "duplicate absorption" in text
        assert "service latency" in text and "p99" in text

    def test_world_serve_loop_factory_shares_resilience_clock(self, serve_world):
        ctx = _install(serve_world)
        loop = serve_world.serve_loop(workers=1)
        assert loop.clock is ctx.clock
