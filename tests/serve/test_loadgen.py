"""The load generator's determinism and distribution shape."""

import collections

import pytest

from repro.engines.registry import ENGINE_NAMES
from repro.entities.catalog import build_default_catalog
from repro.serve.loadgen import (
    LoadProfile,
    generate_requests,
    query_pool,
)


@pytest.fixture(scope="module")
def catalog():
    return build_default_catalog()


class TestQueryPool:
    def test_exact_size_and_mixed_shapes(self, catalog):
        pool = query_pool(catalog, 30, seed=3)
        assert len(pool) == 30
        kinds = {query.kind for query in pool}
        assert len(kinds) == 3  # ranking, comparison, intent all present

    def test_deterministic_per_seed(self, catalog):
        a = query_pool(catalog, 24, seed=5)
        b = query_pool(catalog, 24, seed=5)
        assert [q.cache_key for q in a] == [q.cache_key for q in b]
        c = query_pool(catalog, 24, seed=6)
        assert [q.cache_key for q in a] != [q.cache_key for q in c]


class TestGenerateRequests:
    def test_streams_are_byte_identical_per_profile(self, catalog):
        profile = LoadProfile(requests=200, seed=11, burstiness=3.0)
        a = generate_requests(catalog, profile)
        b = generate_requests(catalog, profile)
        assert a == b

    def test_different_seed_different_stream(self, catalog):
        a = generate_requests(catalog, LoadProfile(requests=100, seed=1))
        b = generate_requests(catalog, LoadProfile(requests=100, seed=2))
        assert a != b

    def test_arrivals_are_monotonic_and_indexed(self, catalog):
        requests = generate_requests(
            catalog, LoadProfile(requests=150, burstiness=5.0, seed=4)
        )
        assert [r.index for r in requests] == list(range(150))
        arrivals = [r.arrival for r in requests]
        assert all(b >= a for a, b in zip(arrivals, arrivals[1:]))
        assert arrivals[0] > 0.0

    def test_mean_rate_tracks_qps(self, catalog):
        qps = 50.0
        requests = generate_requests(
            catalog, LoadProfile(requests=600, qps=qps, burstiness=4.0, seed=9)
        )
        span = requests[-1].arrival
        observed = len(requests) / span
        assert observed == pytest.approx(qps, rel=0.35)

    def test_burstiness_packs_arrivals(self, catalog):
        smooth = generate_requests(
            catalog, LoadProfile(requests=400, burstiness=1.0, seed=8)
        )
        bursty = generate_requests(
            catalog, LoadProfile(requests=400, burstiness=8.0, seed=8)
        )

        def shared_instants(requests):
            counts = collections.Counter(r.arrival for r in requests)
            return sum(c for c in counts.values() if c > 1)

        assert shared_instants(smooth) == 0
        assert shared_instants(bursty) > 100

    def test_zipf_head_dominates(self, catalog):
        pool = query_pool(catalog, 40, seed=2)
        requests = generate_requests(
            catalog,
            LoadProfile(requests=800, zipf_s=1.2, pool_size=40, seed=2),
            pool=pool,
        )
        counts = collections.Counter(r.query.cache_key for r in requests)
        head = pool[0].cache_key
        tail = pool[-1].cache_key
        assert counts[head] > 5 * max(1, counts.get(tail, 0))
        # The head of the pool takes a disproportionate share of the
        # stream: with s=1.2 over 40 ranks the top 4 queries alone
        # carry well over a quarter of all requests.
        top4 = sum(counts.get(q.cache_key, 0) for q in pool[:4])
        assert top4 > len(requests) / 4

    def test_engine_restriction_and_default_fleet(self, catalog):
        all_engines = generate_requests(
            catalog, LoadProfile(requests=300, seed=3)
        )
        assert {r.engine for r in all_engines} == set(ENGINE_NAMES)
        only = generate_requests(
            catalog, LoadProfile(requests=50, engines=("Gemini",), seed=3)
        )
        assert {r.engine for r in only} == {"Gemini"}

    def test_profile_validation(self, catalog):
        with pytest.raises(ValueError):
            LoadProfile(requests=0)
        with pytest.raises(ValueError):
            LoadProfile(qps=0.0)
        with pytest.raises(ValueError):
            LoadProfile(burstiness=0.5)
        with pytest.raises(ValueError):
            LoadProfile(engines=("AltaVista",))
        with pytest.raises(ValueError):
            generate_requests(catalog, LoadProfile(), pool=[])
