"""The runtime cache-staleness witness (:mod:`repro.cachewitness`).

The witness is the dynamic half of the cachelint contract: with
``REPRO_CACHE_WITNESS=1`` every instrumented cache fingerprints stored
values at insert, re-verifies them on every hit, and checks a
generation stamp, so staleness raises
:class:`CacheCoherenceViolation` with a readable message instead of
silently skewing results.  The centerpiece is the epoch-free memo
fixture that cachelint flags statically (CACHE002) being caught *live*
by the witness — plus the acceptance gate that the serving digest is
byte-identical with the witness on.
"""

import importlib.util
from pathlib import Path

import pytest

from repro.cachewitness import (
    CacheCoherenceViolation,
    CacheWitness,
    fingerprint,
    witness_for,
)
from repro.core.config import StudyConfig, cache_witness_enabled
from repro.core.world import World
from repro.engines.base import Answer
from repro.search.caching import BoundedCache
from repro.serve.loadgen import LoadProfile, generate_requests
from repro.serve.loop import answers_digest

from tests.serve.conftest import SERVE_SIZES

STALENESS_FIXTURE = (
    Path(__file__).resolve().parents[1]
    / "devtools" / "fixtures" / "cachelint" / "staleness_live.py"
)


@pytest.fixture
def witness_on(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_WITNESS", "1")


def load_staleness_module():
    spec = importlib.util.spec_from_file_location(
        "staleness_live_under_test", STALENESS_FIXTURE
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestWitnessFactory:
    def test_disabled_by_default_returns_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_WITNESS", raising=False)
        assert witness_for("Fixture._cache") is None

    def test_enabled_returns_witness(self, witness_on):
        witness = witness_for("Fixture._cache")
        assert isinstance(witness, CacheWitness)
        assert witness.site == "Fixture._cache"


class TestFingerprint:
    def test_structural_equality(self):
        assert fingerprint((1, "a", [2.5])) == fingerprint((1, "a", [2.5]))

    def test_mutation_changes_the_digest(self):
        value = {"k": [1, 2]}
        before = fingerprint(value)
        value["k"].append(3)
        assert fingerprint(value) != before

    def test_dict_and_set_order_insensitive(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})
        assert fingerprint({3, 1, 2}) == fingerprint({2, 3, 1})

    def test_dataclasses_render_by_field(self):
        one = Answer(engine="E", query_id="q", text="t")
        two = Answer(engine="E", query_id="q", text="t")
        assert fingerprint(one) == fingerprint(two)
        assert fingerprint(one) != fingerprint(
            Answer(engine="E", query_id="q", text="different")
        )


class TestWitnessSemantics:
    def test_record_then_verify_clean(self):
        witness = CacheWitness("Fixture._w")
        witness.record("k", (1, 2))
        witness.verify("k", (1, 2))
        assert len(witness) == 1

    def test_verify_adopts_unknown_entries(self):
        # A hit on an entry inserted before the witness attached is
        # adopted as ground truth, then enforced.
        witness = CacheWitness("Fixture._w")
        witness.verify("k", [1])
        with pytest.raises(CacheCoherenceViolation, match="mutated"):
            witness.verify("k", [1, 2])

    def test_mutation_after_insert_raises(self):
        witness = CacheWitness("Fixture._w")
        value = [1]
        witness.record("k", value)
        value.append(2)
        with pytest.raises(CacheCoherenceViolation, match="mutated"):
            witness.verify("k", value)

    def test_reinsert_with_different_value_raises(self):
        witness = CacheWitness("Fixture._w")
        witness.record("k", 1)
        with pytest.raises(CacheCoherenceViolation, match="re-insert"):
            witness.record("k", 2)

    def test_epoch_stamp_drift_raises(self):
        epoch = {"n": 0}
        witness = CacheWitness("Fixture._w", epochs=lambda: epoch["n"])
        witness.record("k", "v")
        witness.verify("k", "v")
        epoch["n"] += 1
        with pytest.raises(CacheCoherenceViolation, match="outlived"):
            witness.verify("k", "v")

    def test_forget_and_clear(self):
        witness = CacheWitness("Fixture._w")
        witness.record("k", 1)
        witness.forget("k")
        witness.record("k", 2)  # no contradiction: the entry was dropped
        witness.clear()
        assert len(witness) == 0
        witness.record("k", 3)


class TestInstrumentedBoundedCache:
    """:class:`BoundedCache` wires the witness into put/get/clear."""

    def test_stale_hit_after_epoch_bump_raises(self, witness_on):
        epoch = {"n": 0}
        cache = BoundedCache(
            limit=4, site="Fixture._cache", epochs=lambda: epoch["n"]
        )
        cache.put("k", (1, 2))
        assert cache.get("k") == (1, 2)
        epoch["n"] += 1
        with pytest.raises(CacheCoherenceViolation, match="outlived"):
            cache.get("k")

    def test_aliased_mutation_raises_on_next_hit(self, witness_on):
        cache = BoundedCache(limit=4, site="Fixture._cache")
        stored = cache.put("k", [1])
        stored.append(2)
        with pytest.raises(CacheCoherenceViolation, match="mutated"):
            cache.get("k")

    def test_clear_resets_the_witness(self, witness_on):
        cache = BoundedCache(limit=4, site="Fixture._cache")
        cache.put("k", 1)
        cache.clear()
        cache.put("k", 2)
        assert cache.get("k") == 2

    def test_disabled_witness_is_inert(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_WITNESS", raising=False)
        cache = BoundedCache(limit=4, site="Fixture._cache")
        stored = cache.put("k", [1])
        stored.append(2)
        assert cache.get("k") == [1, 2]  # plain cache: nothing verifies


class TestStalenessFixtureCaughtLive:
    """The contract centerpiece: the module cachelint flags as CACHE002
    raises under the witness when the staleness actually happens."""

    def test_stale_read_raises_instead_of_serving(self, witness_on):
        mod = load_staleness_module()
        table = mod.TinyTable()
        board = mod.SummaryBoard(table)
        assert board._witness is not None
        table.add("a", 1)
        first = board.summary("a")
        assert board.summary("a") == first  # same epoch: clean hit
        table.add("b", 2)  # bumps the epoch; the memo key does not
        with pytest.raises(CacheCoherenceViolation, match="outlived"):
            board.summary("a")

    def test_disabled_witness_serves_the_stale_entry(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_WITNESS", raising=False)
        mod = load_staleness_module()
        table = mod.TinyTable()
        board = mod.SummaryBoard(table)
        assert board._witness is None
        stale = board.summary("a")
        table.add("a", 1)
        # The exact bug the static finding describes: the entry computed
        # before the write keeps being served after it.
        assert board.summary("a") == stale


class TestServeDigestUnchangedUnderWitness:
    """Acceptance: enabling the witness changes no served byte."""

    @pytest.fixture
    def witness_world(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_WITNESS", "1")
        return World.build(
            StudyConfig(seed=13, corpus_scale=0.35, sizes=SERVE_SIZES)
        )

    def test_digest_byte_identical_with_witness_enabled(
        self, serve_world, witness_world
    ):
        profile = LoadProfile(requests=60, pool_size=12, seed=9)
        baseline = answers_digest(
            serve_world.serve_loop(workers=4).serve(
                generate_requests(serve_world.catalog, profile)
            )
        )
        witnessed = answers_digest(
            witness_world.serve_loop(workers=4).serve(
                generate_requests(witness_world.catalog, profile)
            )
        )
        assert witnessed == baseline
        # And the witness really was attached to the serving caches.
        assert witness_world.engines["Google"]._witness is not None
        if not cache_witness_enabled():
            # Only a witness-free run has a witness-free baseline: under
            # `make cachewitness` the ambient flag arms *every* world,
            # and the comparison above is witness-vs-witness (still a
            # valid byte-identity check, just not a differential one).
            assert serve_world.engines["Google"]._witness is None
