"""Freshness deep dive: age distributions per engine and vertical.

Extends Figure 4: full text-histogram distributions, per-markup
extraction statistics (how often dates came from meta / JSON-LD / <time>
/ body text), and the AI-vs-Google freshness ratios the paper reports
("medians 40-70% lower than Google").

Run:  python examples/freshness_vertical_study.py
"""

from collections import Counter

from repro import ComparativeStudy, StudyConfig, World, WorkloadSizes
from repro.analysis.freshness import extract_publication_date
from repro.stats import histogram
from repro.webgraph.html import render_page


AGE_BINS = [0, 30, 60, 120, 240, 480, 960, 2200]


def text_histogram(ages, width=40) -> list[str]:
    counts = histogram(ages, AGE_BINS)
    peak = max(counts) or 1
    lines = []
    for (lo, hi), count in zip(zip(AGE_BINS, AGE_BINS[1:]), counts):
        bar = "#" * round(width * count / peak)
        lines.append(f"    {lo:>4}-{hi:<4}d |{bar:<{width}} {count}")
    return lines


def markup_extraction_stats(world: World) -> None:
    """How each date-markup strategy fares under extraction."""
    outcomes = Counter()
    for page in world.corpus.pages[::3]:
        date = extract_publication_date(render_page(page))
        key = (page.date_markup.value, date is not None)
        outcomes[key] += 1
    print("\nextraction success by markup strategy:")
    for markup in ("meta", "json_ld", "time_tag", "body_text", "none"):
        hits = outcomes[(markup, True)]
        misses = outcomes[(markup, False)]
        total = hits + misses
        if total:
            print(f"  {markup:<10} {hits}/{total} extracted")


def main() -> None:
    sizes = WorkloadSizes(
        ranking_queries=10, comparison_popular=2, comparison_niche=2,
        intent_queries=6, freshness_queries_per_vertical=30,
        perturbation_queries=2, perturbation_runs=2,
        pairwise_queries=2, citation_queries=2,
    )
    world = World.build(StudyConfig(seed=7, sizes=sizes))
    study = ComparativeStudy(world)
    result = study.freshness()

    for label, report in (
        ("Consumer Electronics", result.electronics),
        ("Automotive", result.automotive),
    ):
        print(f"\n=== {label} ===")
        google_median = report.median_age_days["Google"]
        for engine, median_age in report.ordered_by_median():
            ratio = median_age / google_median if google_median else float("nan")
            print(f"\n  {engine}: median {median_age:.0f} days "
                  f"({ratio:.0%} of Google's)")
            ages = report.ages[engine]
            if ages:
                for line in text_histogram(ages):
                    print(line)

    markup_extraction_stats(world)


if __name__ == "__main__":
    main()
