"""Replication study: do the findings survive a change of world?

Every run of this reproduction is deterministic per seed — which means a
skeptic should ask whether the paper-shaped results are a property of
the mechanisms or of one lucky synthetic web.  This example reruns the
headline metrics across several independently-generated worlds and
reports, for each paper claim, in how many replicates it held, plus
bootstrap confidence intervals for the underlying effect sizes.

Run:  python examples/replication_study.py [n_seeds]
"""

import sys

from repro.core.replication import replicate


def main() -> None:
    n_seeds = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    seeds = list(range(101, 101 + n_seeds))
    print(f"building {n_seeds} independent worlds (seeds {seeds}) ...\n")
    report = replicate(seeds)
    print(report.render())
    print()

    fragile = [
        name for name in report.claim_counts
        if report.claim_rate(name) < 1.0
    ]
    if fragile:
        print("claims that did NOT hold in every replicate:")
        for name in fragile:
            print(f"  - {name} ({report.claim_rate(name):.0%})")
    else:
        print("every claim held in every replicate.")


if __name__ == "__main__":
    main()
