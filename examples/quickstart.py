"""Quickstart: build a world, compare the engines, rerun a paper figure.

Run:  python examples/quickstart.py
"""

from repro import ComparativeStudy, StudyConfig, World, WorkloadSizes
from repro.core.report import render_fig1
from repro.entities import ranking_queries


def main() -> None:
    # One seed reproduces everything: the synthetic web, the engines'
    # pre-training priors, and every workload.
    sizes = WorkloadSizes(
        ranking_queries=150,
        comparison_popular=30, comparison_niche=30,
        intent_queries=60, freshness_queries_per_vertical=10,
        perturbation_queries=6, perturbation_runs=4,
        pairwise_queries=4, citation_queries=20,
    )
    world = World.build(StudyConfig(seed=7, sizes=sizes))
    print(
        f"world: {len(world.corpus)} pages across "
        f"{len(world.corpus.domains())} domains, "
        f"{len(world.catalog)} entities, {len(world.engines)} engines\n"
    )

    # Ask every system the same question and compare what they cite.
    query = ranking_queries(world.catalog, verticals=("smartphones",), count=1, seed=1)[0]
    print(f"query: {query.text}\n")
    for name, engine in world.engines.items():
        answer = engine.answer(query)
        domains = ", ".join(sorted(answer.cited_domains())) or "(no citations)"
        print(f"{name:<11} cites: {domains}")

    # Rerun Figure 1 end to end.
    study = ComparativeStudy(world)
    print()
    print(render_fig1(study.domain_overlap_ranking()))


if __name__ == "__main__":
    main()
