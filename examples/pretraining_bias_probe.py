"""Pre-training bias probe: Section 3's experiment on two live queries.

Reruns the paper's perturbation battery on one popular query ("best SUVs
to buy in 2025") and one niche query ("top family law firms in Toronto"):
snippet shuffle under normal and strict grounding, entity-swap injection,
pairwise-vs-holistic consistency, and the citation log.

Run:  python examples/pretraining_bias_probe.py
"""

from repro import StudyConfig, World, WorkloadSizes
from repro.analysis.pairwise import pairwise_consistency
from repro.analysis.perturbations import PerturbationKind, sensitivity
from repro.core.study import ComparativeStudy
from repro.entities.queries import PopularityClass, Query, QueryKind
from repro.llm.model import GroundingMode


def probe(world: World, study: ComparativeStudy, query: Query) -> None:
    llm = world.reference_llm
    context = study._evidence_context(query)
    candidates = list(query.entities)
    label = query.popularity_class.value if query.popularity_class else "?"
    print(f"\n=== {query.text}  [{label}; {len(candidates)} candidates, "
          f"{len(context)} snippets] ===")

    # Confidence structure of the candidates.
    confidences = [llm.knowledge.confidence(e) for e in candidates]
    print(f"  prior confidence: min {min(confidences):.2f} "
          f"mean {sum(confidences)/len(confidences):.2f} max {max(confidences):.2f}")

    # Perturbation battery.
    for kind, mode, name in (
        (PerturbationKind.SNIPPET_SHUFFLE, GroundingMode.NORMAL, "SS (normal)"),
        (PerturbationKind.SNIPPET_SHUFFLE, GroundingMode.STRICT, "SS (strict)"),
        (PerturbationKind.ENTITY_SWAP, GroundingMode.NORMAL, "ESI"),
    ):
        result = sensitivity(
            llm, query.text, candidates, context, kind,
            mode=mode, runs=10, seed=0, catalog=world.catalog,
        )
        print(f"  {name:<12} delta_avg = {result.delta_avg:.2f}")

    # Pairwise consistency.
    for mode in (GroundingMode.NORMAL, GroundingMode.STRICT):
        consistency = pairwise_consistency(
            llm, query.text, candidates, context, mode
        )
        print(f"  tau ({mode.value:<6}) = {consistency.tau:.3f}")

    # Citation log.
    answer = llm.rank_entities(
        query.text, candidates, context, top_k=min(10, len(candidates))
    )
    print("  ranking with citations:")
    for position, entity_id in enumerate(answer.ranking, start=1):
        name = world.catalog.get(entity_id).name
        urls = answer.citations.get(entity_id, ())
        marker = f"({len(urls)} sources)" if urls else "(NO SNIPPET SUPPORT)"
        print(f"    {position:2d}. {name:<28} {marker}")


def main() -> None:
    sizes = WorkloadSizes(
        ranking_queries=10, comparison_popular=2, comparison_niche=2,
        intent_queries=6, freshness_queries_per_vertical=2,
        perturbation_queries=2, perturbation_runs=2,
        pairwise_queries=2, citation_queries=2,
    )
    world = World.build(StudyConfig(seed=7, sizes=sizes))
    study = ComparativeStudy(world)

    popular = Query(
        id="probe-pop",
        text="best SUVs to buy in 2025",
        kind=QueryKind.RANKING,
        vertical="suvs",
        entities=tuple(e.id for e in world.catalog.popular("suvs")),
        popularity_class=PopularityClass.POPULAR,
    )
    niche = Query(
        id="probe-nic",
        text="top 10 law firms for family law in Toronto",
        kind=QueryKind.RANKING,
        vertical="family_law_toronto",
        entities=tuple(e.id for e in world.catalog.in_vertical("family_law_toronto")),
        popularity_class=PopularityClass.NICHE,
    )

    probe(world, study, popular)
    probe(world, study, niche)

    print(
        "\nReading: the popular query's ranking barely reacts to evidence "
        "manipulation (priors dominate; uncited entities appear anyway), "
        "while the niche query's ranking is rewritten by it (retrieval "
        "constructs, rather than confirms, the answer)."
    )


if __name__ == "__main__":
    main()
