"""AEO-vs-SEO audit: where does a brand surface — web search or AI search?

Section 3.4 of the paper argues that optimizing for answer engines
(AEO/GEO) is a different game from SEO: freshness and earned-media
presence matter more, and once content is retrieved, its influence
depends on whether the entity is popular (priors dominate) or niche
(context dominates).

This example uses the :mod:`repro.aeo` toolkit to:

1. audit Garmin (popular) and Coros (niche) across both ecosystems,
2. run *causal* content-campaign experiments for Coros — fresh earned
   reviews vs. stale reviews vs. brand pages vs. social threads — and
   measure the AI-citation lift of each,
3. dissect Coros's query space by segment (informational / consideration
   / transactional / ranking / comparison) to find the weak spots, and
4. emit a ranked action plan backed by the measured lifts.

Run:  python examples/aeo_vs_seo_audit.py
"""

from repro import StudyConfig, World
from repro.aeo import (
    BrandAuditor,
    ContentPlan,
    InterventionLab,
    QueryPatternAnalyzer,
    recommend,
)
from repro.webgraph.domains import SourceType

POPULAR = "smartwatches:garmin"
NICHE = "smartwatches:coros"


def show_audit(audit) -> None:
    kind = "popular" if audit.is_popular else "niche"
    print(f"\n=== {audit.entity_name} ({kind}) over {audit.query_count} queries ===")
    print(f"  Google SERP coverage:      {audit.serp_coverage:.0%}")
    print(f"  AI citation coverage:      {audit.mean_ai_citation_coverage():.0%} (mean)")
    for engine in sorted(audit.ai_citation_coverage):
        cited = audit.ai_citation_coverage[engine]
        ranked = audit.ai_ranking_presence[engine]
        prior = audit.prior_injected_share[engine]
        print(
            f"    {engine:<11} cited {cited:.0%}  ranked {ranked:.0%}  "
            f"prior-injected {prior:.0%}"
        )
    gap = audit.visibility_gap()
    where = "AI search" if gap > 0 else "traditional search"
    print(f"  visibility gap: {gap:+.0%} (stronger in {where})")


def main() -> None:
    world = World.build(StudyConfig(seed=7))
    auditor = BrandAuditor(world)

    # 1. Audits.
    popular_audit = auditor.audit(POPULAR, auditor.default_queries(POPULAR, 25, 42))
    niche_audit = auditor.audit(NICHE, auditor.default_queries(NICHE, 25, 42))
    show_audit(popular_audit)
    show_audit(niche_audit)

    # 2. Causal campaign tests for the niche brand.
    print(f"\n=== campaign experiments for {niche_audit.entity_name} ===")
    lab = InterventionLab(world)
    plans = [
        ContentPlan(
            name="fresh earned reviews", entity_id=NICHE,
            source_type=SourceType.EARNED, page_count=5, age_days=7,
        ),
        ContentPlan(
            name="stale earned reviews", entity_id=NICHE,
            source_type=SourceType.EARNED, page_count=5, age_days=500,
        ),
        ContentPlan(
            name="brand product pages", entity_id=NICHE,
            source_type=SourceType.BRAND, page_count=5, age_days=7,
        ),
        ContentPlan(
            name="social threads", entity_id=NICHE,
            source_type=SourceType.SOCIAL, page_count=5, age_days=7,
        ),
    ]
    outcomes = lab.evaluate(plans, query_count=25, query_seed=42)
    for outcome in outcomes:
        print(
            f"  {outcome.plan.name:<22} AI citation lift {outcome.ai_citation_lift():+.1%}  "
            f"SERP lift {outcome.serp_lift():+.1%}"
        )

    # 3. Dissect the query space: where exactly is the brand weak?
    print(f"\n=== query-pattern dissection for {niche_audit.entity_name} ===")
    pattern = QueryPatternAnalyzer(world).analyze(NICHE, queries_per_segment=10)
    print(pattern.render())

    # 4. The plan.
    print()
    print(recommend(niche_audit, outcomes).render())


if __name__ == "__main__":
    main()
