"""Benchmark: regenerate Figure 2 (overlap on popular vs niche entities).

Paper shape: niche queries raise AI-vs-Google overlap by a few points for
most models while GPT-4o barely moves and stays lowest; the unique-domain
ratio declines (74.2% -> 68.6%) and cross-model overlap rises.
"""

from repro.core.report import render_fig2
from repro.engines.registry import AI_ENGINE_NAMES


def test_fig2_popular_niche(benchmark, study, record_result):
    result = benchmark.pedantic(
        study.domain_overlap_popular_niche, rounds=1, iterations=1
    )
    record_result("fig2", render_fig2(result))

    raised = sum(result.overlap_shift(s) > 0 for s in AI_ENGINE_NAMES)
    assert raised >= 3
    assert (
        result.vs_google_niche.unique_domain_ratio
        < result.vs_google_popular.unique_domain_ratio
    )
    assert (
        result.vs_google_niche.cross_model_overlap
        > result.vs_google_popular.cross_model_overlap
    )
