"""Benchmark: regenerate Figure 3 (source typology by intent and model).

Paper shape: Google balanced (41/34/26 earned/social/brand) and stable
across intents; Claude the most earned-concentrated with ~no social; all
AI engines swing sharply toward brand for transactional intent.
"""

from repro.core.report import render_fig3
from repro.engines.registry import AI_ENGINE_NAMES
from repro.entities.intents import Intent
from repro.webgraph.domains import SourceType


def test_fig3_typology(benchmark, study, record_result):
    result = benchmark.pedantic(study.source_typology, rounds=1, iterations=1)
    record_result("fig3", render_fig3(result))

    assert result.share("Google", SourceType.SOCIAL) > 0.15
    claude_earned = result.share("Claude", SourceType.EARNED)
    assert claude_earned == max(
        result.share(s, SourceType.EARNED) for s in AI_ENGINE_NAMES
    )
    for system in AI_ENGINE_NAMES:
        assert result.intent_share(
            Intent.TRANSACTIONAL, system, SourceType.BRAND
        ) > result.intent_share(Intent.CONSIDERATION, system, SourceType.BRAND)
