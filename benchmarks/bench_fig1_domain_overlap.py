"""Benchmark: regenerate Figure 1 (AI-vs-Google domain overlap).

Paper series: GPT-4o 4.0% < Gemini 11.1% < Claude 12.6% < Perplexity
15.2% mean Jaccard overlap with Google's top-10 domains over ranking
queries.  The reproduction must preserve the ordering and the "uniformly
low" level; absolute values run higher on the ~400-domain synthetic web.
"""

from repro.analysis.overlap import domain_overlap_by_vertical, system_pair_overlap
from repro.core.report import render_fig1
from repro.entities.queries import ranking_queries


def _cross_system_matrix(study) -> str:
    """The full Figure 1 cross-system view (every pair of systems)."""
    world = study.world
    queries = ranking_queries(
        world.catalog, count=min(120, world.config.sizes.ranking_queries),
        seed=world.config.seed + 11,
    )
    answers = {
        name: engine.answer_all(queries) for name, engine in world.engines.items()
    }
    matrix = system_pair_overlap(answers)
    lines = ["  cross-system matrix (mean Jaccard):"]
    for (a, b), value in sorted(matrix.items(), key=lambda kv: -kv[1]):
        lines.append(f"    {a:<11} x {b:<11} {100 * value:5.1f}%")
    lines.append("  per-vertical GPT-4o/Perplexity overlap vs Google:")
    for vertical, report in sorted(
        domain_overlap_by_vertical(answers, queries).items()
    ):
        gpt = report.mean_overlap.get("GPT-4o", 0.0)
        perplexity = report.mean_overlap.get("Perplexity", 0.0)
        lines.append(
            f"    {vertical:<15} GPT-4o {100 * gpt:5.1f}%   "
            f"Perplexity {100 * perplexity:5.1f}%"
        )
    return "\n".join(lines)


def test_fig1_domain_overlap(benchmark, study, record_result):
    result = benchmark.pedantic(
        study.domain_overlap_ranking, rounds=1, iterations=1
    )
    record_result("fig1", render_fig1(result) + "\n" + _cross_system_matrix(study))

    ordered = [name for name, __ in result.ordered_by_overlap()]
    assert ordered[0] == "GPT-4o"
    assert ordered[-1] == "Perplexity"
    assert all(v < 0.35 for v in result.mean_overlap.values())
