"""Benchmark: parallel runner scaling on the Figure 1 workload.

Runs the fig1 experiment sequentially (``workers=1``) and through the
process pool (``workers=4``) on the same world, with every memo cleared
before each timed run so both start cold.  Asserts the runner's
determinism invariant unconditionally — the parallel ``OverlapReport``
and its rendered text must be byte-identical to the sequential ones —
and asserts the >=2x wall-clock speedup wherever the host actually has
the cores to show it (a single-core CI box cannot, and is exempt).
"""

import os
import time

from repro.core.report import render_fig1
from repro.core.runner import StudyRunner
from repro.core.study import ComparativeStudy

#: Cores needed before the speedup assertion is meaningful.
SPEEDUP_WORKERS = 4
SPEEDUP_FLOOR = 2.0


def _cold(world) -> None:
    for engine in world.engines.values():
        engine.clear_cache()
    world.evidence_cache.clear()


def _timed_fig1(world, workers: int, timings: dict) -> object:
    _cold(world)
    study = ComparativeStudy(world, runner=StudyRunner(world, workers=workers))
    started = time.perf_counter()
    result = study.domain_overlap_ranking()
    timings[workers] = time.perf_counter() - started
    return result


def test_runner_scaling_fig1(world, benchmark, record_result):
    timings: dict[int, float] = {}

    sequential = _timed_fig1(world, 1, timings)
    parallel = benchmark.pedantic(
        lambda: _timed_fig1(world, SPEEDUP_WORKERS, timings),
        rounds=1,
        iterations=1,
    )

    # Determinism is the acceptance bar: byte-identical at any width.
    assert sequential == parallel
    assert render_fig1(sequential) == render_fig1(parallel)

    speedup = timings[1] / timings[SPEEDUP_WORKERS]
    cores = os.cpu_count() or 1
    record_result(
        "runner_scaling",
        "\n".join(
            [
                "Runner scaling — Figure 1 workload "
                f"({world.config.sizes.ranking_queries} queries, "
                f"{len(world.engines)} engines, {cores} cores)",
                f"  sequential (workers=1):          {timings[1]:7.2f}s",
                f"  process pool (workers={SPEEDUP_WORKERS}):        "
                f"{timings[SPEEDUP_WORKERS]:7.2f}s",
                f"  speedup: {speedup:.2f}x",
                "  outputs byte-identical: yes",
            ]
        ),
    )

    if cores >= SPEEDUP_WORKERS:
        assert speedup >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x speedup at "
            f"workers={SPEEDUP_WORKERS} on {cores} cores, got {speedup:.2f}x"
        )
