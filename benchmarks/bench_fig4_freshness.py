"""Benchmark: regenerate Figure 4 (article-age distributions).

Paper shape: AI engines cite newer pages than Google in both verticals
(electronics medians 62-90 days vs Google 130; automotive 148-217 vs
493); automotive runs several times older than electronics throughout.
"""

from repro.core.report import render_fig4


def test_fig4_freshness(benchmark, study, record_result):
    result = benchmark.pedantic(study.freshness, rounds=1, iterations=1)
    record_result("fig4", render_fig4(result))

    for report in (result.electronics, result.automotive):
        google = report.median_age_days["Google"]
        for system in ("GPT-4o", "Claude", "Perplexity"):
            assert report.median_age_days[system] < google
    for system in ("Google", "Claude", "GPT-4o", "Perplexity"):
        assert (
            result.automotive.median_age_days[system]
            > result.electronics.median_age_days[system]
        )
