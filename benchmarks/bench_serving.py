"""Benchmark: the serving tier under a zipfian request stream.

Drains one deterministic load-generator stream through
:class:`repro.serve.ServeLoop` on the shared benchmark world — cold
caches, four workers — and records what `BENCH_serving.json` tracks:
service-latency percentiles, throughput, and the hit/coalesce/miss
split.  The determinism contract is asserted unconditionally: the
answer digest must be byte-identical to a sequential (``workers=1``)
drain of the same stream, and misses must equal the number of distinct
``(engine, cache_key)`` pairs exactly.

Timing numbers land in the ``last_run`` section of
``BENCH_serving.json``; the ``smoke`` section (the baselines
``tools/serve_smoke.py`` gates against) is preserved untouched.
"""

import json
import os
import pathlib
import time

from repro.serve import LoadProfile, answers_digest, generate_requests

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_serving.json"

WORKERS = 4

FAST_PROFILE = LoadProfile(
    requests=600, qps=400.0, burstiness=4.0, zipf_s=1.1, pool_size=64, seed=7
)
PAPER_PROFILE = LoadProfile(
    requests=4000, qps=400.0, burstiness=4.0, zipf_s=1.1, pool_size=256, seed=7
)


def _profile() -> LoadProfile:
    if os.environ.get("REPRO_BENCH_SCALE", "fast") == "paper":
        return PAPER_PROFILE
    return FAST_PROFILE


def _cold(world) -> None:
    for engine in world.engines.values():
        engine.clear_cache()
    world.evidence_cache.clear()


def _distinct_keys(requests) -> int:
    return len({(r.engine, r.query.cache_key) for r in requests})


def test_serving_stream(world, benchmark, record_result):
    profile = _profile()
    requests = generate_requests(world.catalog, profile)

    # Sequential reference drain: the determinism pin.
    _cold(world)
    reference = world.serve_loop(workers=1)
    expected_digest = answers_digest(reference.serve(requests))

    loop_box = {}

    def drain():
        _cold(world)
        loop = world.serve_loop(workers=WORKERS)
        started = time.perf_counter()
        results = loop.serve(requests)
        loop_box["wall"] = time.perf_counter() - started
        loop_box["loop"] = loop
        return results

    results = benchmark.pedantic(drain, rounds=1, iterations=1)

    loop = loop_box["loop"]
    snapshot = loop.stats.snapshot()
    digest = answers_digest(results)

    # Determinism is the acceptance bar, same as the batch runner:
    # byte-identical answers at any width, and exactly one computation
    # per distinct cold key (memo + single-flight).
    assert digest == expected_digest
    assert snapshot.outcomes["miss"] == _distinct_keys(requests)
    assert snapshot.requests == profile.requests

    payload = {}
    if BENCH_JSON.exists():
        try:
            payload = json.loads(BENCH_JSON.read_text())
        except ValueError:
            payload = {}
    payload["last_run"] = {
        "scale": os.environ.get("REPRO_BENCH_SCALE", "fast"),
        "workers": WORKERS,
        "answers_digest": digest,
        "profile": {
            "requests": profile.requests,
            "qps": profile.qps,
            "burstiness": profile.burstiness,
            "zipf_s": profile.zipf_s,
            "pool_size": profile.pool_size,
            "seed": profile.seed,
        },
        "serving": snapshot.payload(),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    record_result(
        "serving",
        "\n".join(
            [
                f"Serving — {profile.requests} requests, "
                f"{snapshot.outcomes['miss']} distinct computations, "
                f"workers={WORKERS}",
                f"  outcomes: "
                + "  ".join(
                    f"{name} {count}"
                    for name, count in snapshot.outcomes.items()
                ),
                f"  duplicate absorption: "
                f"{100.0 * snapshot.duplicate_absorption:.1f}%",
                f"  throughput: {snapshot.throughput_rps:,.0f} req/s",
                f"  service latency ms: p50 {snapshot.service.p50_ms:.3f}  "
                f"p90 {snapshot.service.p90_ms:.3f}  "
                f"p99 {snapshot.service.p99_ms:.3f}",
                f"  digest: {digest[:16]} (== sequential reference)",
            ]
        ),
    )
