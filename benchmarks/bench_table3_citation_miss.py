"""Benchmark: regenerate Table 3 (citation-miss rates on SUV queries).

Paper row: Toyota .06, Honda .03, Kia .10, Chevrolet .26, Cadillac .58,
Infiniti .73 — mainstream makes are consistently evidence-supported while
peripheral ones frequently appear without citations; overall, 16% of
ranked entities lacked snippet support.
"""

from repro.core.report import render_table3


def test_table3_citation_miss(benchmark, study, record_result):
    result = benchmark.pedantic(study.citation_misses, rounds=1, iterations=1)
    record_result("table3", render_table3(result))

    assert result.representative["Toyota"] < 0.15
    assert result.representative["Honda"] < 0.15
    mainstream = (
        result.representative["Toyota"] + result.representative["Honda"]
    ) / 2
    peripheral = (
        result.representative["Cadillac"] + result.representative["Infiniti"]
    ) / 2
    assert peripheral > mainstream + 0.25
    assert 0.05 <= result.overall_miss_rate <= 0.35
