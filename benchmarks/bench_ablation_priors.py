"""Ablation: remove the pre-training prior (prior_weight = 0).

DESIGN.md claims the prior is the mechanism behind popular-entity
stability (Table 1) and citation misses (Table 3).  With the prior
ablated, the model becomes a pure retrieval reader: popular rankings
must lose their stability advantage, and prior-injected (uncited)
entities must largely vanish from rankings.
"""

import dataclasses

from repro.analysis.citations import citation_miss_rates
from repro.analysis.perturbations import PerturbationKind, sensitivity
from repro.core.study import ComparativeStudy
from repro.llm.model import GroundingMode, SimulatedLLM


def _run(world, study, llm, runs=6):
    workload = study._perturbation_queries()
    deltas = {}
    for setting, queries in workload.items():
        values = []
        for query in queries[:10]:
            context = study._evidence_context(query)
            if len(query.entities) < 2 or not len(context):
                continue
            values.append(
                sensitivity(
                    llm, query.text, list(query.entities), context,
                    PerturbationKind.SNIPPET_SHUFFLE,
                    mode=GroundingMode.NORMAL, runs=runs, seed=1,
                ).delta_avg
            )
        deltas[setting] = sum(values) / len(values)
    return deltas


def test_ablation_no_prior(benchmark, world, study, record_result):
    base_llm = world.reference_llm
    ablated_config = dataclasses.replace(base_llm.config, prior_weight=0.0)
    ablated_llm = SimulatedLLM(base_llm.knowledge, ablated_config)

    def run_both():
        return _run(world, study, base_llm), _run(world, study, ablated_llm)

    base, ablated = benchmark.pedantic(run_both, rounds=1, iterations=1)

    # With priors, popular rankings are much more shuffle-stable than
    # niche ones; without priors the gap must shrink substantially.
    base_gap = base["niche"] - base["popular"]
    ablated_gap = ablated["niche"] - ablated["popular"]
    record_result(
        "ablation_priors",
        "Ablation — prior_weight=0 (SS normal delta_avg)\n"
        f"  with priors:    popular {base['popular']:.2f}  niche {base['niche']:.2f}"
        f"  (gap {base_gap:.2f})\n"
        f"  without priors: popular {ablated['popular']:.2f}  niche {ablated['niche']:.2f}"
        f"  (gap {ablated_gap:.2f})",
    )
    assert base_gap > 0.5
    assert ablated_gap < base_gap * 0.6


def test_ablation_no_prior_kills_citation_misses(benchmark, world, study, record_result):
    """Without priors, Table 3's uncited peripheral makes disappear."""
    from repro.entities.queries import ranking_queries

    base_llm = world.reference_llm
    ablated_llm = SimulatedLLM(
        base_llm.knowledge,
        dataclasses.replace(base_llm.config, prior_weight=0.0),
    )
    queries = ranking_queries(
        world.catalog, verticals=("suvs",), count=40, seed=23, id_prefix="abl"
    )
    candidates = [e.id for e in world.catalog.in_vertical("suvs")]

    def miss_rate(llm):
        answers = []
        for query in queries:
            context = study._evidence_context(query)
            answers.append(
                llm.rank_entities(
                    query.text, candidates, context,
                    mode=GroundingMode.NORMAL, top_k=10,
                )
            )
        return citation_miss_rates(answers).overall_miss_rate

    def run_both():
        return miss_rate(base_llm), miss_rate(ablated_llm)

    base, ablated = benchmark.pedantic(run_both, rounds=1, iterations=1)
    record_result(
        "ablation_priors_misses",
        "Ablation — prior_weight=0 (overall citation-miss rate)\n"
        f"  with priors:    {base:.2f}\n"
        f"  without priors: {ablated:.2f}",
    )
    assert ablated < base
