"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper artifact (figure or table) and saves
the rendered rows/series under ``benchmarks/results/`` so a
``pytest benchmarks/ --benchmark-only`` run leaves the reproduced numbers
on disk next to the timing data.

Scale: ``REPRO_BENCH_SCALE=paper`` runs the paper's full workload sizes
(1,000 ranking queries, 10 perturbation runs, ...); the default ``fast``
profile uses reduced sizes that preserve every shape conclusion and keep
the whole suite within a couple of minutes.
"""

import json
import os
import pathlib

import pytest

from repro.core import StudyConfig, World
from repro.core.config import WorkloadSizes
from repro.core.study import ComparativeStudy

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_search.json"

FAST_SIZES = WorkloadSizes(
    ranking_queries=250,
    comparison_popular=50,
    comparison_niche=50,
    intent_queries=150,
    freshness_queries_per_vertical=30,
    perturbation_queries=16,
    perturbation_runs=8,
    pairwise_queries=8,
    citation_queries=60,
)

PAPER_SIZES = WorkloadSizes()


def _sizes() -> WorkloadSizes:
    if os.environ.get("REPRO_BENCH_SCALE", "fast") == "paper":
        return PAPER_SIZES
    return FAST_SIZES


@pytest.fixture(scope="session")
def world():
    return World.build(StudyConfig(seed=7, sizes=_sizes()))


@pytest.fixture(scope="session")
def corpus_10x():
    """A 10x-density corpus for the sharded-build scaling benches."""
    from repro.entities import build_default_catalog
    from repro.webgraph.corpus import CorpusConfig, CorpusGenerator
    from repro.webgraph.domains import build_default_registry

    registry = build_default_registry()
    catalog = build_default_catalog()
    return CorpusGenerator(
        registry, catalog, CorpusConfig(seed=7, pages_per_volume_unit=20.0)
    ).generate()


@pytest.fixture(scope="session")
def study(world):
    return ComparativeStudy(world)


def pytest_sessionfinish(session, exitstatus):
    """Record search-substrate timings into ``BENCH_search.json``.

    Substrate benches are rewritten into the ``last_run`` section; the
    shard-scaling benches (``test_bench_sharded_build_*``) additionally
    land in ``sharded_build.curves``, next to the ``gate`` quotient
    ``tools/perf_smoke.py`` maintains.  The checked-in ``baseline``
    (pre/post fast-path numbers) and ``smoke_ratios`` (consumed by
    ``tools/perf_smoke.py``) sections are preserved.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    timings = {}
    curves = {}
    for bench in bench_session.benchmarks:
        if "bench_search_substrate" not in bench.fullname or bench.has_error:
            continue
        stats = bench.stats
        entry = {
            "mean_ns": round(stats.mean * 1e9, 1),
            "median_ns": round(stats.median * 1e9, 1),
            "min_ns": round(stats.min * 1e9, 1),
            "stddev_ns": round(stats.stddev * 1e9, 1),
            "rounds": stats.rounds,
        }
        timings[bench.name] = entry
        if "sharded_build" in bench.name:
            curves[bench.name] = entry
    if not timings:
        return
    payload = {}
    if BENCH_JSON.exists():
        try:
            payload = json.loads(BENCH_JSON.read_text())
        except ValueError:
            payload = {}
    payload["last_run"] = {
        "scale": os.environ.get("REPRO_BENCH_SCALE", "fast"),
        "benchmarks": timings,
    }
    if curves:
        payload.setdefault("sharded_build", {})["curves"] = curves
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def record_result():
    """Writer that persists a rendered artifact under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(experiment_id: str, text: str) -> None:
        (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return write
