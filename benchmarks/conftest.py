"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper artifact (figure or table) and saves
the rendered rows/series under ``benchmarks/results/`` so a
``pytest benchmarks/ --benchmark-only`` run leaves the reproduced numbers
on disk next to the timing data.

Scale: ``REPRO_BENCH_SCALE=paper`` runs the paper's full workload sizes
(1,000 ranking queries, 10 perturbation runs, ...); the default ``fast``
profile uses reduced sizes that preserve every shape conclusion and keep
the whole suite within a couple of minutes.
"""

import os
import pathlib

import pytest

from repro.core import StudyConfig, World
from repro.core.config import WorkloadSizes
from repro.core.study import ComparativeStudy

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

FAST_SIZES = WorkloadSizes(
    ranking_queries=250,
    comparison_popular=50,
    comparison_niche=50,
    intent_queries=150,
    freshness_queries_per_vertical=30,
    perturbation_queries=16,
    perturbation_runs=8,
    pairwise_queries=8,
    citation_queries=60,
)

PAPER_SIZES = WorkloadSizes()


def _sizes() -> WorkloadSizes:
    if os.environ.get("REPRO_BENCH_SCALE", "fast") == "paper":
        return PAPER_SIZES
    return FAST_SIZES


@pytest.fixture(scope="session")
def world():
    return World.build(StudyConfig(seed=7, sizes=_sizes()))


@pytest.fixture(scope="session")
def study(world):
    return ComparativeStudy(world)


@pytest.fixture(scope="session")
def record_result():
    """Writer that persists a rendered artifact under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(experiment_id: str, text: str) -> None:
        (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return write
