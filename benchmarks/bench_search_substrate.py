"""Performance micro-benchmarks for the search substrate.

Not a paper artifact: these time the hot paths a downstream user pays
for — index construction, BM25 scoring, organic search end-to-end, and
PageRank over the link graph.

A ``pytest benchmarks/ --benchmark-only`` run records the substrate
timings into ``BENCH_search.json`` at the repo root (see
``conftest.pytest_sessionfinish``); ``tools/perf_smoke.py`` compares
live fast-vs-reference speedups against the ratios pinned there.
"""

import pytest

from repro.search.bm25 import BM25Scorer
from repro.search.engine import SearchEngine
from repro.search.index import InvertedIndex
from repro.search.pagerank import pagerank
from repro.search.sharding import (
    ShardedSearchEngine,
    build_shard_indexes,
    partition_pages,
)


def test_bench_index_build(benchmark, world):
    def build():
        index = InvertedIndex()
        index.add_all(world.corpus.pages)
        return index

    index = benchmark(build)
    assert index.doc_count == len(world.corpus)


def test_bench_bm25_query(benchmark, world):
    scorer = BM25Scorer(world.search_engine.index)
    scores = benchmark(scorer.score_all, "top 10 most reliable smartphones 2025")
    assert scores


def test_bench_organic_search(benchmark, world):
    results = benchmark(world.search_engine.search, "best laptops for students", 10)
    assert results


def test_bench_pagerank(benchmark, world):
    ranks = benchmark(pagerank, world.corpus.link_graph)
    assert abs(sum(ranks.values()) - 1.0) < 1e-6


def test_bench_engine_answer(benchmark, world):
    from repro.entities.queries import ranking_queries

    query = ranking_queries(world.catalog, count=1, seed=9)[0]
    answer = benchmark(world.engines["GPT-4o"].answer, query)
    assert answer.citations


def test_bench_mixed_query_workload(benchmark, world):
    """Paper-shaped query mix through the full query path, cache-cold.

    The workload mirrors the study's query composition (ranking-heavy,
    plus comparison and intent queries) and runs both ``search`` and
    ``search_with_snippets``.  The query-result cache is cleared every
    round so the number measures ranking work, not cache hits; the
    snippet and index-side tables stay warm, as they do mid-study.
    """
    from repro.entities.queries import (
        comparison_queries,
        intent_queries,
        ranking_queries,
    )

    catalog = world.catalog
    texts = [q.text for q in ranking_queries(catalog, count=40, seed=5)]
    texts += [
        q.text
        for q in comparison_queries(catalog, n_popular=10, n_niche=10, seed=5)
    ]
    texts += [q.text for q in intent_queries(catalog, count=20, seed=5)]
    engine = world.search_engine

    def run() -> int:
        engine.clear_query_cache()
        hits = 0
        for text in texts:
            hits += len(engine.search(text, 10))
        for text in texts[:15]:
            hits += len(engine.search_with_snippets(text, k=6))
        return hits

    assert benchmark(run) > 0


def test_bench_search_engine_construction(benchmark, world):
    engine = benchmark.pedantic(
        lambda: SearchEngine(world.corpus, world.registry), rounds=2, iterations=1
    )
    assert engine.search("best hotels", k=5)


@pytest.mark.parametrize("shards", (1, 2, 4, 8))
def test_bench_sharded_build_1x(benchmark, world, shards):
    """Shard-scaling curve at the session corpus (parallel 4 builders).

    The ``conftest`` session hook collects these (and the 10x variants)
    into the ``sharded_build.curves`` section of ``BENCH_search.json``.
    """
    pages = world.corpus.pages
    groups = partition_pages(pages, shards)
    indexes = benchmark.pedantic(
        lambda: build_shard_indexes(groups, builders=4, executor="process"),
        rounds=2,
        iterations=1,
    )
    assert sum(index.doc_count for index in indexes) == len(pages)


@pytest.mark.parametrize("shards", (1, 2, 4, 8))
def test_bench_sharded_build_10x(benchmark, corpus_10x, shards):
    """Shard-scaling curve at the 10x corpus (the acceptance workload)."""
    pages = corpus_10x.pages
    groups = partition_pages(pages, shards)
    indexes = benchmark.pedantic(
        lambda: build_shard_indexes(groups, builders=4, executor="process"),
        rounds=1,
        iterations=1,
    )
    assert sum(index.doc_count for index in indexes) == len(pages)


def test_bench_sharded_organic_search(benchmark, world):
    """Scatter-gather query path at 4 shards, cache-cold each round."""
    engine = ShardedSearchEngine(world.corpus, world.registry, shards=4)

    def run():
        engine.clear_query_cache()
        return engine.search("best laptops for students", 10)

    assert benchmark(run)
