"""Ablation: Gemini's grounding depth.

DESIGN.md models Gemini as a reranker over Google's own results.  The
depth of that grounded pool is load-bearing for Figure 1: with a shallow
pool (top-10 only) Gemini can only recombine Google's winners, so its
domain overlap with Google must rise sharply; the calibrated depth (50)
gives it room to diverge.
"""

from repro.engines.gemini import GEMINI_POLICY, GeminiEngine
from repro.entities.queries import ranking_queries
from repro.stats import jaccard


def _mean_overlap(world, gemini, queries):
    total = 0.0
    for query in queries:
        google_domains = world.google().answer(query).cited_domains()
        total += jaccard(gemini.answer(query).cited_domains(), google_domains)
    return total / len(queries)


def test_ablation_grounding_depth(benchmark, world, record_result):
    base = world.engines["Gemini"]
    shallow = GeminiEngine(
        world.retriever, base.llm, world.catalog, world.search_engine,
        policy=GEMINI_POLICY, grounding_depth=10,
    )
    queries = ranking_queries(world.catalog, count=40, seed=8, id_prefix="gd")

    def run_both():
        return (
            _mean_overlap(world, base, queries),
            _mean_overlap(world, shallow, queries),
        )

    deep, shallow_overlap = benchmark.pedantic(run_both, rounds=1, iterations=1)
    record_result(
        "ablation_grounding",
        "Ablation — Gemini grounding depth (mean overlap with Google)\n"
        f"  depth 50 (calibrated): {deep:.1%}\n"
        f"  depth 10 (shallow):    {shallow_overlap:.1%}",
    )
    assert shallow_overlap > deep + 0.1
