"""Ablation: uniform attention (attention_decay = 0).

DESIGN.md attributes normal-mode order sensitivity to limited attention:
late snippets barely register, so reordering changes what the model
effectively reads.  With uniform attention, position carries no
information and the only order effect left is the fingerprint-derived
noise re-roll — niche sensitivity must drop toward the popular level.
"""

import dataclasses

from repro.analysis.perturbations import PerturbationKind, sensitivity
from repro.llm.model import GroundingMode, SimulatedLLM


def test_ablation_uniform_attention(benchmark, world, study, record_result):
    base_llm = world.reference_llm
    ablated_llm = SimulatedLLM(
        base_llm.knowledge,
        dataclasses.replace(base_llm.config, attention_decay=0.0),
    )
    queries = study._perturbation_queries()["niche"][:10]

    def niche_ss(llm):
        values = []
        for query in queries:
            context = study._evidence_context(query)
            if len(query.entities) < 2 or not len(context):
                continue
            values.append(
                sensitivity(
                    llm, query.text, list(query.entities), context,
                    PerturbationKind.SNIPPET_SHUFFLE,
                    mode=GroundingMode.NORMAL, runs=6, seed=2,
                ).delta_avg
            )
        return sum(values) / len(values)

    def run_both():
        return niche_ss(base_llm), niche_ss(ablated_llm)

    base, ablated = benchmark.pedantic(run_both, rounds=1, iterations=1)
    record_result(
        "ablation_attention",
        "Ablation — attention_decay=0 (niche SS normal delta_avg)\n"
        f"  decaying attention: {base:.2f}\n"
        f"  uniform attention:  {ablated:.2f}",
    )
    assert ablated < base
