"""Ablation: deterministic source selection (selection_jitter = 0).

DESIGN.md introduces per-(query, page) selection jitter to model the
query-to-query variety of commercial retrieval stacks.  Without it every
query in a vertical resolves to nearly the same sources, so the number
of distinct domains an engine cites across a workload must collapse.
"""

import dataclasses

from repro.engines.gpt4o import GPT4O_POLICY, Gpt4oEngine
from repro.entities.queries import ranking_queries


def test_ablation_no_jitter(benchmark, world, record_result):
    base_engine = world.engines["GPT-4o"]
    rigid_engine = Gpt4oEngine(
        world.retriever,
        base_engine.llm,
        world.catalog,
        policy=dataclasses.replace(GPT4O_POLICY, selection_jitter=0.0),
    )
    queries = ranking_queries(
        world.catalog, verticals=("smartphones",), count=40, seed=5, id_prefix="jit"
    )

    def distinct_domains(engine):
        domains = set()
        for query in queries:
            domains |= engine.answer(query).cited_domains()
        return len(domains)

    def run_both():
        return distinct_domains(base_engine), distinct_domains(rigid_engine)

    base, rigid = benchmark.pedantic(run_both, rounds=1, iterations=1)
    record_result(
        "ablation_jitter",
        "Ablation — selection_jitter=0 (distinct domains GPT-4o cites, "
        f"40 smartphone queries)\n"
        f"  with jitter:    {base}\n"
        f"  without jitter: {rigid}",
    )
    assert rigid < base
