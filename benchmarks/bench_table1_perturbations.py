"""Benchmark: regenerate Table 1 (SS / strict / ESI sensitivity).

Paper rows: popular 2.30 / 1.52 / 2.60, niche 4.15 / 0.46 / 4.63.  The
shape: niche normal-mode rankings are far more order-sensitive than
popular; strict grounding stabilizes both, niche dramatically below
popular; ESI is the largest niche cell.
"""

from repro.core.report import render_table1


def test_table1_perturbations(benchmark, study, record_result):
    result = benchmark.pedantic(
        study.perturbation_sensitivity, rounds=1, iterations=1
    )
    record_result("table1", render_table1(result))

    assert result.ss_normal["niche"] > result.ss_normal["popular"]
    assert result.ss_strict["popular"] < result.ss_normal["popular"]
    assert result.ss_strict["niche"] < result.ss_strict["popular"]
    assert result.esi["niche"] >= result.ss_normal["niche"] - 0.4
