"""Benchmark: regenerate Table 2 (holistic-vs-pairwise Kendall tau).

Paper rows: popular 0.911 / 1.000, niche 0.556 / 0.689.  The shape:
popular tau far above niche in both regimes; strict grounding raises tau
in both rows.
"""

from repro.core.report import render_table2


def test_table2_pairwise(benchmark, study, record_result):
    result = benchmark.pedantic(study.pairwise_agreement, rounds=1, iterations=1)
    record_result("table2", render_table2(result))

    assert result.tau_normal["popular"] > result.tau_normal["niche"] + 0.15
    assert result.tau_strict["popular"] > 0.9
    assert result.tau_strict["popular"] >= result.tau_normal["popular"]
    assert result.tau_strict["niche"] > result.tau_normal["niche"]
