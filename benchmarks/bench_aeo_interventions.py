"""Benchmark: the AEO intervention lab (Section 3.4 operationalized).

Measures the cost of a counterfactual campaign evaluation and asserts
the paper-aligned outcome: fresh earned placements lift a niche brand's
AI citation coverage more than stale or owned-media placements.
"""

from repro.aeo import ContentPlan, InterventionLab
from repro.webgraph.domains import SourceType

TARGET = "smartwatches:coros"


def test_aeo_campaign_comparison(benchmark, world, record_result):
    lab = InterventionLab(world)
    plans = [
        ContentPlan(
            name="fresh earned", entity_id=TARGET,
            source_type=SourceType.EARNED, page_count=5, age_days=7,
        ),
        ContentPlan(
            name="stale earned", entity_id=TARGET,
            source_type=SourceType.EARNED, page_count=5, age_days=500,
        ),
        ContentPlan(
            name="brand pages", entity_id=TARGET,
            source_type=SourceType.BRAND, page_count=5, age_days=7,
        ),
    ]
    outcomes = benchmark.pedantic(
        lab.evaluate, args=(plans,), kwargs={"query_count": 20, "query_seed": 1},
        rounds=1, iterations=1,
    )
    lines = ["AEO campaign comparison (niche brand: Coros)"]
    for outcome in outcomes:
        lines.append(
            f"  {outcome.plan.name:<14} AI lift {outcome.ai_citation_lift():+.1%}  "
            f"SERP lift {outcome.serp_lift():+.1%}"
        )
    record_result("aeo_interventions", "\n".join(lines))

    by_name = {o.plan.name: o for o in outcomes}
    assert by_name["fresh earned"].ai_citation_lift() >= by_name["stale earned"].ai_citation_lift()
    assert by_name["fresh earned"].ai_citation_lift() > 0
