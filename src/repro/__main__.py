"""Command-line interface: ``python -m repro``.

Subcommands:

* ``list`` — show the experiment registry (paper artifact, workload).
* ``run [ids...]`` — run experiments and print the paper-style tables;
  ``--workers N`` fans engine workloads over a worker pool (results are
  identical for any N), ``--stats`` prints runner/cache statistics, and
  ``--json PATH`` additionally archives the raw results.
* ``calibration`` — print the calibration index (what each fitted
  parameter is constrained by).
* ``world`` — build a world and print its inventory.
* ``replicate --seeds 1 2 3`` — rerun the headline metrics across seeds
  and report claim stability with bootstrap CIs.
* ``snapshot PATH`` — archive the world's corpus as a JSON-lines file.
* ``serve`` — run the answer-serving loop over a warm world under a
  deterministic zipfian load (see :mod:`repro.serve`); ``--bench-json``
  records latency percentiles and throughput (``BENCH_serving.json``).
* ``lint`` — run detlint, the determinism & reproducibility linter,
  over the library source (see :mod:`repro.devtools.detlint`).
* ``conclint`` — run the interprocedural concurrency-safety analyzer
  over the library source (see :mod:`repro.devtools.conclint`).
* ``locklint`` — run the lock-discipline & blocking-hazard analyzer
  over the library source (see :mod:`repro.devtools.locklint`).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.core.calibration import calibration_report
from repro.core.config import StudyConfig, WorkloadSizes
from repro.core.experiments import EXPERIMENTS, run_experiment
from repro.core.export import results_to_json
from repro.core.report import render_stats
from repro.core.study import ComparativeStudy
from repro.core.world import World

FAST_SIZES = WorkloadSizes(
    ranking_queries=250,
    comparison_popular=50,
    comparison_niche=50,
    intent_queries=150,
    freshness_queries_per_vertical=30,
    perturbation_queries=16,
    perturbation_runs=8,
    pairwise_queries=8,
    citation_queries=60,
)


def _positive_int(raw: str) -> int:
    value = int(raw)
    if value < 1:
        raise argparse.ArgumentTypeError("must be at least 1")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Navigating the Shift' (EDBT 2026)",
    )
    study_options = argparse.ArgumentParser(add_help=False)
    study_options.add_argument(
        "--seed", type=int, default=7, help="study seed (default 7)"
    )
    study_options.add_argument(
        "--scale",
        choices=("fast", "paper"),
        default="fast",
        help="workload sizes: reduced 'fast' profile or the paper's full sizes",
    )
    study_options.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="worker pool width for engine fan-out "
        "(default: $REPRO_WORKERS or 1 = sequential; results are "
        "identical for any value)",
    )
    study_options.add_argument(
        "--executor",
        choices=("process", "thread"),
        default="process",
        help="pool kind for --workers > 1 (default: process)",
    )
    study_options.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        metavar="N",
        help="document-partition search across N shards "
        "(default: $REPRO_SHARDS or 0 = single index; results are "
        "identical for any value)",
    )
    study_options.add_argument(
        "--resident-shards",
        action="store_true",
        default=None,
        help="keep each search shard resident in a supervised worker "
        "process (requires --shards >= 1; default: $REPRO_RESIDENT_SHARDS; "
        "results are identical, the scatter just crosses a real process "
        "boundary)",
    )
    study_options.add_argument(
        "--corpus-scale",
        type=float,
        default=None,
        metavar="X",
        help="corpus size multiplier, e.g. 10 or 100 for the scale-out "
        "profiles (default 1.0)",
    )
    chaos_options = argparse.ArgumentParser(add_help=False)
    chaos_options.add_argument(
        "--chaos",
        action="append",
        default=None,
        metavar="SITE[@MATCH]:RATE[:FAILURES[:KIND]]",
        help="inject deterministic faults at a site (repeatable), e.g. "
        "'engine.answer:0.2:2:error' or 'engine.answer@Gemini:1.0:inf'; "
        "an all-digit match targets one shard id at search.shard "
        "('search.shard@3:1.0:inf:crash' kills every scatter to shard 3); "
        "implies the resilience layer even with an empty plan",
    )
    chaos_options.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed for the fault plan's deterministic selection rolls (default 0)",
    )
    chaos_options.add_argument(
        "--fail-fast",
        action="store_true",
        help="strict mode: propagate injected faults instead of degrading",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the experiment registry")
    sub.add_parser("calibration", help="print the calibration index")
    sub.add_parser(
        "world", parents=[study_options], help="build a world and print its inventory"
    )

    run = sub.add_parser(
        "run", parents=[study_options, chaos_options], help="run experiments"
    )
    run.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help="experiment ids (default: all)",
    )
    run.add_argument("--json", type=pathlib.Path, help="archive raw results as JSON")
    run.add_argument(
        "--stats",
        action="store_true",
        help="print runner/cache statistics after the experiments",
    )
    run.add_argument(
        "--journal",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="record completed (engine, chunk) results to a resume journal "
        "(default with --resume: results/run-journal.jsonl)",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="replay completed chunks from the journal; only missing work runs",
    )

    replicate_cmd = sub.add_parser(
        "replicate", help="rerun headline metrics across seeds"
    )
    replicate_cmd.add_argument(
        "--seeds", type=int, nargs="+", default=[1, 2, 3], help="seeds to replicate"
    )

    snapshot = sub.add_parser(
        "snapshot", parents=[study_options], help="archive the corpus"
    )
    snapshot.add_argument("path", type=pathlib.Path, help="snapshot destination")

    serve = sub.add_parser(
        "serve",
        parents=[study_options, chaos_options],
        help="run the answer-serving loop under a deterministic generated load",
    )
    serve.add_argument(
        "--requests",
        type=_positive_int,
        default=512,
        help="requests in the generated stream (default 512)",
    )
    serve.add_argument(
        "--qps",
        type=float,
        default=64.0,
        help="long-run arrival rate in requests per simulated second (default 64)",
    )
    serve.add_argument(
        "--burstiness",
        type=float,
        default=4.0,
        help="mean burst size; 1 is a plain Poisson stream (default 4)",
    )
    serve.add_argument(
        "--zipf-s",
        type=float,
        default=1.1,
        help="zipf exponent over query popularity ranks (default 1.1)",
    )
    serve.add_argument(
        "--pool-size",
        type=_positive_int,
        default=96,
        help="distinct queries in the sampled pool (default 96)",
    )
    serve.add_argument(
        "--engine",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict the stream to an engine (repeatable; default: full fleet)",
    )
    serve.add_argument(
        "--max-pending",
        type=_positive_int,
        default=None,
        help="admission window before submitters block (default 4 x workers)",
    )
    serve.add_argument(
        "--bench-json",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="record latency percentiles + throughput (e.g. BENCH_serving.json)",
    )

    ask = sub.add_parser(
        "ask", parents=[study_options],
        help="pose one query to all five engines and compare the answers",
    )
    ask.add_argument("query", help="the query text")
    ask.add_argument(
        "--vertical",
        default=None,
        help="vertical id for entity ranking (default: inferred from the query)",
    )
    ask.add_argument(
        "--full", action="store_true", help="print full answer texts, not just citations"
    )

    from repro.devtools.common.cli import register_tool_parsers

    register_tool_parsers(sub)
    return parser


def _config(args: argparse.Namespace) -> StudyConfig:
    sizes = WorkloadSizes() if args.scale == "paper" else FAST_SIZES
    kwargs = dict(seed=args.seed, sizes=sizes)
    if getattr(args, "workers", None) is not None:
        kwargs["workers"] = args.workers
    if getattr(args, "executor", None) is not None:
        kwargs["executor"] = args.executor
    if getattr(args, "shards", None) is not None:
        kwargs["search_shards"] = args.shards
    if getattr(args, "resident_shards", None) is not None:
        kwargs["resident_shards"] = args.resident_shards
    if getattr(args, "corpus_scale", None) is not None:
        kwargs["corpus_scale"] = args.corpus_scale
    return StudyConfig(**kwargs)


def _cmd_list() -> int:
    for spec in EXPERIMENTS.values():
        print(f"{spec.id:<8} {spec.paper_artifact:<9} {spec.description}")
        print(f"{'':8} workload: {spec.workload}")
    return 0


def _cmd_world(args: argparse.Namespace) -> int:
    start = time.time()  # detlint: ignore[DET002] -- operator-facing CLI timing
    world = World.build(_config(args))
    elapsed = time.time() - start  # detlint: ignore[DET002] -- operator-facing CLI timing
    print(f"built in {elapsed:.1f}s (seed {args.seed})")
    print(f"  pages:    {len(world.corpus)}")
    print(f"  domains:  {len(world.corpus.domains())}")
    print(f"  entities: {len(world.catalog)}")
    print(f"  engines:  {', '.join(world.engines)}")
    print(f"  link graph: {len(world.corpus.link_graph)} nodes, "
          f"{world.corpus.link_graph.edge_count()} edges")
    return 0


def _install_chaos(args: argparse.Namespace, world: World) -> bool:
    """Wire the resilience layer when ``--chaos``/``--fail-fast`` ask for it.

    Returns False (after printing to stderr) on a malformed spec.
    """
    if args.chaos is None and not args.fail_fast:
        return True
    from repro.resilience import FaultPlan, ResilienceConfig, ResilienceContext

    try:
        plan = FaultPlan.parse(",".join(args.chaos or ()), seed=args.chaos_seed)
    except ValueError as exc:
        print(f"bad --chaos spec: {exc}", file=sys.stderr)
        return False
    world.install_resilience(
        ResilienceContext(ResilienceConfig(plan=plan, fail_fast=args.fail_fast))
    )
    return True


def _cmd_run(args: argparse.Namespace) -> int:
    wanted = args.experiments or list(EXPERIMENTS)
    unknown = [e for e in wanted if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    world = World.build(_config(args))
    if not _install_chaos(args, world):
        return 2
    journal = None
    if args.journal is not None or args.resume:
        from repro.resilience import RunJournal

        path = args.journal or pathlib.Path("results") / "run-journal.jsonl"
        journal = RunJournal(path, resume=args.resume)
        if args.resume and len(journal):
            print(f"resuming: {len(journal)} completed chunk(s) in {path}")
    from repro.core.runner import StudyRunner

    study = ComparativeStudy(world, runner=StudyRunner(world, journal=journal))
    results = {}
    for experiment_id in wanted:
        start = time.time()  # detlint: ignore[DET002] -- operator-facing CLI timing
        result, text = run_experiment(experiment_id, world, study=study)
        results[experiment_id] = result
        print(f"\n[{experiment_id}] ({time.time() - start:.1f}s)")  # detlint: ignore[DET002]
        print(text)
    if args.stats:
        print()
        print(render_stats(study))
    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(results_to_json(results))
        print(f"\nraw results written to {args.json}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.core.report import render_serve_stats
    from repro.serve import LoadProfile, answers_digest, generate_requests

    world = World.build(_config(args))
    if not _install_chaos(args, world):
        return 2
    try:
        profile = LoadProfile(
            requests=args.requests,
            qps=args.qps,
            burstiness=args.burstiness,
            zipf_s=args.zipf_s,
            pool_size=args.pool_size,
            engines=tuple(args.engine or ()),
            seed=args.seed,
        )
    except ValueError as exc:
        print(f"bad load profile: {exc}", file=sys.stderr)
        return 2
    requests = generate_requests(world.catalog, profile)
    workers = args.workers if args.workers is not None else 4
    loop = world.serve_loop(workers=workers, max_pending=args.max_pending)
    results = loop.serve(requests)
    digest = answers_digest(results)
    snapshot = loop.stats.snapshot()
    print(render_serve_stats(snapshot))
    print(f"  workers: {workers}")
    print(f"  answers digest: {digest}")
    if args.bench_json is not None:
        payload = {}
        if args.bench_json.exists():
            payload = json.loads(args.bench_json.read_text())
        payload["serving"] = {
            **snapshot.payload(),
            "workers": workers,
            "answers_digest": digest,
            "profile": {
                "requests": profile.requests,
                "qps": profile.qps,
                "burstiness": profile.burstiness,
                "zipf_s": profile.zipf_s,
                "pool_size": profile.pool_size,
                "seed": profile.seed,
            },
        }
        args.bench_json.parent.mkdir(parents=True, exist_ok=True)
        args.bench_json.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"  serving bench recorded to {args.bench_json}")
    return 0


def _cmd_replicate(args: argparse.Namespace) -> int:
    from repro.core.replication import replicate

    report = replicate(args.seeds)
    print(report.render())
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.webgraph.serialize import dump_corpus

    world = World.build(_config(args))
    dump_corpus(world.corpus, args.path)
    print(
        f"archived {len(world.corpus)} pages / "
        f"{world.corpus.link_graph.edge_count()} edges to {args.path}"
    )
    return 0


def _infer_vertical(world: World, query_text: str) -> str | None:
    """Pick the vertical whose vocabulary best matches the query."""
    from repro.entities.verticals import all_verticals
    from repro.search.tokenize import tokenize

    query_terms = set(tokenize(query_text))
    best, best_score = None, 0
    for vertical in all_verticals():
        vocabulary = set()
        for keyword in vertical.keywords + (vertical.noun,):
            vocabulary.update(tokenize(keyword))
        score = len(query_terms & vocabulary)
        if score > best_score:
            best, best_score = vertical.id, score
    return best


def _cmd_ask(args: argparse.Namespace) -> int:
    from repro.entities.queries import Query, QueryKind

    world = World.build(_config(args))
    vertical = args.vertical or _infer_vertical(world, args.query)
    if vertical is None:
        print("could not infer a vertical; pass --vertical", file=sys.stderr)
        return 2
    candidates = tuple(e.id for e in world.catalog.in_vertical(vertical))
    query = Query(
        id="ask",
        text=args.query,
        kind=QueryKind.RANKING if candidates else QueryKind.INTENT,
        vertical=vertical,
        entities=candidates,
    )
    print(f"query: {args.query}  (vertical: {vertical})\n")
    for name, engine in world.engines.items():
        answer = engine.answer(query)
        print(f"=== {name} ===")
        if args.full:
            print(answer.text)
        else:
            if answer.ranked_entities:
                names = [
                    world.catalog.get(e).name for e in answer.ranked_entities[:5]
                ]
                print(f"  top picks: {', '.join(names)}")
            domains = sorted(answer.cited_domains())
            print(f"  cites: {', '.join(domains) if domains else '(no citations)'}")
        print()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "calibration":
        print(calibration_report())
        return 0
    if args.command == "world":
        return _cmd_world(args)
    if args.command == "replicate":
        return _cmd_replicate(args)
    if args.command == "snapshot":
        return _cmd_snapshot(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "ask":
        return _cmd_ask(args)
    from repro.devtools.common.cli import run_tool_command

    tool_exit = run_tool_command(args.command, args)
    if tool_exit is not None:
        return tool_exit
    return _cmd_run(args)


if __name__ == "__main__":
    raise SystemExit(main())
