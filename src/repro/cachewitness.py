"""Runtime cache-staleness witness (``REPRO_CACHE_WITNESS=1``).

The static half of the cache-coherence contract is
:mod:`repro.devtools.cachelint`; this module is the dynamic half, the
exact pairing :mod:`repro.lockorder` provides for lock discipline.  With
``REPRO_CACHE_WITNESS=1`` every cache built through
:func:`witness_for` gets a live :class:`CacheWitness` that

* **fingerprints** each stored value at insert time (a structural
  digest, not ``id()`` and not the builtin ``hash()`` — detlint DET004
  forbids the latter on the result path) and re-verifies the
  fingerprint on every cached read, so a cached mutable value that some
  caller aliased and mutated post-insert (cachelint CACHE004) raises
  instead of silently serving the mutated object as if it were the
  computed one;
* stamps each entry with the owning structure's **generation counter**
  (the ``epochs`` supplier — e.g. the index epoch behind a query cache)
  and checks the stamp on every cached read and on every re-insert, so
  an entry outliving the epoch it was computed under (cachelint
  CACHE002/CACHE003) raises instead of skewing freshness results;
* rejects a **re-insert under the same key with a different value**:
  everything in this codebase is deterministic, so two different values
  for one key mean the key does not capture everything the value
  depends on — the epoch-key rule violated dynamically.

All failures raise :class:`CacheCoherenceViolation` deterministically.
Disabled (the default), :func:`witness_for` returns ``None`` and the
instrumented caches skip a single ``is not None`` check — the serving
digest is byte-identical with the witness on or off, which CI pins by
running the serve smoke under ``REPRO_CACHE_WITNESS=1``.

Like :func:`repro.lockorder.witness_lock`, enablement is decided at
cache construction time via
:func:`repro.core.config.cache_witness_enabled`.

This module is exempt from cachelint by construction (it *implements*
the verification layer, so its internal tables are not cache sites),
mirroring ``repro.lockorder``'s locklint exemption.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections.abc import Callable, Hashable
from typing import Any

from repro.core.config import cache_witness_enabled
from repro.lockorder import witness_lock

__all__ = ["CacheCoherenceViolation", "CacheWitness", "fingerprint", "witness_for"]


class CacheCoherenceViolation(RuntimeError):
    """A cached read or insert broke the cache-coherence contract."""


#: Recursion bound for structural fingerprints.  Cached values in this
#: codebase are shallow (tuples of dataclasses of scalars); the bound
#: only guards pathological object graphs.
_MAX_DEPTH = 8


def _canon(value: Any, depth: int = 0) -> str:
    """A deterministic structural rendering of ``value``.

    The default ``object.__repr__`` embeds the object's address, which
    is both nondeterministic and mutation-blind, so containers,
    dataclasses and plain attribute objects are rendered field by field
    instead.  Two structurally equal values always render identically;
    mutating a value changes its rendering.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    if depth >= _MAX_DEPTH:
        return f"<depth:{type(value).__name__}>"
    if isinstance(value, (list, tuple)):
        inner = ",".join(_canon(item, depth + 1) for item in value)
        return f"{type(value).__name__}[{inner}]"
    if isinstance(value, (set, frozenset)):
        inner = ",".join(sorted(_canon(item, depth + 1) for item in value))
        return f"{type(value).__name__}{{{inner}}}"
    if isinstance(value, dict):
        items = sorted(
            (_canon(k, depth + 1), _canon(v, depth + 1)) for k, v in value.items()
        )
        return "dict{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{f.name}={_canon(getattr(value, f.name), depth + 1)}"
            for f in dataclasses.fields(value)
        )
        return f"{type(value).__name__}({fields})"
    state = getattr(value, "__dict__", None)
    if isinstance(state, dict):
        inner = ",".join(
            f"{name}={_canon(attr, depth + 1)}"
            for name, attr in sorted(state.items())
        )
        return f"{type(value).__name__}({inner})"
    return f"<{type(value).__name__}>"


def fingerprint(value: Any) -> str:
    """A short stable digest of a value's structure and content."""
    return hashlib.blake2b(
        _canon(value).encode("utf-8"), digest_size=16
    ).hexdigest()


class CacheWitness:
    """Insert-time fingerprints and epoch stamps for one cache instance.

    One witness per cache object (never shared), so identical keys in
    two caches — two engines memoizing the same query — cannot collide.
    The witness table is keyed by the cache's own keys and deliberately
    survives eviction: a later re-insert of an evicted key must still
    reproduce the original fingerprint, otherwise the key was not
    epoch-complete.  :meth:`clear` (wired to the cache's own ``clear``)
    is the only legitimate wholesale invalidation.
    """

    def __init__(
        self,
        site: str,
        epochs: Callable[[], Hashable] | None = None,
    ) -> None:
        self.site = site
        self._epochs = epochs
        #: key -> (value fingerprint, epoch stamp at insert).
        self._seen: dict[Hashable, tuple[str, Hashable]] = {}
        self._lock = witness_lock("CacheWitness._lock")

    def _stamp(self) -> Hashable:
        return self._epochs() if self._epochs is not None else None

    def record(self, key: Hashable, value: Any) -> None:
        """Witness an insert; raises if it contradicts a previous one."""
        digest = fingerprint(value)
        stamp = self._stamp()
        with self._lock:
            previous = self._seen.get(key)
            self._seen[key] = (digest, stamp)
        if previous is not None and previous[0] != digest:
            raise CacheCoherenceViolation(
                f"{self.site}: re-insert under key {key!r} changed the "
                f"stored value (fingerprint {previous[0]} -> {digest}); "
                "the key does not capture everything the value depends on "
                "(epoch component missing?)"
            )

    def verify(self, key: Hashable, value: Any) -> None:
        """Witness a cached read; raises on mutation or epoch drift."""
        with self._lock:
            entry = self._seen.get(key)
        if entry is None:
            # A hit on an entry inserted before the witness attached
            # (or inherited across a fork): adopt it as ground truth.
            self.record(key, value)
            return
        stored_digest, stored_stamp = entry
        digest = fingerprint(value)
        if digest != stored_digest:
            raise CacheCoherenceViolation(
                f"{self.site}: cached value for key {key!r} was mutated "
                f"after insert (fingerprint {stored_digest} -> {digest}); "
                "a caller aliases the stored object"
            )
        stamp = self._stamp()
        if stamp != stored_stamp:
            raise CacheCoherenceViolation(
                f"{self.site}: cached read at epoch {stamp!r} of an entry "
                f"inserted at epoch {stored_stamp!r}; the entry outlived "
                "its generation without invalidation"
            )

    def forget(self, key: Hashable) -> None:
        """Drop one key's witness entry (paired with explicit deletes)."""
        with self._lock:
            self._seen.pop(key, None)

    def clear(self) -> None:
        """Wholesale invalidation, paired with the cache's ``clear()``."""
        with self._lock:
            self._seen.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._seen)


def witness_for(
    site: str, epochs: Callable[[], Hashable] | None = None
) -> CacheWitness | None:
    """A :class:`CacheWitness` for one cache site, or ``None``.

    ``site`` names the cache for diagnostics (``"Class._attr"``, the
    same convention as lock sites).  ``epochs`` optionally supplies the
    generation stamp of the structure the cached values derive from
    (e.g. ``lambda: index.epoch``); content-addressed caches pass
    nothing.  Returns ``None`` unless ``REPRO_CACHE_WITNESS=1`` — the
    instrumented hot paths then skip witnessing with one ``is not
    None`` test.
    """
    if not cache_witness_enabled():
        return None
    return CacheWitness(site, epochs=epochs)
