"""Seeded corpus generation: the synthetic web itself.

The generator walks every (vertical, domain) pair in the world, decides how
many pages the domain publishes there, and emits :class:`Page` objects with
realistic titles, bodies, stances, dates and URLs.  Three properties are
deliberate and load-bearing:

* **Exposure tracks popularity.**  Entity mentions are sampled with weight
  ``popularity ** EXPOSURE_ALPHA``, so popular entities accumulate far more
  coverage than niche ones.  This single mechanism later drives both the
  pre-training prior strength (Section 3) and the citation-miss gradient
  (Table 3).
* **Dates come from domain age profiles scaled per vertical**, so earned
  media is fresher than brand pages, and automotive is older than
  electronics (Figure 4's shape).
* **The link graph is built from the same pages**, so Google's authority
  signal reflects actual coverage rather than a hand-picked ranking.
"""

from __future__ import annotations

import random
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.entities.catalog import Entity, EntityCatalog
from repro.entities.verticals import Vertical, get_vertical
from repro.webgraph.dates import DEFAULT_STUDY_DATE, StudyClock
from repro.webgraph.domains import DomainRecord, DomainRegistry, SourceType
from repro.webgraph.linkgraph import LinkGraph
from repro.webgraph.pages import DateMarkup, Page, PageKind

import datetime as dt

__all__ = ["Corpus", "CorpusConfig", "CorpusGenerator", "EXPOSURE_ALPHA"]


# Exponent shaping how strongly page coverage concentrates on popular
# entities.  >1 means super-linear concentration, matching the long-tailed
# attention economy of the real web.
EXPOSURE_ALPHA = 1.8

_DATE_MARKUP_WEIGHTS = (
    (DateMarkup.META, 0.30),
    (DateMarkup.JSON_LD, 0.25),
    (DateMarkup.TIME_TAG, 0.20),
    (DateMarkup.BODY_TEXT, 0.15),
    (DateMarkup.NONE, 0.10),
)


@dataclass(frozen=True)
class CorpusConfig:
    """Knobs for corpus generation.

    ``pages_per_volume_unit`` scales the whole corpus: each domain
    publishes ``publish_volume * pages_per_volume_unit`` pages per covered
    vertical (general-interest domains publish at reduced depth).
    """

    seed: int = 7
    pages_per_volume_unit: float = 2.0
    general_interest_factor: float = 0.4
    brand_pages_per_entity: int = 4
    study_date: dt.date = DEFAULT_STUDY_DATE

    def __post_init__(self) -> None:
        if self.pages_per_volume_unit <= 0:
            raise ValueError("pages_per_volume_unit must be positive")
        if not 0 < self.general_interest_factor <= 1:
            raise ValueError("general_interest_factor must be in (0, 1]")
        if self.brand_pages_per_entity < 1:
            raise ValueError("brand_pages_per_entity must be at least 1")


@dataclass
class Corpus:
    """The generated web: pages plus the derived link graph and indexes."""

    pages: list[Page]
    link_graph: LinkGraph
    clock: StudyClock
    _by_domain: dict[str, list[Page]] = field(default_factory=dict)
    _by_entity: dict[str, list[Page]] = field(default_factory=dict)
    _by_vertical: dict[str, list[Page]] = field(default_factory=dict)
    _by_url: dict[str, Page] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for page in self.pages:
            self._by_domain.setdefault(page.domain, []).append(page)
            self._by_vertical.setdefault(page.vertical, []).append(page)
            self._by_url[page.url] = page
            for entity_id in page.entities:
                self._by_entity.setdefault(entity_id, []).append(page)

    def __len__(self) -> int:
        return len(self.pages)

    def by_domain(self, domain: str) -> list[Page]:
        """Pages hosted on ``domain`` (empty if unknown)."""
        return list(self._by_domain.get(domain, []))

    def by_entity(self, entity_id: str) -> list[Page]:
        """Pages substantively covering ``entity_id``."""
        return list(self._by_entity.get(entity_id, []))

    def by_vertical(self, vertical_id: str) -> list[Page]:
        """Pages in ``vertical_id``."""
        return list(self._by_vertical.get(vertical_id, []))

    def by_url(self, url: str) -> Page:
        """The page at ``url``; raises ``KeyError`` for unknown URLs."""
        return self._by_url[url]

    def entity_exposure(self, entity_id: str) -> int:
        """Number of pages covering the entity — the pre-training proxy."""
        return len(self._by_entity.get(entity_id, []))

    def domains(self) -> list[str]:
        """All domains that actually published at least one page."""
        return list(self._by_domain)


class CorpusGenerator:
    """Deterministic generator of a :class:`Corpus` from a seed."""

    def __init__(
        self,
        registry: DomainRegistry,
        catalog: EntityCatalog,
        config: CorpusConfig | None = None,
    ) -> None:
        self._registry = registry
        self._catalog = catalog
        self._config = config or CorpusConfig()
        self._clock = StudyClock(self._config.study_date)

    def generate(self) -> Corpus:
        """Build the corpus: register brand domains, emit pages, link them."""
        self._register_brand_domains()
        rng = random.Random(self._config.seed)
        pages: list[Page] = []
        graph = LinkGraph()
        graph.add_nodes(self._registry.names())

        doc_id = 0
        for vertical_id in self._catalog.verticals():
            vertical = get_vertical(vertical_id)
            entities = self._catalog.in_vertical(vertical_id)
            for domain in self._registry.covering(vertical_id):
                for page in self._domain_pages(
                    rng, domain, vertical, entities, doc_id
                ):
                    pages.append(page)
                    doc_id += 1
                    self._link_page(rng, graph, page, domain)
        return Corpus(pages=pages, link_graph=graph, clock=self._clock)

    # ------------------------------------------------------------------
    # Brand domains

    def _register_brand_domains(self) -> None:
        for entity in self._catalog:
            if entity.brand_domain is None:
                continue
            authority = 0.4 + 0.5 * entity.popularity
            self._registry.ensure_brand_domain(
                entity.brand_domain,
                entity.vertical,
                authority=authority,
                publish_volume=1.0 + 2.0 * entity.popularity,
            )

    # ------------------------------------------------------------------
    # Page emission

    def _page_budget(self, domain: DomainRecord, vertical: Vertical) -> int:
        budget = domain.publish_volume * self._config.pages_per_volume_unit
        if not domain.verticals:  # general-interest: shallow everywhere
            budget *= self._config.general_interest_factor
        return max(1, round(budget))

    def _domain_pages(
        self,
        rng: random.Random,
        domain: DomainRecord,
        vertical: Vertical,
        entities: Sequence[Entity],
        next_doc_id: int,
    ) -> Iterator[Page]:
        if not entities:
            return
        if domain.source_type is SourceType.BRAND and not domain.is_retailer:
            own = [e for e in entities if e.brand_domain == domain.name]
            if not own:
                return
            emitted = 0
            for entity in own:
                # Big brands run big content operations.
                count = max(
                    1,
                    round(self._config.brand_pages_per_entity * (0.3 + entity.popularity)),
                )
                for _ in range(count):
                    yield self._make_page(
                        rng, domain, vertical, [entity],
                        PageKind.PRODUCT, next_doc_id + emitted,
                    )
                    emitted += 1
            return

        budget = self._page_budget(domain, vertical)
        for i in range(budget):
            kind = self._choose_kind(rng, domain)
            chosen = self._sample_entities(rng, entities, kind)
            yield self._make_page(
                rng, domain, vertical, chosen, kind, next_doc_id + i
            )

    def _choose_kind(self, rng: random.Random, domain: DomainRecord) -> PageKind:
        if domain.source_type is SourceType.SOCIAL:
            return PageKind.FORUM_THREAD
        if domain.is_retailer:
            return PageKind.PRODUCT
        roll = rng.random()
        if roll < 0.30:
            return PageKind.RANKING
        if roll < 0.62:
            return PageKind.REVIEW
        if roll < 0.74:
            return PageKind.COMPARISON
        if roll < 0.88:
            return PageKind.NEWS
        return PageKind.GUIDE

    def _sample_entities(
        self, rng: random.Random, entities: Sequence[Entity], kind: PageKind
    ) -> list[Entity]:
        weights = [e.popularity ** EXPOSURE_ALPHA + 0.005 for e in entities]
        if kind is PageKind.RANKING:
            target = min(len(entities), rng.randint(6, 10))
        elif kind is PageKind.COMPARISON:
            target = min(len(entities), 2)
        elif kind in (PageKind.REVIEW, PageKind.PRODUCT):
            target = min(len(entities), rng.randint(1, 2))
        elif kind is PageKind.FORUM_THREAD:
            target = min(len(entities), rng.randint(1, 4))
        else:  # NEWS, GUIDE
            target = min(len(entities), rng.randint(1, 3))

        chosen: list[Entity] = []
        pool = list(entities)
        pool_weights = list(weights)
        for _ in range(target):
            pick = rng.choices(range(len(pool)), weights=pool_weights, k=1)[0]
            chosen.append(pool.pop(pick))
            pool_weights.pop(pick)
        if len(chosen) > 2:
            # Multi-entity pieces usually lead with the famous names --
            # listicles put Toyota above Infiniti -- but editorial angle
            # adds noise (a "hidden gem" roundup leads with a mid-tier
            # pick).  Page entity order is prominence order, which
            # downstream snippet visibility (the first few entities)
            # depends on.
            chosen.sort(key=lambda e: -(e.popularity + rng.gauss(0.0, 0.25)))
        return chosen

    def _stance(self, rng: random.Random, entity: Entity, domain: DomainRecord) -> float:
        base = 2.0 * entity.true_quality - 1.0
        sigma = 0.25 if domain.source_type is SourceType.EARNED else 0.45
        if domain.source_type is SourceType.BRAND:
            # Owned media is promotional: stance skews positive.
            base = 0.5 + 0.5 * base
            sigma = 0.15
        return max(-1.0, min(1.0, rng.gauss(base, sigma)))

    def _sample_markup(self, rng: random.Random) -> DateMarkup:
        roll = rng.random()
        cumulative = 0.0
        for markup, weight in _DATE_MARKUP_WEIGHTS:
            cumulative += weight
            if roll < cumulative:
                return markup
        return DateMarkup.NONE

    def _make_page(
        self,
        rng: random.Random,
        domain: DomainRecord,
        vertical: Vertical,
        entities: Sequence[Entity],
        kind: PageKind,
        doc_id: int,
    ) -> Page:
        profile = domain.effective_age_profile().scaled(vertical.age_scale)
        age = profile.sample_age(rng)
        published = self._clock.date_for_age(age)

        title = self._title(rng, domain, vertical, entities, kind)
        body = self._body(rng, vertical, entities, kind)
        stance = {e.id: self._stance(rng, e, domain) for e in entities}

        if domain.source_type is SourceType.EARNED:
            # Editorial quality correlates only loosely with authority, and
            # topic specialists out-review general-interest giants: an
            # RTINGS deep dive beats a wire-service listicle even though
            # Forbes has a hundred times the backlinks.  This decoupling is
            # what lets "prefer quality" (the AI engines) and "prefer
            # authority" (SEO) select genuinely different sources.
            specialist_bonus = 0.14 if domain.verticals else 0.0
            quality = min(
                1.0,
                max(0.0, rng.gauss(0.38 + 0.2 * domain.authority + specialist_bonus, 0.15)),
            )
            seo = min(1.0, max(0.0, rng.gauss(0.62, 0.15)))
        elif domain.source_type is SourceType.SOCIAL:
            quality = min(1.0, max(0.0, rng.gauss(0.48, 0.15)))
            # Big UGC platforms rank remarkably well in organic search.
            seo = min(1.0, max(0.0, rng.gauss(0.66, 0.15)))
        else:
            quality = min(1.0, max(0.0, rng.gauss(0.52, 0.1)))
            seo = min(1.0, max(0.0, rng.gauss(0.64, 0.12)))

        slug = "-".join(title.lower().split()[:6])
        slug = "".join(ch for ch in slug if ch.isalnum() or ch == "-")
        # A sprinkle of subdomain/path variety keeps URL normalization honest.
        host = domain.name if rng.random() < 0.7 else f"www.{domain.name}"
        url = f"https://{host}/{vertical.id.replace('_', '-')}/{slug}-{doc_id}"

        return Page(
            doc_id=doc_id,
            url=url,
            domain=domain.name,
            kind=kind,
            vertical=vertical.id,
            title=title,
            body=body,
            published=published,
            date_markup=self._sample_markup(rng),
            entities=tuple(e.id for e in entities),
            entity_stance=stance,
            quality=quality,
            seo_score=seo,
        )

    # ------------------------------------------------------------------
    # Text generation

    def _title(
        self,
        rng: random.Random,
        domain: DomainRecord,
        vertical: Vertical,
        entities: Sequence[Entity],
        kind: PageKind,
    ) -> str:
        primary = entities[0] if entities else None
        year = rng.choice(("2024", "2025", "2025"))
        if kind is PageKind.RANKING:
            qualifier = rng.choice(vertical.qualifiers)
            return f"The {len(entities)} {qualifier} {vertical.noun} of {year}"
        if kind is PageKind.REVIEW and primary:
            return f"{primary.name} review: {rng.choice(vertical.keywords)} tested"
        if kind is PageKind.COMPARISON and len(entities) >= 2:
            return f"{entities[0].name} vs {entities[1].name}: which {vertical.noun} win?"
        if kind is PageKind.NEWS and primary:
            return f"{primary.name} announces new {rng.choice(vertical.keywords)} update"
        if kind is PageKind.GUIDE:
            return f"How {rng.choice(vertical.keywords)} works: a guide to {vertical.noun}"
        if kind is PageKind.PRODUCT and primary:
            if domain.is_retailer:
                return f"Buy {primary.name} — deals and availability"
            return f"{primary.name} official: explore {vertical.noun}"
        if kind is PageKind.FORUM_THREAD and primary:
            # Community threads often *are* ranking questions verbatim,
            # which is why UGC ranks so well for consideration queries.
            roll = rng.random()
            if roll < 0.45:
                qualifier = rng.choice(vertical.qualifiers)
                return f"What are the {qualifier} {vertical.noun} right now? (discussion)"
            if roll < 0.7:
                return f"{primary.name} owners: worth it? ({vertical.noun} thread)"
            return f"Is {primary.name} actually good? ({vertical.noun} discussion)"
        return f"Notes on {vertical.noun}"

    _POSITIVE = ("excellent", "outstanding", "reliable", "impressive", "superb")
    _NEUTRAL = ("decent", "acceptable", "average", "serviceable")
    _NEGATIVE = ("disappointing", "inconsistent", "underwhelming", "flawed")

    def _stance_word(self, rng: random.Random, stance: float) -> str:
        if stance > 0.25:
            return rng.choice(self._POSITIVE)
        if stance < -0.25:
            return rng.choice(self._NEGATIVE)
        return rng.choice(self._NEUTRAL)

    def _body(
        self,
        rng: random.Random,
        vertical: Vertical,
        entities: Sequence[Entity],
        kind: PageKind,
    ) -> str:
        if kind is PageKind.PRODUCT and entities:
            # Product pages are promotional and topically thin: they name
            # the product and one or two features, not the vertical's full
            # vocabulary — which is why they rank for navigational and
            # transactional queries but poorly for consideration ones.
            entity = entities[0]
            form = rng.choice(entity.surface_forms())
            keyword = rng.choice(vertical.keywords)
            return "\n".join(
                (
                    f"{form}: engineered for {keyword}.",
                    f"Discover what makes {form} stand out. Order today "
                    "with free shipping and easy returns.",
                )
            )
        sentences = []
        keywords = list(vertical.keywords)
        rng.shuffle(keywords)
        lead_kw = ", ".join(keywords[:3])
        sentences.append(
            f"We looked closely at {vertical.noun}, focusing on {lead_kw}."
        )
        for entity in entities:
            stance = 2.0 * entity.true_quality - 1.0
            word = self._stance_word(rng, stance)
            form = rng.choice(entity.surface_forms())
            kw = rng.choice(vertical.keywords)
            sentences.append(
                f"{form} proved {word} in our {kw} assessment."
            )
        if kind is PageKind.RANKING and entities:
            ordered = sorted(entities, key=lambda e: -e.true_quality)
            listing = ", ".join(e.name for e in ordered)
            sentences.append(f"Our final order: {listing}.")
        if kind is PageKind.FORUM_THREAD:
            sentences.append(
                "Several commenters disagreed, citing personal experience."
            )
        sentences.append(
            f"For anyone choosing among {vertical.noun}, "
            f"{rng.choice(keywords)} remains the deciding factor."
        )
        return "\n".join(sentences)

    # ------------------------------------------------------------------
    # Link emission

    def _link_page(
        self,
        rng: random.Random,
        graph: LinkGraph,
        page: Page,
        domain: DomainRecord,
    ) -> None:
        graph.add_node(domain.name)
        if domain.source_type is SourceType.EARNED:
            # Editorial pages link to the brands they cover...
            for entity_id in page.entities:
                entity = self._catalog.get(entity_id)
                if entity.brand_domain and entity.brand_domain in self._registry:
                    graph.add_edge(domain.name, entity.brand_domain)
            # ...and frequently embed or cite UGC (YouTube videos, Reddit
            # threads), which is where the social platforms' enormous
            # real-world link authority comes from.
            if rng.random() < 0.5:
                social = [
                    d for d in self._registry.covering(page.vertical)
                    if d.source_type is SourceType.SOCIAL
                ]
                if social:
                    graph.add_edge(domain.name, rng.choice(social).name)
        elif domain.source_type is SourceType.SOCIAL:
            # Threads link to the editorial pieces they discuss.
            earned = self._registry.covering(page.vertical)
            earned = [d for d in earned if d.source_type is SourceType.EARNED]
            if earned:
                target = rng.choice(earned)
                graph.add_edge(domain.name, target.name)
            for entity_id in page.entities:
                entity = self._catalog.get(entity_id)
                if entity.brand_domain and rng.random() < 0.3:
                    if entity.brand_domain in self._registry:
                        graph.add_edge(domain.name, entity.brand_domain)
        elif domain.is_retailer:
            for entity_id in page.entities:
                entity = self._catalog.get(entity_id)
                if entity.brand_domain and entity.brand_domain in self._registry:
                    graph.add_edge(domain.name, entity.brand_domain)
