"""HTML rendering for synthetic pages.

The freshness analysis (Figure 4) must "extract page-level publication or
update dates (HTML meta, JSON-LD, <time> tags, and body text)".  To make
that extraction real rather than a lookup into ground truth, every page is
rendered to an HTML document that exposes its date through exactly the
markup strategy assigned to it (or not at all), and the extractor in
:mod:`repro.analysis.freshness` parses the document the way a crawler
would.
"""

from __future__ import annotations

import datetime as dt
import html as html_escape
import json

from repro.webgraph.pages import DateMarkup, Page

__all__ = ["render_page"]

_MONTHS = [
    "January", "February", "March", "April", "May", "June",
    "July", "August", "September", "October", "November", "December",
]


def _human_date(date: dt.date) -> str:
    """'March 3, 2025' — the prose form used in body-text dating."""
    return f"{_MONTHS[date.month - 1]} {date.day}, {date.year}"


def _head(page: Page) -> list[str]:
    parts = [
        "<head>",
        '<meta charset="utf-8">',
        f"<title>{html_escape.escape(page.title)}</title>",
    ]
    if page.date_markup is DateMarkup.META:
        iso = page.published.isoformat()
        parts.append(
            f'<meta property="article:published_time" content="{iso}T08:00:00Z">'
        )
        parts.append(f'<meta name="date" content="{iso}">')
    if page.date_markup is DateMarkup.JSON_LD:
        payload = {
            "@context": "https://schema.org",
            "@type": "Article",
            "headline": page.title,
            "datePublished": page.published.isoformat(),
            "dateModified": page.published.isoformat(),
        }
        parts.append(
            '<script type="application/ld+json">'
            + json.dumps(payload)
            + "</script>"
        )
    parts.append("</head>")
    return parts


def _byline(page: Page) -> str:
    if page.date_markup is DateMarkup.TIME_TAG:
        iso = page.published.isoformat()
        return (
            f'<p class="byline">By Staff · '
            f'<time datetime="{iso}">{_human_date(page.published)}</time></p>'
        )
    if page.date_markup is DateMarkup.BODY_TEXT:
        return f'<p class="byline">Published on {_human_date(page.published)}</p>'
    return '<p class="byline">By Staff</p>'


def render_page(page: Page) -> str:
    """Render a :class:`Page` to a complete HTML document.

    The document exposes the publication date only through the page's
    :class:`DateMarkup` strategy; pages with ``DateMarkup.NONE`` yield no
    extractable date, matching the extraction misses a real crawl suffers.
    """
    paragraphs = "\n".join(
        f"<p>{html_escape.escape(para)}</p>"
        for para in page.body.split("\n")
        if para.strip()
    )
    lines = ["<!DOCTYPE html>", '<html lang="en">']
    lines.extend(_head(page))
    lines.extend(
        [
            "<body>",
            "<article>",
            f"<h1>{html_escape.escape(page.title)}</h1>",
            _byline(page),
            paragraphs,
            "</article>",
            "</body>",
            "</html>",
        ]
    )
    return "\n".join(lines)
