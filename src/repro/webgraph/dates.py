"""Temporal model of the study.

The paper computes "source age in days" — the gap between a page's
publication/update date and the time of the study.  The reproduction pins
the study to a fixed :class:`StudyClock` so every run is deterministic, and
samples page ages from log-normal profiles (web content ages are heavily
right-skewed: a burst of fresh coverage plus a long tail of evergreen
pages, which is what the paper's age distributions in Figure 4 show).
"""

from __future__ import annotations

import datetime as dt
import math
import random
from dataclasses import dataclass

__all__ = ["AgeProfile", "StudyClock", "DEFAULT_STUDY_DATE"]


# The paper's crawl window is late 2025; any fixed date works since only
# *relative* ages matter.
DEFAULT_STUDY_DATE = dt.date(2025, 10, 1)


@dataclass(frozen=True)
class StudyClock:
    """A frozen 'now' for the whole study.

    All age computations are relative to :attr:`today`, which makes every
    experiment reproducible regardless of the wall clock.
    """

    today: dt.date = DEFAULT_STUDY_DATE

    def age_days(self, published: dt.date) -> int:
        """Age of a page published on ``published``, in days (>= 0).

        Pages "from the future" (clock skew, scheduled posts) are clamped
        to age zero, as a real crawler would treat them.
        """
        return max(0, (self.today - published).days)

    def date_for_age(self, age_days: int) -> dt.date:
        """The publication date corresponding to an age in days."""
        if age_days < 0:
            raise ValueError(f"age must be non-negative, got {age_days}")
        return self.today - dt.timedelta(days=age_days)


@dataclass(frozen=True)
class AgeProfile:
    """Log-normal age distribution for a class of pages.

    ``median_days`` is the distribution's median; ``sigma`` the log-space
    standard deviation (larger => heavier tail).  ``floor_days`` bounds how
    fresh a page can be (publishing latency), ``cap_days`` how stale
    (pages older than the cap are re-dated by site redesigns, which is why
    crawled ages rarely exceed a few years).
    """

    median_days: float
    sigma: float = 0.9
    floor_days: int = 1
    cap_days: int = 2200

    def __post_init__(self) -> None:
        if self.median_days <= 0:
            raise ValueError("median_days must be positive")
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        if not 0 <= self.floor_days <= self.cap_days:
            raise ValueError("floor/cap must satisfy 0 <= floor <= cap")

    def sample_age(self, rng: random.Random) -> int:
        """Draw an age in days from the profile."""
        mu = math.log(self.median_days)
        age = int(round(rng.lognormvariate(mu, self.sigma)))
        return max(self.floor_days, min(self.cap_days, age))

    def scaled(self, factor: float) -> "AgeProfile":
        """A copy with the median scaled by ``factor`` (tail shape kept).

        Used to derive vertical-specific profiles: automotive content
        cycles are slower than consumer electronics, so the same domain
        class gets an older profile there.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return AgeProfile(
            median_days=self.median_days * factor,
            sigma=self.sigma,
            floor_days=self.floor_days,
            cap_days=self.cap_days,
        )
