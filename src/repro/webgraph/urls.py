"""URL parsing and normalization to registrable domains.

Every overlap statistic in the paper starts from the same operation: take a
cited URL, extract its host, and normalize it to the registrable domain
(eTLD+1).  ``www.`` prefixes, ports, userinfo, trailing dots, uppercase
hosts and scheme-less citations (``techradar.com/best-phones``) all occur
in real engine output, so the normalizer handles each explicitly.
"""

from __future__ import annotations

from urllib.parse import urlsplit

from repro.webgraph.psl import PublicSuffixList, default_psl

__all__ = ["extract_host", "normalize_url", "registrable_domain"]


def extract_host(url: str) -> str:
    """Extract the hostname from a URL or bare-domain citation.

    Handles scheme-less inputs, userinfo, ports, and trailing dots.
    Raises ``ValueError`` when no plausible host is present.
    """
    candidate = url.strip()
    if not candidate:
        raise ValueError("empty URL")
    if "://" not in candidate:
        # Bare citations like "techradar.com/best-phones" or "//cdn.x.com/a".
        candidate = "http://" + candidate.lstrip("/")
    parts = urlsplit(candidate)
    host = parts.hostname
    if not host:
        raise ValueError(f"no hostname in URL {url!r}")
    host = host.rstrip(".").lower()
    if not host or "." not in host:
        raise ValueError(f"hostname {host!r} from {url!r} is not a public host")
    return host


def registrable_domain(url: str, psl: PublicSuffixList | None = None) -> str:
    """Normalize a URL to its registrable domain (eTLD+1).

    >>> registrable_domain("https://www.techradar.com/best/phones")
    'techradar.com'
    >>> registrable_domain("http://reviews.shop.example.co.uk:8080/x?a=1")
    'example.co.uk'
    """
    resolver = psl if psl is not None else default_psl()
    return resolver.registrable_domain(extract_host(url))


def normalize_url(url: str, psl: PublicSuffixList | None = None) -> str | None:
    """Best-effort registrable-domain normalization.

    Unlike :func:`registrable_domain` this returns ``None`` on inputs that
    cannot be normalized (malformed citations, bare public suffixes), which
    is how the analysis pipeline treats unusable citations: dropped, not
    fatal.
    """
    try:
        return registrable_domain(url, psl)
    except ValueError:
        return None
