"""The synthetic web ecosystem underlying the reproduction.

The paper's measurements consume three artifacts of the live web: URLs
(normalized to registrable domains), page HTML (for publication-date
extraction), and the implicit authority structure of the link graph (which
shapes Google's ranking).  This package builds all three synthetically:

* :mod:`repro.webgraph.psl` / :mod:`repro.webgraph.urls` — public-suffix
  aware URL normalization (eTLD+1), the exact operation the paper applies
  to every cited URL.
* :mod:`repro.webgraph.domains` — a registry of realistic domains typed as
  brand / earned / social, with per-vertical authority and publishing
  cadence.
* :mod:`repro.webgraph.pages` / :mod:`repro.webgraph.html` — page models
  rendered to real HTML with publication dates embedded in ``<meta>`` tags,
  JSON-LD, ``<time>`` elements and body text, so the freshness extractor
  exercises real parsing.
* :mod:`repro.webgraph.corpus` — a seeded generator that emits a corpus of
  pages whose per-entity coverage tracks entity popularity.
* :mod:`repro.webgraph.linkgraph` — a hyperlink graph over domains feeding
  PageRank in the search substrate.
"""

from repro.webgraph.corpus import Corpus, CorpusConfig, CorpusGenerator
from repro.webgraph.dates import StudyClock
from repro.webgraph.domains import (
    DomainRecord,
    DomainRegistry,
    SourceType,
    build_default_registry,
)
from repro.webgraph.linkgraph import LinkGraph
from repro.webgraph.pages import Page, PageKind
from repro.webgraph.urls import normalize_url, registrable_domain

__all__ = [
    "Corpus",
    "CorpusConfig",
    "CorpusGenerator",
    "DomainRecord",
    "DomainRegistry",
    "LinkGraph",
    "Page",
    "PageKind",
    "SourceType",
    "StudyClock",
    "build_default_registry",
    "normalize_url",
    "registrable_domain",
]
