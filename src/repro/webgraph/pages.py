"""Page models for the synthetic web.

A :class:`Page` is the unit everything else consumes: the search index
ingests its text, engines cite its URL, the typology classifier inspects
its domain and body, and the freshness analyzer parses its rendered HTML
(see :mod:`repro.webgraph.html`) for a publication date.
"""

from __future__ import annotations

import datetime as dt
import enum
from dataclasses import dataclass, field

__all__ = ["DateMarkup", "Page", "PageKind"]


class PageKind(enum.Enum):
    """The editorial formats the corpus generator produces."""

    RANKING = "ranking"          # "Top 10 ..." listicles
    REVIEW = "review"            # single-product deep dives
    COMPARISON = "comparison"    # "X vs Y" pieces
    NEWS = "news"                # launch / recall / update coverage
    GUIDE = "guide"              # explainers ("How does Wi-Fi 7 work?")
    PRODUCT = "product"          # brand/retailer product pages
    FORUM_THREAD = "thread"      # social discussion threads


class DateMarkup(enum.Enum):
    """How (and whether) a page exposes its publication date in HTML.

    The paper extracts dates from "HTML meta, JSON-LD, <time> tags, and
    body text"; real pages use any subset, and some none at all.  The
    corpus assigns one strategy per page so the extractor's multiple code
    paths are all exercised.
    """

    META = "meta"            # <meta property="article:published_time">
    JSON_LD = "json_ld"      # schema.org datePublished
    TIME_TAG = "time_tag"    # <time datetime="...">
    BODY_TEXT = "body_text"  # "Published March 3, 2025" in prose
    NONE = "none"            # no machine-readable date at all


@dataclass(frozen=True)
class Page:
    """A single synthetic web page.

    Attributes
    ----------
    doc_id:
        Dense integer id assigned by the corpus generator (index-friendly).
    url:
        Full URL; its registrable domain equals :attr:`domain`.
    domain:
        Registrable domain of the hosting site.
    kind:
        Editorial format.
    vertical:
        Vertical id the page belongs to.
    title / body:
        Text content (indexed by the search substrate).
    published:
        Ground-truth publication date.
    date_markup:
        Which HTML date-exposure strategy the renderer uses.
    entities:
        Ids of catalog entities substantively covered by the page, in
        order of prominence (first = primary subject).
    entity_stance:
        Per-entity sentiment in ``[-1, 1]`` — the evidence signal a reader
        (or an LLM consuming a snippet) would take away about each entity.
    quality:
        Editorial quality in ``[0, 1]``; feeds engine-side reranking.
    seo_score:
        How aggressively search-optimized the page is in ``[0, 1]``; feeds
        Google's ranking but not the AI engines' (a core asymmetry in the
        paper's SEO-vs-AEO discussion).
    """

    doc_id: int
    url: str
    domain: str
    kind: PageKind
    vertical: str
    title: str
    body: str
    published: dt.date
    date_markup: DateMarkup
    entities: tuple[str, ...] = ()
    entity_stance: dict[str, float] = field(default_factory=dict)
    quality: float = 0.5
    seo_score: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.quality <= 1.0:
            raise ValueError(f"quality must be in [0, 1], got {self.quality}")
        if not 0.0 <= self.seo_score <= 1.0:
            raise ValueError(f"seo_score must be in [0, 1], got {self.seo_score}")
        for entity, stance in self.entity_stance.items():
            if not -1.0 <= stance <= 1.0:
                raise ValueError(
                    f"stance for {entity!r} must be in [-1, 1], got {stance}"
                )

    @property
    def primary_entity(self) -> str | None:
        """The page's main subject, if it has one."""
        return self.entities[0] if self.entities else None

    def mentions(self, entity_id: str) -> bool:
        """Whether the page substantively covers ``entity_id``."""
        return entity_id in self.entities

    def text(self) -> str:
        """Title and body concatenated, for indexing."""
        return f"{self.title}\n{self.body}"
