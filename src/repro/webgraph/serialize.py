"""Corpus serialization: archive and reload a synthetic web.

A paper-scale corpus is cheap to regenerate, but archiving the exact web
a study ran against makes runs auditable: the JSON-lines snapshot plus a
:class:`StudyConfig` fully determines every number in EXPERIMENTS.md.
The format is line-oriented JSON — one header line, one line per page,
one line per link-graph edge — so snapshots diff cleanly under git.
"""

from __future__ import annotations

import datetime as dt
import io
import json
import pathlib

from repro.webgraph.corpus import Corpus
from repro.webgraph.dates import StudyClock
from repro.webgraph.linkgraph import LinkGraph
from repro.webgraph.pages import DateMarkup, Page, PageKind

__all__ = ["dump_corpus", "dumps_corpus", "load_corpus", "loads_corpus"]

_FORMAT = "repro-corpus"
_VERSION = 1


def _page_record(page: Page) -> dict:
    return {
        "kind": "page",
        "doc_id": page.doc_id,
        "url": page.url,
        "domain": page.domain,
        "page_kind": page.kind.value,
        "vertical": page.vertical,
        "title": page.title,
        "body": page.body,
        "published": page.published.isoformat(),
        "date_markup": page.date_markup.value,
        "entities": list(page.entities),
        "entity_stance": page.entity_stance,
        "quality": page.quality,
        "seo_score": page.seo_score,
    }


def _page_from_record(record: dict) -> Page:
    return Page(
        doc_id=record["doc_id"],
        url=record["url"],
        domain=record["domain"],
        kind=PageKind(record["page_kind"]),
        vertical=record["vertical"],
        title=record["title"],
        body=record["body"],
        published=dt.date.fromisoformat(record["published"]),
        date_markup=DateMarkup(record["date_markup"]),
        entities=tuple(record["entities"]),
        entity_stance=dict(record["entity_stance"]),
        quality=record["quality"],
        seo_score=record["seo_score"],
    )


def _write(corpus: Corpus, stream: io.TextIOBase) -> None:
    header = {
        "kind": "header",
        "format": _FORMAT,
        "version": _VERSION,
        "study_date": corpus.clock.today.isoformat(),
        "pages": len(corpus),
        "edges": corpus.link_graph.edge_count(),
        "nodes": corpus.link_graph.nodes(),
    }
    stream.write(json.dumps(header) + "\n")
    for page in corpus.pages:
        stream.write(json.dumps(_page_record(page)) + "\n")
    for source, target, weight in corpus.link_graph.edges():
        stream.write(
            json.dumps(
                {"kind": "edge", "source": source, "target": target, "weight": weight}
            )
            + "\n"
        )


def dumps_corpus(corpus: Corpus) -> str:
    """Serialize a corpus to a JSON-lines string."""
    buffer = io.StringIO()
    _write(corpus, buffer)
    return buffer.getvalue()


def dump_corpus(corpus: Corpus, path: str | pathlib.Path) -> None:
    """Serialize a corpus to a JSON-lines file."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as stream:
        _write(corpus, stream)


def _read(lines) -> Corpus:
    header = None
    pages: list[Page] = []
    graph = LinkGraph()
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("kind")
        if header is None and kind != "header":
            raise ValueError("snapshot is missing its header line")
        if kind == "header":
            if record.get("format") != _FORMAT:
                raise ValueError(f"not a {_FORMAT} snapshot")
            if record.get("version") != _VERSION:
                raise ValueError(
                    f"unsupported snapshot version {record.get('version')!r}"
                )
            header = record
            graph.add_nodes(record.get("nodes", []))
        elif kind == "page":
            pages.append(_page_from_record(record))
        elif kind == "edge":
            graph.add_edge(record["source"], record["target"], record["weight"])
        else:
            raise ValueError(f"unknown record kind {kind!r} at line {line_number}")
    if header is None:
        raise ValueError("snapshot is missing its header line")
    if header["pages"] != len(pages):
        raise ValueError(
            f"snapshot declares {header['pages']} pages but contains {len(pages)}"
        )
    clock = StudyClock(dt.date.fromisoformat(header["study_date"]))
    return Corpus(pages=pages, link_graph=graph, clock=clock)


def loads_corpus(text: str) -> Corpus:
    """Deserialize a corpus from a JSON-lines string."""
    return _read(text.splitlines())


def load_corpus(path: str | pathlib.Path) -> Corpus:
    """Deserialize a corpus from a JSON-lines file."""
    with pathlib.Path(path).open("r", encoding="utf-8") as stream:
        return _read(stream)
