"""Domain registry: the population of web sites in the synthetic ecosystem.

Section 2.2 of the paper classifies cited sources into three types:

* **brand** — official / owned media (manufacturer sites, retailer product
  pages),
* **earned** — independent editorial media (TechRadar, Consumer Reports),
* **social** — user-generated content (Reddit, YouTube, Quora).

Every domain in the registry carries its ground-truth type (the classifier
in :mod:`repro.llm.classify` must *recover* it, as GPT-4o does in the
paper), the verticals it covers, a baseline authority score (standing in
for backlink strength) and an age profile controlling how fresh its pages
are.  The curated catalog below mirrors the outlets the paper names
(TechRadar, Tom's Guide, RTINGS, CNET, Wikipedia, Consumer Reports, Car and
Driver, YouTube, BestBuy, cars.com, ...) plus a realistic supporting cast.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field, replace

from repro.webgraph.dates import AgeProfile

__all__ = [
    "DomainRecord",
    "DomainRegistry",
    "SourceType",
    "build_default_registry",
]


class SourceType(enum.Enum):
    """The paper's three-way source typology."""

    BRAND = "brand"
    EARNED = "earned"
    SOCIAL = "social"


# Default age profiles per source type.  Independent editorial outlets chase
# the news cycle (fresh); brand/retailer pages are long-lived product pages;
# social threads sit in between with a heavy tail.
_DEFAULT_AGE_PROFILES = {
    SourceType.EARNED: AgeProfile(median_days=75.0, sigma=0.95),
    SourceType.BRAND: AgeProfile(median_days=320.0, sigma=0.85),
    SourceType.SOCIAL: AgeProfile(median_days=160.0, sigma=1.15),
}


@dataclass(frozen=True)
class DomainRecord:
    """One registrable domain and its publishing characteristics.

    Attributes
    ----------
    name:
        The registrable domain, e.g. ``"techradar.com"``.
    source_type:
        Ground-truth brand/earned/social type.
    verticals:
        Vertical ids this domain covers; empty means general-interest
        (covers every vertical, with lower topical depth).
    authority:
        Baseline web authority in ``[0, 1]`` — the PageRank-like prior that
        feeds Google's ranking.
    publish_volume:
        Relative number of pages this domain contributes per covered
        vertical (scales corpus generation).
    age_profile:
        Distribution of page ages for this domain.
    is_retailer:
        Retailers (BestBuy, cars.com) are *owned* media like brands, but
        behave differently in sourcing (Perplexity mixes them in); flagged
        so engine personas and analyses can distinguish them.
    """

    name: str
    source_type: SourceType
    verticals: frozenset[str] = frozenset()
    authority: float = 0.5
    publish_volume: float = 1.0
    age_profile: AgeProfile | None = None
    is_retailer: bool = False

    def __post_init__(self) -> None:
        if not self.name or "." not in self.name:
            raise ValueError(f"domain name {self.name!r} is not registrable")
        if not 0.0 <= self.authority <= 1.0:
            raise ValueError(f"authority must be in [0, 1], got {self.authority}")
        if self.publish_volume <= 0:
            raise ValueError("publish_volume must be positive")

    def effective_age_profile(self) -> AgeProfile:
        """The domain's age profile, falling back to its type default."""
        if self.age_profile is not None:
            return self.age_profile
        return _DEFAULT_AGE_PROFILES[self.source_type]

    def covers(self, vertical: str) -> bool:
        """Whether this domain publishes in ``vertical``."""
        return not self.verticals or vertical in self.verticals


@dataclass
class DomainRegistry:
    """An ordered, name-unique collection of :class:`DomainRecord`."""

    _records: dict[str, DomainRecord] = field(default_factory=dict)

    def add(self, record: DomainRecord) -> None:
        """Register a domain; re-registering the same name is an error."""
        if record.name in self._records:
            raise ValueError(f"domain {record.name!r} already registered")
        self._records[record.name] = record

    def add_all(self, records: Iterable[DomainRecord]) -> None:
        for record in records:
            self.add(record)

    def get(self, name: str) -> DomainRecord:
        """Look up a domain by registrable name; raises ``KeyError``."""
        return self._records[name]

    def __contains__(self, name: str) -> bool:
        return name in self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[DomainRecord]:
        return iter(self._records.values())

    def names(self) -> list[str]:
        """All registered names, in registration order."""
        return list(self._records)

    def by_type(self, source_type: SourceType) -> list[DomainRecord]:
        """All domains of a given source type, in registration order."""
        return [r for r in self._records.values() if r.source_type is source_type]

    def covering(self, vertical: str) -> list[DomainRecord]:
        """All domains that publish in ``vertical``."""
        return [r for r in self._records.values() if r.covers(vertical)]

    def ensure_brand_domain(
        self,
        name: str,
        vertical: str,
        authority: float,
        publish_volume: float = 1.0,
    ) -> DomainRecord:
        """Register (or extend) the official brand domain for an entity.

        Entity catalogs call this while wiring the world: a brand that
        spans verticals (Samsung sells phones and laptops) accumulates
        verticals on its single record.
        """
        existing = self._records.get(name)
        if existing is None:
            record = DomainRecord(
                name=name,
                source_type=SourceType.BRAND,
                verticals=frozenset({vertical}),
                authority=authority,
                publish_volume=publish_volume,
            )
            self._records[name] = record
            return record
        if existing.source_type is not SourceType.BRAND:
            raise ValueError(
                f"domain {name!r} already registered as {existing.source_type.value}"
            )
        merged = replace(
            existing,
            verticals=existing.verticals | {vertical},
            authority=max(existing.authority, authority),
        )
        self._records[name] = merged
        return merged


def _earned(
    name: str,
    verticals: Iterable[str],
    authority: float,
    volume: float = 3.0,
    median_age: float | None = None,
) -> DomainRecord:
    profile = None
    if median_age is not None:
        profile = AgeProfile(median_days=median_age, sigma=0.95)
    return DomainRecord(
        name=name,
        source_type=SourceType.EARNED,
        verticals=frozenset(verticals),
        authority=authority,
        publish_volume=volume,
        age_profile=profile,
    )


def _social(
    name: str,
    authority: float,
    volume: float = 4.0,
    verticals: Iterable[str] = (),
) -> DomainRecord:
    return DomainRecord(
        name=name,
        source_type=SourceType.SOCIAL,
        verticals=frozenset(verticals),
        authority=authority,
        publish_volume=volume,
    )


def _retailer(name: str, verticals: Iterable[str], authority: float) -> DomainRecord:
    return DomainRecord(
        name=name,
        source_type=SourceType.BRAND,
        verticals=frozenset(verticals),
        authority=authority,
        publish_volume=2.5,
        is_retailer=True,
        age_profile=AgeProfile(median_days=240.0, sigma=0.8),
    )


# Vertical ids used across the study (authoritative list lives in
# repro.entities.verticals; these constants avoid typos in the catalog).
_ELECTRONICS = ("smartphones", "laptops", "smartwatches")
_AUTomotive = ("electric_cars", "suvs")
_TRAVEL = ("airlines", "hotels")


# Word material for the generated long tail of editorial outlets.  The
# real web's candidate space for any consumer query spans hundreds of
# mid-tier outlets; without that long tail every engine would be forced
# onto the same dozen domains and overlap statistics would be meaningless.
_TAIL_PREFIXES = (
    "daily", "the", "pro", "prime", "inside", "trusted", "smart", "modern",
    "honest", "expert", "true", "top", "real", "clear", "sharp", "first",
)
_TAIL_SUFFIXES = (
    "report", "review", "lab", "hub", "wire", "digest", "journal",
    "insider", "scout", "radar", "guide", "watch", "briefing", "index",
)
_TAIL_STEMS = {
    "smartphones": ("phone", "mobile", "handset", "android"),
    "laptops": ("laptop", "notebook", "ultrabook", "computing"),
    "smartwatches": ("watch", "wearable", "fitness", "tracker"),
    "electric_cars": ("ev", "electric", "charge", "volt"),
    "suvs": ("auto", "drive", "motor", "car"),
    "athletic_shoes": ("run", "shoe", "stride", "track"),
    "skincare": ("skin", "derm", "glow", "beauty"),
    "streaming": ("stream", "screen", "binge", "show"),
    "airlines": ("flight", "air", "travel", "wing"),
    "hotels": ("stay", "hotel", "suite", "lodging"),
    "credit_cards": ("card", "credit", "points", "rewards"),
    "family_law_toronto": ("law", "legal", "counsel"),
    "ultrarunning_gear": ("trail", "ultra", "endurance"),
    "espresso_gear": ("espresso", "coffee", "brew"),
}


def _long_tail_for(vertical: str, count: int, seed: int = 20250601) -> list[DomainRecord]:
    """Deterministic mid-tier editorial outlets covering one vertical."""
    # Imported at call time: repro.llm's package init reaches back into
    # this module (classify needs SourceType), so a top-level import of
    # the rng helper would be circular.
    from repro.llm.rng import derive_rng

    rng = derive_rng("tail", seed, vertical)
    stems = _TAIL_STEMS.get(vertical, ("consumer",))
    records = []
    seen: set[str] = set()
    attempts = 0
    while len(records) < count and attempts < count * 20:
        attempts += 1
        name = (
            rng.choice(_TAIL_PREFIXES)
            + rng.choice(stems)
            + rng.choice(_TAIL_SUFFIXES)
            + ".com"
        )
        if name in seen:
            continue
        seen.add(name)
        records.append(
            _earned(
                name,
                (vertical,),
                authority=round(rng.uniform(0.25, 0.65), 3),
                volume=round(rng.uniform(1.0, 3.0), 2),
                median_age=round(rng.uniform(55.0, 170.0), 1),
            )
        )
    return records


def _forums_for(vertical: str, count: int, seed: int = 20250601) -> list[DomainRecord]:
    """Vertical-specific community forums (social UGC long tail)."""
    from repro.llm.rng import derive_rng

    rng = derive_rng("forum", seed, vertical)
    stems = _TAIL_STEMS.get(vertical, ("consumer",))
    records = []
    seen: set[str] = set()
    attempts = 0
    while len(records) < count and attempts < count * 20:
        attempts += 1
        name = rng.choice(stems) + rng.choice(("forums", "community", "board")) + ".com"
        if name in seen:
            continue
        seen.add(name)
        records.append(
            DomainRecord(
                name=name,
                source_type=SourceType.SOCIAL,
                verticals=frozenset({vertical}),
                authority=round(rng.uniform(0.25, 0.55), 3),
                publish_volume=round(rng.uniform(1.5, 3.5), 2),
            )
        )
    return records


def build_default_registry(
    long_tail_per_vertical: int = 24,
    forums_per_vertical: int = 2,
) -> DomainRegistry:
    """The curated default domain population (editorial, social, retail).

    On top of the curated head (the outlets the paper names), every
    vertical receives a deterministic long tail of mid-tier editorial
    outlets and community forums — the candidate diversity that makes
    source-selection differences measurable.

    Brand domains are *not* included here — they are registered from the
    entity catalog via :meth:`DomainRegistry.ensure_brand_domain`, because
    brands exist only relative to the entities under study.
    """
    registry = DomainRegistry()

    # --- General-interest earned media (cover everything, shallowly).
    registry.add_all(
        [
            _earned("wikipedia.org", (), 0.99, volume=2.0, median_age=420.0),
            _earned("nytimes.com", (), 0.96, volume=1.5),
            _earned("forbes.com", (), 0.92, volume=2.0),
            _earned("businessinsider.com", (), 0.88, volume=2.0),
            _earned("usatoday.com", (), 0.87, volume=1.5),
            _earned("theguardian.com", (), 0.9, volume=1.5),
            _earned("cnn.com", (), 0.93, volume=1.0),
            _earned("nypost.com", (), 0.8, volume=1.0),
        ]
    )

    # --- Consumer-electronics editorial (the outlets the paper names).
    registry.add_all(
        [
            _earned("techradar.com", _ELECTRONICS, 0.68, volume=5.0, median_age=60.0),
            _earned("tomsguide.com", _ELECTRONICS, 0.66, volume=5.0, median_age=62.0),
            _earned("rtings.com", _ELECTRONICS, 0.6, volume=4.0, median_age=90.0),
            _earned("cnet.com", _ELECTRONICS, 0.72, volume=5.0, median_age=70.0),
            _earned("theverge.com", _ELECTRONICS, 0.7, volume=4.0, median_age=65.0),
            _earned("wired.com", _ELECTRONICS, 0.74, volume=3.0, median_age=80.0),
            _earned("pcmag.com", _ELECTRONICS, 0.66, volume=4.0, median_age=75.0),
            _earned("engadget.com", _ELECTRONICS, 0.64, volume=3.0, median_age=68.0),
            _earned("digitaltrends.com", _ELECTRONICS, 0.6, volume=3.0, median_age=72.0),
            _earned("zdnet.com", _ELECTRONICS, 0.62, volume=3.0, median_age=78.0),
            _earned("androidauthority.com", ("smartphones", "smartwatches"), 0.58, volume=3.0, median_age=65.0),
            _earned("notebookcheck.net", ("laptops",), 0.52, volume=3.0, median_age=85.0),
            _earned("gsmarena.com", ("smartphones",), 0.6, volume=3.0, median_age=70.0),
            _earned("wirecutter.com", _ELECTRONICS + ("skincare", "athletic_shoes"), 0.66, volume=3.0, median_age=95.0),
        ]
    )

    # --- Automotive editorial.
    registry.add_all(
        [
            _earned("consumerreports.org", _AUTomotive + _ELECTRONICS, 0.72, volume=4.0, median_age=120.0),
            _earned("caranddriver.com", _AUTomotive, 0.68, volume=5.0, median_age=110.0),
            _earned("motortrend.com", _AUTomotive, 0.64, volume=4.0, median_age=130.0),
            _earned("edmunds.com", _AUTomotive, 0.66, volume=4.0, median_age=150.0),
            _earned("kbb.com", _AUTomotive, 0.68, volume=4.0, median_age=160.0),
            _earned("autoblog.com", _AUTomotive, 0.56, volume=3.0, median_age=120.0),
            _earned("topgear.com", _AUTomotive, 0.6, volume=2.0, median_age=140.0),
            _earned("motor1.com", _AUTomotive, 0.54, volume=3.0, median_age=125.0),
            _earned("insideevs.com", ("electric_cars",), 0.53, volume=3.0, median_age=90.0),
            _earned("electrek.co", ("electric_cars",), 0.52, volume=3.0, median_age=80.0),
            _earned("jdpower.com", _AUTomotive, 0.62, volume=2.0, median_age=200.0),
        ]
    )

    # --- Travel / airlines / hotels editorial.
    registry.add_all(
        [
            _earned("thepointsguy.com", _TRAVEL + ("credit_cards",), 0.62, volume=4.0, median_age=55.0),
            _earned("airlinequality.com", ("airlines",), 0.5, volume=2.0, median_age=90.0),
            _earned("cntraveler.com", _TRAVEL, 0.64, volume=3.0, median_age=70.0),
            _earned("travelandleisure.com", _TRAVEL, 0.62, volume=3.0, median_age=65.0),
            _earned("afar.com", ("hotels",), 0.52, volume=2.0, median_age=85.0),
            _earned("onemileatatime.com", _TRAVEL, 0.54, volume=3.0, median_age=40.0),
        ]
    )

    # --- Personal finance editorial.
    registry.add_all(
        [
            _earned("nerdwallet.com", ("credit_cards",), 0.68, volume=5.0, median_age=60.0),
            _earned("bankrate.com", ("credit_cards",), 0.66, volume=4.0, median_age=65.0),
            _earned("creditkarma.com", ("credit_cards",), 0.6, volume=3.0, median_age=80.0),
            _earned("fool.com", ("credit_cards",), 0.58, volume=3.0, median_age=70.0),
            _earned("investopedia.com", ("credit_cards",), 0.7, volume=3.0, median_age=150.0),
        ]
    )

    # --- Beauty / skincare editorial.
    registry.add_all(
        [
            _earned("allure.com", ("skincare",), 0.62, volume=4.0, median_age=55.0),
            _earned("byrdie.com", ("skincare",), 0.58, volume=4.0, median_age=60.0),
            _earned("vogue.com", ("skincare",), 0.88, volume=2.0, median_age=70.0),
            _earned("healthline.com", ("skincare",), 0.72, volume=3.0, median_age=120.0),
            _earned("dermstore.com", ("skincare",), 0.5, volume=2.0, median_age=100.0),
        ]
    )

    # --- Running / athletic shoes editorial.
    registry.add_all(
        [
            _earned("runnersworld.com", ("athletic_shoes",), 0.63, volume=4.0, median_age=60.0),
            _earned("runrepeat.com", ("athletic_shoes",), 0.52, volume=4.0, median_age=50.0),
            _earned("believeintherun.com", ("athletic_shoes",), 0.45, volume=3.0, median_age=45.0),
            _earned("irunfar.com", ("athletic_shoes", "smartwatches"), 0.47, volume=2.0, median_age=55.0),
            _earned("dcrainmaker.com", ("smartwatches",), 0.52, volume=3.0, median_age=50.0),
        ]
    )

    # --- Streaming / entertainment editorial.
    registry.add_all(
        [
            _earned("variety.com", ("streaming",), 0.68, volume=3.0, median_age=40.0),
            _earned("hollywoodreporter.com", ("streaming",), 0.66, volume=3.0, median_age=45.0),
            _earned("whattowatch.com", ("streaming",), 0.5, volume=3.0, median_age=35.0),
            _earned("rottentomatoes.com", ("streaming",), 0.72, volume=3.0, median_age=90.0),
            _earned("decider.com", ("streaming",), 0.5, volume=3.0, median_age=30.0),
        ]
    )

    # --- Social / UGC platforms (general-interest, high authority).
    registry.add_all(
        [
            _social("reddit.com", 0.95, volume=8.0),
            _social("youtube.com", 0.97, volume=8.0),
            _social("quora.com", 0.85, volume=4.0),
            _social("x.com", 0.82, volume=1.5),
            _social("facebook.com", 0.84, volume=1.0),
            _social("instagram.com", 0.82, volume=1.0),
            _social("tiktok.com", 0.8, volume=1.5),
            _social("pinterest.com", 0.74, volume=1.0),
            _social("stackexchange.com", 0.8, volume=2.0, verticals=_ELECTRONICS),
            _social("medium.com", 0.78, volume=3.0),
            _social("tripadvisor.com", 0.88, volume=5.0, verticals=_TRAVEL),
            _social("flyertalk.com", 0.66, volume=2.0, verticals=("airlines",)),
        ]
    )

    # --- Retailers (owned media; typed brand with the retailer flag).
    registry.add_all(
        [
            _retailer("amazon.com", _ELECTRONICS + ("skincare", "athletic_shoes"), 0.97),
            _retailer("bestbuy.com", _ELECTRONICS, 0.9),
            _retailer("walmart.com", _ELECTRONICS + ("skincare",), 0.92),
            _retailer("target.com", ("skincare", "athletic_shoes"), 0.88),
            _retailer("newegg.com", ("laptops",), 0.78),
            _retailer("cars.com", _AUTomotive, 0.86),
            _retailer("autotrader.com", _AUTomotive, 0.84),
            _retailer("carvana.com", _AUTomotive, 0.78),
            _retailer("sephora.com", ("skincare",), 0.86),
            _retailer("ulta.com", ("skincare",), 0.84),
            _retailer("expedia.com", _TRAVEL, 0.9),
            _retailer("booking.com", ("hotels",), 0.92),
            _retailer("kayak.com", ("airlines",), 0.84),
            _retailer("zappos.com", ("athletic_shoes",), 0.8),
            _retailer("roadrunnersports.com", ("athletic_shoes",), 0.66),
        ]
    )

    # --- Generated long tail per vertical.
    if long_tail_per_vertical or forums_per_vertical:
        for vertical in _TAIL_STEMS:
            tail = long_tail_per_vertical
            forums = forums_per_vertical
            if vertical in ("family_law_toronto", "ultrarunning_gear", "espresso_gear"):
                # Niche verticals have thinner -- but not degenerate --
                # coverage: a handful of specialist blogs and directories.
                tail = max(2, long_tail_per_vertical // 2)
                forums = 2
            for record in _long_tail_for(vertical, tail):
                if record.name not in registry:
                    registry.add(record)
            for record in _forums_for(vertical, forums):
                if record.name not in registry:
                    registry.add(record)

    return registry
