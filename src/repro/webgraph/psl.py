"""Public-suffix handling for registrable-domain (eTLD+1) extraction.

The paper normalizes every cited URL "to their registrable domains" before
computing overlap.  Registrable-domain extraction requires the Mozilla
Public Suffix List algorithm: a hostname's *public suffix* is its longest
matching rule, and the registrable domain is the suffix plus one more label.

This module embeds a snapshot of the rules relevant to the study's domain
space (generic TLDs plus the country-code structures that appear in consumer
and automotive media) and implements the full matching algorithm, including
wildcard rules (``*.ck``) and exception rules (``!www.ck``), so the
normalizer behaves correctly even on exotic hosts.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PublicSuffixList", "default_psl"]


# A representative snapshot of the Public Suffix List.  Comments and empty
# lines are permitted, matching the upstream file format.
_EMBEDDED_RULES = """
// Generic top-level domains
com
org
net
edu
gov
mil
int
info
biz
io
co
ai
app
dev
tech
news
blog
shop
store
online
site
xyz
me
tv
cc
ws
// Country-code TLDs with flat structure
ca
de
fr
it
nl
se
no
fi
dk
ch
at
be
es
pt
ie
us
// United Kingdom
uk
co.uk
org.uk
ac.uk
gov.uk
net.uk
// Australia
au
com.au
net.au
org.au
edu.au
gov.au
// Japan
jp
co.jp
or.jp
ne.jp
ac.jp
go.jp
// Brazil
br
com.br
net.br
org.br
// India
in
co.in
net.in
org.in
// China
cn
com.cn
net.cn
org.cn
// Korea
kr
co.kr
or.kr
// New Zealand
nz
co.nz
org.nz
net.nz
// Wildcard and exception examples (Cook Islands, per the real PSL)
ck
*.ck
!www.ck
"""


@dataclass(frozen=True)
class _Rule:
    """A parsed PSL rule."""

    labels: tuple[str, ...]
    is_exception: bool

    @property
    def length(self) -> int:
        return len(self.labels)


def _parse_rules(text: str) -> list[_Rule]:
    rules = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("//"):
            continue
        is_exception = line.startswith("!")
        if is_exception:
            line = line[1:]
        labels = tuple(label for label in line.lower().split(".") if label)
        if labels:
            rules.append(_Rule(labels=labels, is_exception=is_exception))
    return rules


class PublicSuffixList:
    """Mozilla PSL matcher over an embedded or user-supplied rule set."""

    def __init__(self, rules_text: str = _EMBEDDED_RULES) -> None:
        self._rules = _parse_rules(rules_text)
        # Index rules by their final label for fast candidate lookup.
        self._by_last_label: dict[str, list[_Rule]] = {}
        for rule in self._rules:
            self._by_last_label.setdefault(rule.labels[-1], []).append(rule)

    def _matching_rules(self, labels: tuple[str, ...]) -> list[_Rule]:
        candidates = self._by_last_label.get(labels[-1], [])
        matches = []
        for rule in candidates:
            if rule.length > len(labels):
                continue
            tail = labels[-rule.length:]
            if all(r in ("*", t) for r, t in zip(rule.labels, tail)):
                matches.append(rule)
        return matches

    def public_suffix(self, hostname: str) -> str:
        """The public suffix of ``hostname``.

        Follows the PSL algorithm: exception rules win outright (their
        suffix drops the leading label); otherwise the longest matching
        rule wins; if nothing matches, the suffix is the last label
        (the implicit ``*`` rule).
        """
        labels = tuple(label for label in hostname.lower().rstrip(".").split(".") if label)
        if not labels:
            raise ValueError(f"cannot extract public suffix from {hostname!r}")
        matches = self._matching_rules(labels)
        exceptions = [r for r in matches if r.is_exception]
        if exceptions:
            winner = max(exceptions, key=lambda r: r.length)
            # An exception rule's suffix is the rule minus its first label.
            return ".".join(labels[-(winner.length - 1):])
        if matches:
            winner = max(matches, key=lambda r: r.length)
            return ".".join(labels[-winner.length:])
        return labels[-1]

    def registrable_domain(self, hostname: str) -> str:
        """The registrable domain (public suffix + one label).

        Raises ``ValueError`` if the hostname *is* a public suffix (e.g.
        ``"com"`` or ``"co.uk"``) — such hosts have no registrable domain.
        """
        labels = tuple(label for label in hostname.lower().rstrip(".").split(".") if label)
        suffix = self.public_suffix(hostname)
        suffix_len = len(suffix.split("."))
        if len(labels) <= suffix_len:
            raise ValueError(
                f"{hostname!r} is a public suffix; it has no registrable domain"
            )
        return ".".join(labels[-(suffix_len + 1):])


_DEFAULT_PSL: PublicSuffixList | None = None


def default_psl() -> PublicSuffixList:
    """The process-wide PSL instance built from the embedded snapshot."""
    global _DEFAULT_PSL
    if _DEFAULT_PSL is None:
        _DEFAULT_PSL = PublicSuffixList()
    return _DEFAULT_PSL
