"""Domain-level hyperlink graph.

Google's ranking in the reproduction blends text relevance with a
PageRank-style authority score.  Authority must come from *somewhere*, so
the corpus generator records who links to whom at domain granularity:
editorial pages link to the brands they review, social threads link to the
editorial pieces they discuss, retailers link to brands they stock.  The
resulting weighted digraph feeds :mod:`repro.search.pagerank`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = ["LinkGraph"]


class LinkGraph:
    """A weighted directed graph over registrable domains."""

    def __init__(self) -> None:
        self._out: dict[str, dict[str, float]] = {}
        self._nodes: dict[str, None] = {}  # insertion-ordered set

    def add_node(self, domain: str) -> None:
        """Ensure ``domain`` exists in the graph (idempotent)."""
        if not domain:
            raise ValueError("domain must be non-empty")
        self._nodes.setdefault(domain, None)
        self._out.setdefault(domain, {})

    def add_edge(self, source: str, target: str, weight: float = 1.0) -> None:
        """Add (or reinforce) a link from ``source`` to ``target``.

        Self-links are ignored — they carry no authority information and
        would distort PageRank.
        """
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight}")
        self.add_node(source)
        self.add_node(target)
        if source == target:
            return
        edges = self._out[source]
        edges[target] = edges.get(target, 0.0) + weight

    def nodes(self) -> list[str]:
        """All domains, in insertion order."""
        return list(self._nodes)

    def out_edges(self, domain: str) -> dict[str, float]:
        """Outgoing edges of ``domain`` as a target->weight mapping."""
        return dict(self._out.get(domain, {}))

    def out_weight(self, domain: str) -> float:
        """Total outgoing weight of ``domain``."""
        return sum(self._out.get(domain, {}).values())

    def edge_count(self) -> int:
        """Number of distinct directed edges."""
        return sum(len(edges) for edges in self._out.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, domain: str) -> bool:
        return domain in self._nodes

    def edges(self) -> Iterator[tuple[str, str, float]]:
        """Iterate ``(source, target, weight)`` triples."""
        for source, targets in self._out.items():
            for target, weight in targets.items():
                yield source, target, weight

    def add_nodes(self, domains: Iterable[str]) -> None:
        for domain in domains:
            self.add_node(domain)
