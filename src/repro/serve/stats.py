"""Counters and latency accounting for the serving tier.

Two timelines coexist in a serve run and the stats keep them apart:

* **Simulated time** orders the stream itself — request arrivals come
  from the load generator on the
  :class:`~repro.resilience.clock.SimClock` timeline and are fully
  deterministic.
* **Wall time** measures what the hardware actually did — per-request
  service latency and whole-run throughput.  Wall-clock numbers are
  telemetry, never results: answers are byte-identical across runs
  while latencies legitimately vary, which is why they live here and
  in ``BENCH_serving.json`` rather than anywhere the determinism
  contract covers.

All counter and latency writes happen under the instance lock
(conclint CONC002): the serve loop's pool workers share one
:class:`ServeStats`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lockorder import witness_lock

__all__ = ["LatencySummary", "ServeSnapshot", "ServeStats", "percentile"]

#: Request outcomes the loop classifies; order fixes rendering.
#: ``partial`` is a served-but-degraded miss: the answer came back, but
#: its retrieval lost shard coverage past the resilience ladder, so it
#: was handed out uncached with :class:`~repro.resilience.coverage.
#: ShardCoverage` provenance instead of entering the memo.
OUTCOMES = ("hit", "coalesced", "miss", "shed", "degraded", "partial")


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100]).

    Deterministic and dependency-free; 0.0 on an empty sample so
    renderers never special-case cold stats.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, -(-int(q * len(ordered)) // 100))  # ceil(q/100 * n)
    return ordered[min(rank, len(ordered)) - 1]


@dataclass(frozen=True)
class LatencySummary:
    """Percentiles over one latency sample, in milliseconds."""

    count: int
    p50_ms: float
    p90_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def of(cls, seconds: list[float]) -> "LatencySummary":
        ms = [1000.0 * s for s in seconds]
        return cls(
            count=len(ms),
            p50_ms=percentile(ms, 50),
            p90_ms=percentile(ms, 90),
            p99_ms=percentile(ms, 99),
            max_ms=max(ms) if ms else 0.0,
        )


@dataclass(frozen=True)
class ServeSnapshot:
    """A point-in-time copy of one serve run's accounting."""

    #: Outcome name -> request count (every OUTCOMES key present).
    outcomes: dict[str, int]
    #: Callers that blocked on admission (queue at capacity).
    admission_waits: int
    service: LatencySummary
    queue_delay: LatencySummary
    #: Wall seconds the whole stream took to drain.
    wall_seconds: float
    #: Simulated seconds the arrival timeline spanned.
    sim_seconds: float

    @property
    def requests(self) -> int:
        return sum(self.outcomes.values())

    @property
    def answered(self) -> int:
        """Requests that produced a real full-coverage answer.

        ``partial`` is excluded alongside ``shed``/``degraded``: a
        partial answer was served, but from degraded shard coverage and
        without entering the memo, so counting it here would make
        ``duplicate_absorption`` depend on which requests happened to
        hit a dead shard.
        """
        return (
            self.outcomes["hit"]
            + self.outcomes["coalesced"]
            + self.outcomes["miss"]
        )

    @property
    def throughput_rps(self) -> float:
        """Completed requests per wall second (0.0 before any work)."""
        return self.requests / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def duplicate_absorption(self) -> float:
        """Fraction of answered requests served without a computation.

        ``(hits + coalesced) / answered`` — for a duplicated workload
        this is deterministic: the memo plus single-flight guarantee
        exactly one miss per distinct cache key.
        """
        answered = self.answered
        if not answered:
            return 0.0
        return (self.outcomes["hit"] + self.outcomes["coalesced"]) / answered

    def payload(self) -> dict:
        """The JSON-ready block ``BENCH_serving.json`` records."""
        return {
            "requests": self.requests,
            "outcomes": dict(self.outcomes),
            "admission_waits": self.admission_waits,
            "duplicate_absorption": round(self.duplicate_absorption, 4),
            "throughput_rps": round(self.throughput_rps, 1),
            "wall_seconds": round(self.wall_seconds, 4),
            "sim_seconds": round(self.sim_seconds, 2),
            "service_ms": {
                "p50": round(self.service.p50_ms, 3),
                "p90": round(self.service.p90_ms, 3),
                "p99": round(self.service.p99_ms, 3),
                "max": round(self.service.max_ms, 3),
            },
            "queue_delay_ms": {
                "p50": round(self.queue_delay.p50_ms, 3),
                "p99": round(self.queue_delay.p99_ms, 3),
            },
        }


class ServeStats:
    """Lock-guarded accumulator shared by the serve loop's workers."""

    def __init__(self) -> None:
        self._lock = witness_lock("ServeStats._lock")
        self._outcomes = {name: 0 for name in OUTCOMES}
        self._admission_waits = 0
        self._service: list[float] = []
        self._queue_delay: list[float] = []
        self._wall_seconds = 0.0
        self._sim_seconds = 0.0

    def record(
        self, outcome: str, service_seconds: float, queue_delay_seconds: float
    ) -> None:
        """Account one finished request."""
        if outcome not in self._outcomes:
            raise ValueError(f"unknown outcome {outcome!r}")
        with self._lock:
            self._outcomes[outcome] += 1
            self._service.append(service_seconds)
            self._queue_delay.append(queue_delay_seconds)

    def record_admission_wait(self) -> None:
        with self._lock:
            self._admission_waits += 1

    def record_run(self, wall_seconds: float, sim_seconds: float) -> None:
        """Account one drained stream's timelines (additive)."""
        with self._lock:
            self._wall_seconds += wall_seconds
            self._sim_seconds += sim_seconds

    def snapshot(self) -> ServeSnapshot:
        # Copy under the lock, summarize outside it: LatencySummary.of
        # sorts the whole sample, and an O(n log n) pass under a lock
        # every worker touches per request is a convoy (locklint
        # LOCK002's compute-outside-the-lock discipline).
        with self._lock:
            outcomes = dict(self._outcomes)
            admission_waits = self._admission_waits
            service = list(self._service)
            queue_delay = list(self._queue_delay)
            wall_seconds = self._wall_seconds
            sim_seconds = self._sim_seconds
        return ServeSnapshot(
            outcomes=outcomes,
            admission_waits=admission_waits,
            service=LatencySummary.of(service),
            queue_delay=LatencySummary.of(queue_delay),
            wall_seconds=wall_seconds,
            sim_seconds=sim_seconds,
        )

    def reset(self) -> None:
        with self._lock:
            self._outcomes = {name: 0 for name in OUTCOMES}
            self._admission_waits = 0
            self._service = []
            self._queue_delay = []
            self._wall_seconds = 0.0
            self._sim_seconds = 0.0
