"""In-flight request coalescing (single-flight) for the serving tier.

The engine memo caches deduplicate *completed* computations: the second
request for a memoized key is a hit.  They do nothing for *concurrent*
duplicates — two requests for the same cold key both reach
``_answer_uncached`` and compute the same answer twice.  A batch study
never hits this window (each engine answers its workload in order), but
a serving tier multiplexing a popularity-skewed request stream hits it
constantly: the hottest keys are exactly the ones most likely to be in
flight already.

:class:`SingleFlight` closes the window.  The first caller for a key
becomes the **leader** and runs the computation; callers arriving while
it is in flight become **followers** and block on the leader's result
(value or exception — both are shared, which is safe here because every
computation in this codebase is deterministic per key).  Once the leader
finishes, the key leaves the group: later callers find the engine memo
warm and never enter the flight at all.

Thread-safety contract (conclint CONC002): all group bookkeeping —
registration, removal, waiter counting — happens under the instance
lock; the computation itself runs outside it so followers of *other*
keys are never serialized behind an unrelated leader.

Failure sharing re-raises a per-follower *copy* of the leader's
exception, never the leader's own instance: ``raise`` assigns
``__traceback__`` on the raised object, so N threads re-raising one
shared instance race on that mutable field and produce interleaved
tracebacks.  The copy keeps the original as ``__cause__`` so nothing
about the failure is lost.
"""

from __future__ import annotations

import copy
import threading
from collections.abc import Callable, Hashable
from typing import Any

from repro.lockorder import witness_lock

__all__ = ["SingleFlight"]


def _follower_copy(error: BaseException) -> BaseException:
    """A fresh exception instance for one follower to raise.

    Raising mutates the instance (``__traceback__``), so followers must
    not share the leader's.  ``copy.copy`` preserves the concrete type —
    ``except ResilienceExhausted`` handlers upstream keep matching — and
    the original rides along as ``__cause__``.  Exotic exceptions that
    refuse to copy fall back to the shared instance: a cosmetic
    traceback race beats swallowing the failure.
    """
    try:
        clone = copy.copy(error)
    except Exception:
        return error
    clone.__cause__ = error
    clone.__traceback__ = None
    return clone


class _Flight:
    """One in-flight computation: the leader's result, shared."""

    __slots__ = ("done", "value", "error", "followers")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None
        self.followers = 0


class SingleFlight:
    """Collapse concurrent calls per key into one computation."""

    def __init__(self) -> None:
        self._lock = witness_lock("SingleFlight._lock")
        self._inflight: dict[Hashable, _Flight] = {}
        self._led = 0
        self._coalesced = 0

    def __len__(self) -> int:
        """Number of keys currently in flight."""
        with self._lock:
            return len(self._inflight)

    def do(self, key: Hashable, fn: Callable[[], Any]) -> tuple[Any, bool]:
        """Run ``fn`` for ``key``, coalescing concurrent duplicates.

        Returns ``(value, led)``: ``led`` is ``True`` for the caller
        that actually ran ``fn`` and ``False`` for every follower that
        received the leader's result.  If the leader raised, every
        follower re-raises its own copy of the leader's exception (same
        type, original chained as ``__cause__``) — deterministic
        computations fail identically, so sharing the failure preserves
        what a non-coalesced run would have seen, without N threads
        racing on one instance's ``__traceback__``.
        """
        with self._lock:
            flight = self._inflight.get(key)
            if flight is None:
                flight = _Flight()
                self._inflight[key] = flight
                self._led += 1
                led = True
            else:
                flight.followers += 1
                self._coalesced += 1
                led = False
        if not led:
            flight.done.wait()
            if flight.error is not None:
                raise _follower_copy(flight.error)
            return flight.value, False
        try:
            flight.value = fn()
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            # Retire the key before waking followers: a caller arriving
            # after this point starts a fresh flight (typically a memo
            # hit upstream), never joins a finished one.
            with self._lock:
                del self._inflight[key]
            flight.done.set()
        return flight.value, True

    def counters(self) -> tuple[int, int]:
        """``(led, coalesced)`` since construction (or :meth:`reset`)."""
        with self._lock:
            return self._led, self._coalesced

    def reset(self) -> None:
        """Zero the counters; in-flight computations are unaffected."""
        with self._lock:
            self._led = 0
            self._coalesced = 0
