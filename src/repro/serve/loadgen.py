"""Deterministic, popularity-skewed request streams for the serving tier.

"Characterizing Web Search in the Age of Generative AI" motivates the
workload shape: live answer traffic is dominated by a small head of hot
queries with a long tail, and arrivals are bursty, not uniform.  The
generator reproduces both properties deterministically:

* **Query popularity is zipfian.**  The pool is drawn from the study's
  own workload generators (:mod:`repro.entities.queries` — ranking,
  comparison and intent queries), ranked in pool order, and each request
  samples rank ``r`` with probability proportional to ``1 / (r+1)**s``.
  The head of the pool therefore dominates the stream exactly the way a
  production query log's head does — which is what makes the serving
  tier's memo caches and request coalescing worth measuring.
* **Arrivals are bursty.**  Requests arrive in bursts whose size is
  geometric with mean ``burstiness``; bursts are separated by
  exponential gaps with rate ``qps / burstiness`` so the long-run rate
  stays ``qps`` regardless of how bursty the stream is.  ``burstiness=1``
  degenerates to a plain Poisson stream.  Arrival times are *simulated*
  seconds (the :class:`~repro.resilience.clock.SimClock` timeline), so
  the stream itself is a pure function of the profile — no wall clock,
  no detlint DET002 surface.

Every draw comes from one :func:`~repro.llm.rng.derive_rng` stream
seeded by the profile, so two generators with equal profiles emit
byte-identical request streams in any process.
"""

from __future__ import annotations

import bisect
import itertools
from collections.abc import Sequence
from dataclasses import dataclass

from repro.engines.registry import ENGINE_NAMES
from repro.entities.catalog import EntityCatalog
from repro.entities.queries import (
    Query,
    comparison_queries,
    intent_queries,
    ranking_queries,
)
from repro.llm.rng import derive_rng

__all__ = ["LoadProfile", "ServeRequest", "generate_requests", "query_pool"]


@dataclass(frozen=True)
class LoadProfile:
    """Everything that shapes one request stream (all of it seeded)."""

    #: Total requests to emit.
    requests: int = 256
    #: Long-run arrival rate, in requests per simulated second.
    qps: float = 32.0
    #: Mean burst size (>= 1).  1.0 is a plain Poisson stream; larger
    #: values pack arrivals into bursts at the same long-run rate.
    burstiness: float = 1.0
    #: Zipf exponent over query popularity ranks; larger is more skewed.
    zipf_s: float = 1.1
    #: Distinct queries in the pool the stream samples from.
    pool_size: int = 96
    #: Engines requests may target; empty means the full fleet.
    engines: tuple[str, ...] = ()
    #: Seed for every draw the generator makes.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("requests must be at least 1")
        if self.qps <= 0:
            raise ValueError("qps must be positive")
        if self.burstiness < 1.0:
            raise ValueError("burstiness must be at least 1")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be non-negative")
        if self.pool_size < 1:
            raise ValueError("pool_size must be at least 1")
        for name in self.engines:
            if name not in ENGINE_NAMES:
                known = ", ".join(ENGINE_NAMES)
                raise ValueError(f"unknown engine {name!r}; known: {known}")


@dataclass(frozen=True)
class ServeRequest:
    """One answer request: who asks which engine what, and when."""

    #: Stream position (0-based); ties on ``arrival`` preserve it.
    index: int
    #: Simulated seconds since stream start.
    arrival: float
    #: Target engine name (a key of ``world.engines``).
    engine: str
    query: Query


def query_pool(
    catalog: EntityCatalog, size: int, seed: int = 0
) -> list[Query]:
    """A popularity-ranked pool mixing the study's three query shapes.

    Pool order *is* popularity rank: the zipfian sampler weights early
    entries most, so interleaving ranking/comparison/intent queries
    round-robin keeps every shape represented in the hot head rather
    than burying whole shapes in the tail.
    """
    if size < 1:
        raise ValueError("size must be at least 1")
    per_shape = -(-size // 3)  # ceil: over-generate, then interleave
    shapes = [
        ranking_queries(catalog, count=per_shape, seed=seed, id_prefix="sv"),
        comparison_queries(
            catalog,
            n_popular=-(-per_shape // 2),
            n_niche=per_shape // 2,
            seed=seed,
        ),
        intent_queries(catalog, count=max(3, per_shape), seed=seed),
    ]
    interleaved = [
        query
        for group in itertools.zip_longest(*shapes)
        for query in group
        if query is not None
    ]
    return interleaved[:size]


def _zipf_cumulative(size: int, s: float) -> list[float]:
    """Cumulative zipfian weights over ranks ``0..size-1``."""
    total = 0.0
    cumulative = []
    for rank in range(size):
        total += 1.0 / float(rank + 1) ** s
        cumulative.append(total)
    return cumulative


def generate_requests(
    catalog: EntityCatalog,
    profile: LoadProfile,
    pool: Sequence[Query] | None = None,
) -> list[ServeRequest]:
    """The full request stream for ``profile``, in arrival order.

    A pure function of ``(catalog, profile, pool)``: queries, engines,
    burst shapes and arrival gaps all come from one derived RNG stream,
    so equal inputs yield byte-identical streams anywhere.
    """
    queries = (
        list(pool)
        if pool is not None
        else query_pool(catalog, profile.pool_size, seed=profile.seed)
    )
    if not queries:
        raise ValueError("query pool is empty")
    engines = tuple(profile.engines) or ENGINE_NAMES
    rng = derive_rng(
        "serve.loadgen",
        profile.seed,
        profile.requests,
        profile.qps,
        profile.burstiness,
        profile.zipf_s,
        len(queries),
        engines,
    )
    cumulative = _zipf_cumulative(len(queries), profile.zipf_s)
    total_weight = cumulative[-1]

    requests: list[ServeRequest] = []
    now = 0.0
    burst_left = 0
    burst_rate = profile.qps / profile.burstiness
    for index in range(profile.requests):
        if burst_left == 0:
            # Next burst: geometric size with mean ``burstiness``;
            # exponential gap keeps the long-run rate at ``qps``.
            if profile.burstiness > 1.0:
                burst_left = _geometric(rng, profile.burstiness)
                now += rng.expovariate(burst_rate)
            else:
                burst_left = 1
                now += rng.expovariate(profile.qps)
        rank = bisect.bisect_left(cumulative, rng.random() * total_weight)
        requests.append(
            ServeRequest(
                index=index,
                arrival=now,
                engine=engines[
                    rng.randrange(len(engines)) if len(engines) > 1 else 0
                ],
                query=queries[min(rank, len(queries) - 1)],
            )
        )
        burst_left -= 1
    return requests


def _geometric(rng, mean: float) -> int:
    """A geometric draw with the given mean (support ``1, 2, ...``)."""
    success = 1.0 / mean
    size = 1
    while rng.random() > success:
        size += 1
    return size
