"""The answer-serving loop: a resident process over a warm world.

The batch study answers a fixed workload once; a serving tier drains an
open-ended *stream* of answer requests against a warm
:class:`~repro.core.world.World`, multiplexed across the whole engine
fleet.  :class:`ServeLoop` is that tier, built from pieces the pipeline
already trusts:

* **Thread-pool scheduling, deterministic results.**  Requests are
  dispatched to a :class:`~concurrent.futures.ThreadPoolExecutor` in
  arrival order and collected in submission order.  Engines are
  deterministic per query, so the *answers* are byte-identical at any
  worker width — only wall-clock latency varies.  (Processes would
  defeat the point: coalescing and memo sharing need one address
  space.)
* **Admission control.**  A bounded in-flight window applies
  backpressure: when the backlog reaches ``max_pending`` the submitter
  blocks (counted as an admission wait) instead of growing an unbounded
  queue.  Nothing is silently dropped, so completeness — and with it
  determinism — survives overload.
* **Request coalescing (single-flight).**  Requests are classified
  against the engine memo first (``hit``); cold keys enter a
  :class:`~repro.serve.singleflight.SingleFlight` group so concurrent
  duplicates of one ``Query.cache_key`` collapse into a single
  ``_answer_uncached`` computation (``miss`` for the leader,
  ``coalesced`` for followers).  For any workload the number of misses
  equals the number of distinct cold keys — exactly.
* **Per-engine backpressure (PR 5 reuse).**  With a resilience context
  installed, each request consults its engine's
  :class:`~repro.resilience.policy.CircuitBreaker` *before* occupying a
  pool slot: an open breaker sheds the request immediately as a
  degraded answer (``shed``) instead of queueing doomed work.  Requests
  that exhaust the retry ladder inside the engine come back as
  ``degraded``, quarantined with serve-phase provenance — the loop
  never dies.  The context's per-phase deadline budget applies to the
  ``"serve"`` phase like any other.

Latency accounting is wall-clock and lives in
:class:`~repro.serve.stats.ServeStats` — telemetry, never results; see
that module for the two-timeline contract.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections.abc import Iterable, Sequence
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.runner import _degraded_answer
from repro.engines.base import Answer
from repro.resilience.clock import SimClock
from repro.resilience.faults import ResilienceExhausted
from repro.resilience.quarantine import QuarantineRecord
from repro.serve.loadgen import ServeRequest
from repro.serve.singleflight import SingleFlight
from repro.serve.stats import ServeStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.world import World

__all__ = ["ServeLoop", "ServeResult", "answers_digest"]


@dataclass(frozen=True)
class ServeResult:
    """One served request: the answer plus how it was produced."""

    request: ServeRequest
    answer: Answer
    #: "hit" | "coalesced" | "miss" | "shed" | "degraded".
    outcome: str
    #: Wall seconds spent servicing the request (0.0 when shed).
    service_seconds: float
    #: Wall seconds between submission and a worker picking it up.
    queue_delay_seconds: float


def answers_digest(results: Iterable[ServeResult]) -> str:
    """SHA-256 over the answer content of a result stream.

    Covers everything deterministic — stream position, engine, query
    identity, answer text, citations, ranked entities — and nothing
    timing-dependent (outcomes and latencies are excluded: hit vs
    coalesced legitimately varies with scheduling).  Two runs of the
    same stream must digest identically at any worker width.
    """
    hasher = hashlib.sha256()
    for result in results:
        answer = result.answer
        hasher.update(
            repr(
                (
                    result.request.index,
                    result.request.engine,
                    result.request.query.cache_key,
                    answer.text,
                    answer.cited_urls(),
                    answer.ranked_entities,
                )
            ).encode("utf-8")
        )
    return hasher.hexdigest()


class ServeLoop:
    """Serve answer-request streams against one warm world."""

    def __init__(
        self,
        world: "World",
        workers: int = 4,
        max_pending: int | None = None,
        stats: ServeStats | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self._world = world
        self.workers = workers
        #: Admission window: in-flight + queued requests the loop will
        #: hold before the submitter blocks (backpressure, not drops).
        self.max_pending = max_pending if max_pending is not None else 4 * workers
        self.stats = stats or ServeStats()
        self.flight = SingleFlight()
        ctx = getattr(world, "resilience", None)
        #: The arrival timeline; shared with the resilience context's
        #: clock when one is installed so breaker cooldowns and load
        #: arrivals agree on what "now" means.
        self.clock: SimClock = ctx.clock if ctx is not None else SimClock()

    # ------------------------------------------------------------------

    def serve(self, requests: Sequence[ServeRequest]) -> list[ServeResult]:
        """Drain one request stream; results in stream order.

        Blocks until every request has an answer (real, coalesced, or
        degraded).  Deterministic in content: the returned answers are
        byte-identical across runs and worker widths — use
        :func:`answers_digest` to compare.
        """
        requests = list(requests)
        ctx = getattr(self._world, "resilience", None)
        if ctx is not None:
            ctx.begin_phase("serve")
        admission = threading.BoundedSemaphore(self.max_pending)
        results: list[ServeResult | None] = [None] * len(requests)
        futures: list[tuple[int, Future]] = []
        started = time.perf_counter()  # detlint: ignore[DET002] -- latency telemetry, not results
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            for position, request in enumerate(requests):
                # Arrivals advance the simulated timeline (monotonic:
                # streams are generated in arrival order).
                gap = request.arrival - self.clock.now()
                self.clock.sleep(gap)
                shed = self._shed(ctx, request)
                if shed is not None:
                    results[position] = shed
                    continue
                if not admission.acquire(blocking=False):
                    # Backlog at capacity: block — backpressure, never
                    # drops — and make the stall visible in the stats.
                    self.stats.record_admission_wait()
                    admission.acquire()
                submitted = time.perf_counter()  # detlint: ignore[DET002] -- latency telemetry
                try:
                    future = pool.submit(
                        self._serve_one, request, submitted, admission, ctx
                    )
                except BaseException:
                    # The slot's release belongs to the worker; if the
                    # handoff itself fails (pool shut down mid-drain),
                    # no worker will ever run, so give the slot back
                    # here or the semaphore leaks permits.
                    admission.release()
                    raise
                futures.append((position, future))
            # Collection in submission order: result order is stream
            # order, independent of completion order.
            for position, future in futures:
                results[position] = future.result()
        self.stats.record_run(
            wall_seconds=time.perf_counter() - started,  # detlint: ignore[DET002] -- latency telemetry
            sim_seconds=requests[-1].arrival if requests else 0.0,
        )
        return [result for result in results if result is not None]

    # ------------------------------------------------------------------

    def _shed(self, ctx, request: ServeRequest) -> ServeResult | None:
        """Admission-time breaker check: shed doomed work before queueing.

        Only an *open* breaker sheds (half-open probes pass through so
        the engine can recover); without a resilience context nothing
        is ever shed, keeping the clean path byte-identical.
        """
        if ctx is None:
            return None
        if ctx.breaker_for(request.engine).allow():
            return None
        ctx.events.bump("serve_shed")
        self.stats.record(
            "shed", service_seconds=0.0, queue_delay_seconds=0.0
        )
        return ServeResult(
            request=request,
            answer=_degraded_answer(request.engine, request.query),
            outcome="shed",
            service_seconds=0.0,
            queue_delay_seconds=0.0,
        )

    def _serve_one(
        self,
        request: ServeRequest,
        submitted: float,
        admission: threading.BoundedSemaphore,
        ctx,
    ) -> ServeResult:
        """Service one request on a pool worker (conclint entry point)."""
        try:
            picked_up = time.perf_counter()  # detlint: ignore[DET002] -- latency telemetry
            queue_delay = picked_up - submitted
            engine = self._world.engines[request.engine]
            cached = engine.cached_answer(request.query)
            if cached is not None:
                outcome, answer = "hit", cached
            else:
                outcome, answer = self._compute(engine, request, ctx)
            service = time.perf_counter() - picked_up  # detlint: ignore[DET002] -- latency telemetry
            self.stats.record(outcome, service, queue_delay)
            return ServeResult(
                request=request,
                answer=answer,
                outcome=outcome,
                service_seconds=service,
                queue_delay_seconds=queue_delay,
            )
        finally:
            admission.release()

    def _compute(self, engine, request: ServeRequest, ctx):
        """One cold-key computation behind the single-flight group."""
        key = (request.engine, request.query.cache_key)
        mark = ctx.coverage.mark() if ctx is not None else 0
        try:
            answer, led = self.flight.do(
                key, lambda: engine.answer(request.query)
            )
        except ResilienceExhausted as exc:
            # The retry ladder (or the breaker inside it) gave up:
            # degrade this request, with provenance, and keep serving.
            if ctx is None:  # engine wired without the world: strict
                raise
            ctx.events.bump("quarantined_queries")
            ctx.quarantine.record(
                QuarantineRecord(
                    phase=ctx.current_phase,
                    site=exc.site,
                    engine=request.engine,
                    key=request.query.id,
                    attempts=exc.attempts,
                    reason=exc.reason,
                )
            )
            return "degraded", _degraded_answer(request.engine, request.query)
        except Exception as exc:  # containment boundary: the loop survives
            if ctx is None or ctx.config.fail_fast:
                raise
            ctx.events.bump("quarantined_queries")
            ctx.quarantine.record(
                QuarantineRecord(
                    phase=ctx.current_phase,
                    site="engine.answer",
                    engine=request.engine,
                    key=request.query.id,
                    attempts=1,
                    reason=f"unhandled {type(exc).__name__}: {exc}",
                )
            )
            return "degraded", _degraded_answer(request.engine, request.query)
        if led and ctx is not None and ctx.coverage.recorded_since(mark):
            # The leader's retrieval lost shard coverage past the
            # ladder: the answer was served but never memoized, and the
            # outcome says so.  Followers stay "coalesced" — they
            # received the leader's answer either way, and the coverage
            # provenance is the leader's to report.  (The thread-local
            # mark only moves for the thread that ran the computation,
            # which single-flight guarantees is the leader.)
            return "partial", answer
        return ("miss" if led else "coalesced"), answer
