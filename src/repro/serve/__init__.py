"""The answer-serving tier: a long-lived loop over a warm world.

Turns the one-shot batch study into a resident service: a
:class:`~repro.serve.loop.ServeLoop` drains deterministic,
popularity-skewed request streams (:mod:`repro.serve.loadgen`) across
the engine fleet with admission control, per-engine circuit-breaker
backpressure, and single-flight request coalescing
(:mod:`repro.serve.singleflight`), recording latency percentiles and
throughput (:mod:`repro.serve.stats`) without ever perturbing the
byte-identical answer contract.

Entry points: ``python -m repro serve`` on the CLI,
:meth:`repro.core.world.World.serve_loop` in code.
"""

from repro.serve.loadgen import (
    LoadProfile,
    ServeRequest,
    generate_requests,
    query_pool,
)
from repro.serve.loop import ServeLoop, ServeResult, answers_digest
from repro.serve.singleflight import SingleFlight
from repro.serve.stats import LatencySummary, ServeSnapshot, ServeStats

__all__ = [
    "LatencySummary",
    "LoadProfile",
    "ServeLoop",
    "ServeRequest",
    "ServeResult",
    "ServeSnapshot",
    "ServeStats",
    "SingleFlight",
    "answers_digest",
    "generate_requests",
    "query_pool",
]
