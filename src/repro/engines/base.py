"""Engine interface and answer model.

Every system under comparison — Google included — implements
:class:`AnswerEngine`: a query goes in, an :class:`Answer` with cited URLs
comes out.  The analysis pipeline only ever sees answers, which is exactly
the paper's measurement boundary (it scrapes citations from live engine
output).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.entities.queries import Query
from repro.webgraph.pages import Page
from repro.webgraph.urls import normalize_url

__all__ = ["Answer", "AnswerEngine", "Citation"]


@dataclass(frozen=True)
class Citation:
    """One cited source."""

    url: str
    domain: str
    page: Page | None = None

    def __post_init__(self) -> None:
        if not self.url:
            raise ValueError("citation URL must be non-empty")


@dataclass(frozen=True)
class Answer:
    """An engine's response to a query."""

    engine: str
    query_id: str
    text: str
    citations: tuple[Citation, ...] = ()
    ranked_entities: tuple[str, ...] = ()

    def cited_urls(self) -> list[str]:
        """Cited URLs in citation order."""
        return [c.url for c in self.citations]

    def cited_domains(self) -> set[str]:
        """Registrable domains of the citations (normalized, deduplicated).

        Citations that cannot be normalized are dropped, as the analysis
        pipeline treats unusable citations.
        """
        domains = set()
        for citation in self.citations:
            domain = normalize_url(citation.url)
            if domain is not None:
                domains.add(domain)
        return domains


class AnswerEngine(abc.ABC):
    """A system that answers queries with cited sources.

    Engines are deterministic — the same query always yields the same
    answer — so :meth:`answer` memoizes per query identity.  Audits and
    intervention studies that revisit the same workload pay for each
    query once.  Subclasses implement :meth:`_answer_uncached`.
    """

    #: Display name used in figures and tables ("Google", "GPT-4o", ...).
    name: str = "engine"

    #: Cache entries kept per engine; oldest evicted beyond this.
    cache_limit: int = 4096

    def __init__(self) -> None:
        self._answer_cache: dict[tuple, Answer] = {}

    @abc.abstractmethod
    def _answer_uncached(self, query: Query) -> Answer:
        """Answer ``query``; must be deterministic per (engine, query)."""

    @staticmethod
    def _cache_key(query: Query) -> tuple:
        return (
            query.id, query.text, query.kind, query.vertical,
            query.intent, query.entities, query.top_k,
        )

    def answer(self, query: Query) -> Answer:
        """Answer ``query`` (memoized)."""
        # Subclasses that skip __init__ still work, just uncached.
        cache = getattr(self, "_answer_cache", None)
        if cache is None:
            return self._answer_uncached(query)
        key = self._cache_key(query)
        cached = cache.get(key)
        if cached is None:
            cached = self._answer_uncached(query)
            if len(cache) >= self.cache_limit:
                cache.pop(next(iter(cache)))
            cache[key] = cached
        return cached

    def answer_all(self, queries: list[Query]) -> list[Answer]:
        """Answer a workload; convenience for experiment runners."""
        return [self.answer(query) for query in queries]
