"""Engine interface and answer model.

Every system under comparison — Google included — implements
:class:`AnswerEngine`: a query goes in, an :class:`Answer` with cited URLs
comes out.  The analysis pipeline only ever sees answers, which is exactly
the paper's measurement boundary (it scrapes citations from live engine
output).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.cachewitness import witness_for
from repro.entities.queries import Query
from repro.lockorder import witness_lock
from repro.webgraph.pages import Page
from repro.webgraph.urls import normalize_url

__all__ = ["Answer", "AnswerEngine", "Citation"]


@dataclass(frozen=True)
class Citation:
    """One cited source."""

    url: str
    domain: str
    page: Page | None = None

    def __post_init__(self) -> None:
        if not self.url:
            raise ValueError("citation URL must be non-empty")


@dataclass(frozen=True)
class Answer:
    """An engine's response to a query."""

    engine: str
    query_id: str
    text: str
    citations: tuple[Citation, ...] = ()
    ranked_entities: tuple[str, ...] = ()

    def cited_urls(self) -> list[str]:
        """Cited URLs in citation order."""
        return [c.url for c in self.citations]

    def cited_domains(self) -> set[str]:
        """Registrable domains of the citations (normalized, deduplicated).

        Citations that cannot be normalized are dropped, as the analysis
        pipeline treats unusable citations.
        """
        domains = set()
        for citation in self.citations:
            domain = normalize_url(citation.url)
            if domain is not None:
                domains.add(domain)
        return domains


class AnswerEngine(abc.ABC):
    """A system that answers queries with cited sources.

    Engines are deterministic — the same query always yields the same
    answer — so :meth:`answer` memoizes per query identity.  Audits and
    intervention studies that revisit the same workload pay for each
    query once.  Subclasses implement :meth:`_answer_uncached`.
    """

    #: Display name used in figures and tables ("Google", "GPT-4o", ...).
    name: str = "engine"

    #: Cache entries kept per engine; oldest (FIFO, by first insertion)
    #: evicted only once the cache *exceeds* this after an insert.
    cache_limit: int = 4096

    def __init__(self) -> None:
        self._answer_cache: dict[tuple[str, int], Answer] = {}
        self._cache_lock = witness_lock("AnswerEngine._cache_lock")
        self._cache_hits = 0
        self._cache_misses = 0
        #: Staleness witness (None unless REPRO_CACHE_WITNESS=1).  The
        #: epoch supplier re-derives the generation the key embeds, so a
        #: key built without the epoch component is caught on first
        #: post-mutation read.
        self._witness = witness_for(
            f"AnswerEngine._answer_cache[{self.name}]",
            epochs=self._cache_epoch,
        )
        #: Optional ResilienceContext guarding _answer_uncached (the
        #: "engine.answer" fault site); None leaves the path untouched.
        self._resilience = None

    def set_resilience(self, context) -> None:
        """Attach (or detach, with ``None``) a resilience context.

        With one attached, cache misses compute behind the
        ``"engine.answer"`` fault site: injected faults retry with
        deterministic backoff, the engine's circuit breaker gates the
        call, and exhaustion raises ``ResilienceExhausted`` for the
        runner's containment layer.  Cache hits never re-enter the
        site — a memoized answer already survived it.
        """
        self._resilience = context

    @abc.abstractmethod
    def _answer_uncached(self, query: Query) -> Answer:
        """Answer ``query``; must be deterministic per (engine, query)."""

    @staticmethod
    def _cache_key(query: Query) -> str:
        # Every identity-bearing Query field participates: two queries
        # differing only in popularity_class must not collide.  The key
        # is precomputed on the Query itself (its hash is cached after
        # first use), keeping the memo's hit path to one dict probe.
        return query.cache_key

    def _cache_epoch(self) -> int:
        """Generation of whatever corpus state the answers derive from.

        The memo key embeds this (the cache-coherence contract in
        docs/architecture.md), so index growth moves every key instead
        of serving answers computed against the old postings.  The base
        engine is corpus-free and pins generation 0; engines that read
        an index override this with the index's epoch.
        """
        return 0

    def cached_answer(self, query: Query) -> Answer | None:
        """The memoized answer for ``query``, or ``None`` — no counters.

        An uncounted peek for callers that do their own hit/miss
        accounting (the serving tier classifies hit vs coalesced vs
        miss before deciding whether to enter the single-flight group).
        """
        cache = getattr(self, "_answer_cache", None)
        if cache is None:
            return None
        return cache.get((query.cache_key, self._cache_epoch()))

    def answer(self, query: Query) -> Answer:
        """Answer ``query`` (memoized)."""
        # Narrow skipped-__init__ probe: only the *cache attribute*
        # being absent routes around memoization.  A blanket
        # ``except AttributeError`` here used to also swallow an
        # AttributeError raised while computing ``query.cache_key``,
        # silently disabling the memo for every such query — genuine
        # key errors must propagate.
        cache = getattr(self, "_answer_cache", None)
        if cache is None:
            # Subclasses that skip __init__ still work, just uncached.
            return self._answer_uncached(query)
        # Unlocked probe: dict reads are GIL-atomic, entries are
        # immutable once stored, and eviction only pops whole
        # entries — a stale read is at worst a recomputed miss.
        # Counter writes stay under the lock (the hit-path race the
        # concurrency tests pin).
        key = (query.cache_key, self._cache_epoch())
        cached = cache.get(key)
        if cached is not None:
            with self._cache_lock:
                self._cache_hits += 1
            if self._witness is not None:
                self._witness.verify(key, cached)
            return cached
        ctx = getattr(self, "_resilience", None)
        if ctx is not None:
            mark = ctx.coverage.mark()
            answer = ctx.call(
                "engine.answer",
                (self.name, query.id),
                lambda: self._answer_uncached(query),
                engine=self.name,
            )
            if ctx.coverage.recorded_since(mark):
                # The retrieval underneath lost shard coverage (this
                # thread's scatter degraded to a partial merge): the
                # answer is usable but must not be memoized, or the
                # cache would replay its partial evidence long after
                # the shard recovered.  No counters — hit/miss
                # bookkeeping must match a clean run's, and the
                # coverage log already carries the provenance.
                return answer
        else:
            answer = self._answer_uncached(query)
        # Insert first, trim after: a present key is never grounds for
        # eviction, and the cache holds exactly cache_limit entries at
        # steady state instead of oscillating around it.  The lock keeps
        # the memo safe under the thread executor — a racing duplicate
        # computation is deterministic, and returning the stored entry
        # preserves answer identity across threads.
        with self._cache_lock:
            if key not in cache:
                inserted = True
                self._cache_misses += 1
                cache[key] = answer
                while len(cache) > self.cache_limit:
                    cache.pop(next(iter(cache)))
            else:
                inserted = False
                self._cache_hits += 1
            stored = cache[key]
        if self._witness is not None:
            # Outside the lock: the witness has its own leaf-level lock
            # (see CANONICAL_HIERARCHY) and raises on staleness.
            if inserted:
                self._witness.record(key, stored)
            else:
                self._witness.verify(key, stored)
        return stored

    def cache_stats(self) -> tuple[int, int]:
        """(hits, misses) of this engine's memo, in this process."""
        return self._cache_hits, self._cache_misses

    def clear_cache(self) -> None:
        """Drop memoized answers and reset the hit/miss counters."""
        cache = getattr(self, "_answer_cache", None)
        if cache is None:
            return
        with self._cache_lock:
            cache.clear()
            self._cache_hits = 0
            self._cache_misses = 0
        witness = getattr(self, "_witness", None)
        if witness is not None:
            witness.clear()

    def answer_all(self, queries: list[Query]) -> list[Answer]:
        """Answer a workload; convenience for experiment runners."""
        return [self.answer(query) for query in queries]
