"""Claude 4.5 Sonnet (web-enabled).

Persona, from the paper's measurements: the heaviest earned-media
concentration (65% earned / 1% social, Figure 3), the freshest citations
of all engines (median 62 days in electronics, 148 automotive, Figure 4),
moderate overlap with Google (12.6%, Figure 1) — and a distinctive
behaviour: "Claude initially returned no links for most informational and
transactional queries without explicit search prompting" (Section 2.2).
The engine reproduces that reluctance with a seeded per-query search
propensity conditioned on intent.
"""

from __future__ import annotations

from repro.engines.generative import GenerativeEngine
from repro.engines.retrieval import Retriever, SourcingPolicy
from repro.entities.catalog import EntityCatalog
from repro.entities.intents import Intent
from repro.entities.queries import Query
from repro.llm.model import SimulatedLLM
from repro.llm.rng import derive_rng

__all__ = ["CLAUDE_POLICY", "ClaudeEngine"]


CLAUDE_POLICY = SourcingPolicy(
    earned_affinity=1.0,
    brand_affinity=0.3,
    social_affinity=0.0,
    retailer_affinity=0.0,
    freshness_weight=0.55,
    freshness_half_life_days=75.0,
    authority_weight=0.12,
    quality_weight=0.45,
    relevance_weight=0.6,
    familiarity_pull=0.3,
    candidate_pool=40,
    citations_per_answer=5,
    max_per_domain=2,
    reformulation_terms=("review", "comparison", "2025"),
    transactional_brand_boost=0.8,
    transactional_earned_drop=0.4,
    informational_brand_boost=0.45,
    selection_jitter=0.12,
)

# Probability that Claude invokes its web tool, by intent, without
# explicit search prompting.
_SEARCH_PROPENSITY = {
    Intent.INFORMATIONAL: 0.25,
    Intent.CONSIDERATION: 0.95,
    Intent.TRANSACTIONAL: 0.2,
}


class ClaudeEngine(GenerativeEngine):
    """Anthropic Claude 4.5 Sonnet with web search enabled."""

    name = "Claude"

    def __init__(
        self,
        retriever: Retriever,
        llm: SimulatedLLM,
        catalog: EntityCatalog,
        policy: SourcingPolicy = CLAUDE_POLICY,
        *,
        explicit_search_prompting: bool = False,
    ) -> None:
        super().__init__(retriever, llm, catalog, policy)
        self._explicit_search_prompting = explicit_search_prompting

    def _should_search(self, query: Query, intent: Intent) -> bool:
        if self._explicit_search_prompting:
            return True
        propensity = _SEARCH_PROPENSITY.get(intent, 0.95)
        roll = derive_rng("claude-search", self._llm.config.seed, query.id).random()
        return roll < propensity
