"""Shared machinery for the four generative answer engines.

Each engine: (1) selects sources under its persona policy, (2) builds a
context window from their snippets, (3) asks its own simulated LLM to
produce the entity ranking when the query calls for one, and (4) emits a
synthesized answer citing the selected sources.
"""

from __future__ import annotations

from repro.engines.base import Answer, AnswerEngine, Citation
from repro.engines.retrieval import Retriever, SourcingPolicy, detect_intent
from repro.entities.catalog import EntityCatalog
from repro.entities.intents import Intent
from repro.entities.queries import Query, QueryKind
from repro.llm.context import ContextWindow, EvidenceSnippet
from repro.llm.generation import synthesize_answer
from repro.llm.model import GroundingMode, SimulatedLLM
from repro.resilience.faults import ResilienceExhausted
from repro.resilience.quarantine import QuarantineRecord
from repro.search.snippets import SnippetCache, extract_snippet
from repro.search.tokenize import tokenize
from repro.webgraph.pages import Page

__all__ = ["GenerativeEngine", "context_from_pages"]


def context_from_pages(
    pages: list[Page],
    query_text: str,
    max_entities_per_snippet: int = 4,
    snippet_cache: SnippetCache | None = None,
) -> ContextWindow:
    """Build the LLM's context window from retrieved pages.

    Each page contributes one (snippet, url) evidence pair.  A short text
    snippet cannot convey a whole listicle, so its stance map carries only
    the page's ``max_entities_per_snippet`` most prominent entities (the
    page's entity order is prominence order).  Because prominence tracks
    popularity, famous entities end up supported by many snippets while
    obscure ones get one or none — the coverage asymmetry behind the
    paper's citation misses.

    With a ``snippet_cache`` (the world's shared per-page sentence cache)
    the query is analyzed once and page tokenization is memoized; output
    is byte-identical to the uncached :func:`extract_snippet` path.
    """
    if max_entities_per_snippet < 1:
        raise ValueError("max_entities_per_snippet must be at least 1")
    if snippet_cache is not None:
        query_terms = frozenset(tokenize(query_text))
    snippets = []
    for page in pages:
        if snippet_cache is not None:
            text = snippet_cache.extract_with_terms(page, query_terms)
        else:
            text = extract_snippet(page, query_text)
        visible = page.entities[:max_entities_per_snippet]
        snippets.append(
            EvidenceSnippet(
                text=text,
                url=page.url,
                domain=page.domain,
                entity_stance={
                    entity: page.entity_stance[entity]
                    for entity in visible
                    if entity in page.entity_stance
                },
            )
        )
    return ContextWindow(snippets)


class GenerativeEngine(AnswerEngine):
    """Base class for the web-enabled generative engines."""

    def __init__(
        self,
        retriever: Retriever,
        llm: SimulatedLLM,
        catalog: EntityCatalog,
        policy: SourcingPolicy,
    ) -> None:
        super().__init__()
        self._retriever = retriever
        self._llm = llm
        self._catalog = catalog
        self._policy = policy

    def set_resilience(self, context) -> None:
        """Wire the context through the engine AND its retriever.

        The engine fleet shares one retriever that is distinct from the
        world's evidence retriever, so the engine must propagate the
        context to its own collaborator (idempotent across the fleet).
        """
        super().set_resilience(context)
        self._retriever.set_resilience(context)

    @property
    def policy(self) -> SourcingPolicy:
        return self._policy

    def _cache_epoch(self) -> int:
        # Retrieval-grounded answers derive from the index; key the
        # memo on its generation so growth invalidates by key motion.
        return self._retriever.index_epoch

    @property
    def llm(self) -> SimulatedLLM:
        return self._llm

    # ------------------------------------------------------------------
    # Hooks subclasses may override

    def _effective_intent(self, query: Query) -> Intent:
        return query.intent if query.intent is not None else detect_intent(query.text)

    def _should_search(self, query: Query, intent: Intent) -> bool:
        """Whether the engine invokes its web tool for this query."""
        return True

    def _candidate_pool(self, query: Query) -> list[tuple[float, Page]] | None:
        """Override to replace the engine's own retrieval (Gemini)."""
        return None

    # ------------------------------------------------------------------

    def _select_sources(self, query: Query, intent: Intent) -> list[Page]:
        return self._retriever.select_sources(
            query.text,
            self._policy,
            intent=intent,
            pool=self._candidate_pool(query),
        )

    def _answer_uncached(self, query: Query) -> Answer:
        intent = self._effective_intent(query)
        if not self._should_search(query, intent):
            return self._prior_only_answer(query)

        try:
            sources = self._select_sources(query, intent)
        except ResilienceExhausted as exc:
            # Rung of the degradation ladder: retrieval is down for this
            # query, but the engine can still answer from pre-training —
            # exactly what a web-enabled assistant does when its tool
            # call fails.  The degraded answer has no citations, so the
            # sourcing analyses see the cell as missing data.
            ctx = getattr(self, "_resilience", None)
            if ctx is None or ctx.config.fail_fast:
                raise
            ctx.events.bump("degraded_answers")
            ctx.quarantine.record(
                QuarantineRecord(
                    phase=ctx.current_phase,
                    site=exc.site,
                    engine=self.name,
                    key=query.id,
                    attempts=exc.attempts,
                    reason=exc.reason,
                    kind="degraded",
                )
            )
            return self._prior_only_answer(query)
        ranked: tuple[str, ...] = ()
        if query.kind in (QueryKind.RANKING, QueryKind.COMPARISON) and query.entities:
            context = context_from_pages(
                sources,
                query.text,
                snippet_cache=self._retriever.snippet_cache,
            )
            result = self._llm.rank_entities(
                query.text,
                list(query.entities),
                context,
                mode=GroundingMode.NORMAL,
                top_k=min(query.top_k, len(query.entities)),
            )
            ranked = result.ranking
        text = synthesize_answer(query.text, sources, self._catalog, ranked)
        return Answer(
            engine=self.name,
            query_id=query.id,
            text=text,
            citations=tuple(
                Citation(url=page.url, domain=page.domain, page=page)
                for page in sources
            ),
            ranked_entities=ranked,
        )

    def _prior_only_answer(self, query: Query) -> Answer:
        """Answer from pre-training alone: no web tool, no citations."""
        ranked: tuple[str, ...] = ()
        if query.entities:
            empty = ContextWindow([])
            result = self._llm.rank_entities(
                query.text,
                list(query.entities),
                empty,
                mode=GroundingMode.NORMAL,
                top_k=min(query.top_k, len(query.entities)),
            )
            ranked = result.ranking
        text = synthesize_answer(query.text, [], self._catalog, ranked)
        return Answer(
            engine=self.name,
            query_id=query.id,
            text=text,
            citations=(),
            ranked_entities=ranked,
        )
