"""The five systems the paper compares.

* :class:`GoogleEngine` — traditional web search: the answer is the
  organic top-10 (SEO logic).
* :class:`Gpt4oEngine`, :class:`ClaudeEngine`, :class:`GeminiEngine`,
  :class:`PerplexityEngine` — generative answer engines, each with its own
  retrieval and sourcing persona (:mod:`repro.engines.retrieval`) and its
  own simulated LLM.

:func:`build_engines` constructs the calibrated fleet from a world.
"""

from repro.engines.base import Answer, AnswerEngine, Citation
from repro.engines.claude import ClaudeEngine
from repro.engines.gemini import GeminiEngine
from repro.engines.google import GoogleEngine
from repro.engines.gpt4o import Gpt4oEngine
from repro.engines.perplexity import PerplexityEngine
from repro.engines.registry import build_engines
from repro.engines.retrieval import Retriever, SourcingPolicy

__all__ = [
    "Answer",
    "AnswerEngine",
    "Citation",
    "ClaudeEngine",
    "GeminiEngine",
    "GoogleEngine",
    "Gpt4oEngine",
    "PerplexityEngine",
    "Retriever",
    "SourcingPolicy",
    "build_engines",
]
