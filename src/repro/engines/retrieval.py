"""Engine-side retrieval: reformulation, persona reranking, selection.

The paper's central observation is that generative engines select sources
by a different logic than SEO ranking.  :class:`SourcingPolicy` encodes an
engine's persona: its affinity for each source type, its freshness and
authority appetites, its pull toward domains it "knows" from pre-training,
and how it reformulates queries before searching.  :class:`Retriever`
applies a policy: BM25 candidates -> persona scores -> diversified
selection.

Intent adaptation (Figure 3's sharpest finding) happens here: engines
detect transactional intent from surface cues and swing toward
brand/owned sources.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.entities.intents import Intent
from repro.llm.rng import derive_rng
from repro.search.bm25 import BM25Scorer
from repro.search.engine import SearchEngine
from repro.search.seo import freshness_decay
from repro.webgraph.corpus import Corpus
from repro.webgraph.domains import DomainRegistry, SourceType
from repro.webgraph.pages import Page

__all__ = ["Retriever", "ScoredCandidate", "SourcingPolicy", "detect_intent"]


_TRANSACTIONAL_CUES = (
    "where to buy", "best price", "price deals", "deals", "discount",
    "shipping", "availability", "in stock",
)
_TRANSACTIONAL_PREFIXES = ("buy ", "order ", "purchase ", "shop ")
_INFORMATIONAL_CUES = ("how ", "what ", "why ", "explain", "works", "work?")


def detect_intent(query_text: str) -> Intent:
    """Surface-cue intent detection, as commercial engines perform it.

    "Buy iPhone 15" is transactional; "Top 10 SUVs to buy in 2025" is a
    consideration (commercial-investigation) query — the purchase verb
    alone is not enough, it must lead the query or come with price/deal
    language.
    """
    lowered = query_text.lower()
    if lowered.startswith(_TRANSACTIONAL_PREFIXES) or any(
        cue in lowered for cue in _TRANSACTIONAL_CUES
    ):
        return Intent.TRANSACTIONAL
    if any(cue in lowered for cue in _INFORMATIONAL_CUES):
        return Intent.INFORMATIONAL
    return Intent.CONSIDERATION


@dataclass(frozen=True)
class SourcingPolicy:
    """An engine's sourcing persona.

    All affinities are additive bonuses on the persona score of a
    candidate page whose domain has the matching type; the remaining
    weights multiply normalized signals.  ``transactional_brand_boost``
    is added to brand affinity when the query is transactional (and
    ``transactional_earned_drop`` subtracted from earned), reproducing the
    intent swing of Figure 3.
    """

    earned_affinity: float = 0.5
    brand_affinity: float = 0.1
    social_affinity: float = 0.1
    retailer_affinity: float = 0.0
    freshness_weight: float = 0.3
    freshness_half_life_days: float = 120.0
    authority_weight: float = 0.2
    quality_weight: float = 0.2
    relevance_weight: float = 0.8
    familiarity_pull: float = 0.3
    candidate_pool: int = 40
    citations_per_answer: int = 6
    max_per_domain: int = 2
    reformulation_terms: tuple[str, ...] = ()
    transactional_brand_boost: float = 0.45
    transactional_earned_drop: float = 0.3
    informational_brand_boost: float = 0.2
    selection_jitter: float = 0.15

    def __post_init__(self) -> None:
        if self.candidate_pool < 1:
            raise ValueError("candidate_pool must be at least 1")
        if self.citations_per_answer < 1:
            raise ValueError("citations_per_answer must be at least 1")
        if self.max_per_domain < 1:
            raise ValueError("max_per_domain must be at least 1")
        if self.freshness_half_life_days <= 0:
            raise ValueError("freshness_half_life_days must be positive")

    def adapted_to(self, intent: Intent) -> "SourcingPolicy":
        """The persona after intent adaptation.

        Transactional queries swing hard toward brand/retailer sources
        (every engine in Figure 3 does); informational queries swing
        mildly toward brand (manufacturer documentation answers "how does
        X work" questions authoritatively).
        """
        if intent is Intent.TRANSACTIONAL:
            return replace(
                self,
                brand_affinity=self.brand_affinity + self.transactional_brand_boost,
                retailer_affinity=self.retailer_affinity + self.transactional_brand_boost / 2,
                earned_affinity=max(0.0, self.earned_affinity - self.transactional_earned_drop),
            )
        if intent is Intent.INFORMATIONAL:
            return replace(
                self,
                brand_affinity=self.brand_affinity + self.informational_brand_boost,
            )
        return self


@dataclass(frozen=True)
class ScoredCandidate:
    """One candidate page with its persona-score breakdown.

    ``components`` maps signal name -> weighted contribution; their sum
    is :attr:`total`.  Produced by :meth:`Retriever.explain` so an AEO
    analyst can see exactly why a page was (not) selected.
    """

    page: Page
    relevance: float
    components: dict[str, float]
    total: float
    selected: bool


class Retriever:
    """Applies a :class:`SourcingPolicy` against the corpus."""

    def __init__(
        self,
        corpus: Corpus,
        registry: DomainRegistry,
        search_engine: SearchEngine,
    ) -> None:
        self._corpus = corpus
        self._registry = registry
        # The engines share Google's *index* (one corpus, one index) but
        # score candidates with pure BM25 — persona logic replaces SEO.
        # Warmed eagerly so forked pool workers inherit the norm table.
        self._scorer = BM25Scorer(search_engine.index).warm()
        self._index = search_engine.index
        self._search_engine = search_engine
        #: Optional ResilienceContext guarding select_sources (the
        #: "retrieval.select_sources" fault site); None = untouched path.
        self._resilience = None

        # Pre-training familiarity: how prominent each domain is in the
        # (pre-)training corpus, log-scaled to [0, 1].
        counts = {d: len(corpus.by_domain(d)) for d in corpus.domains()}
        max_count = max(counts.values()) if counts else 1
        self._familiarity = {
            domain: math.log1p(count) / math.log1p(max_count)
            for domain, count in counts.items()
        }

    @property
    def snippet_cache(self):
        """The world's shared per-page sentence cache (one per engine)."""
        return self._search_engine.snippet_cache

    @property
    def index_epoch(self) -> int:
        """Mutation generation of the index retrieval reads.

        Generative engines embed this in their memo keys so cached
        answers cannot outlive the postings they were computed from.
        """
        return self._index.epoch

    def set_resilience(self, context) -> None:
        """Attach (or detach, with ``None``) a resilience context.

        With one attached, :meth:`select_sources` runs behind the
        ``"retrieval.select_sources"`` fault site — simulated retrieval
        timeouts retry with deterministic backoff; exhaustion surfaces
        as ``ResilienceExhausted`` for the engine's degradation path
        (prior-only answers).
        """
        self._resilience = context

    def familiarity(self, domain: str) -> float:
        """Pre-training prominence of a domain in ``[0, 1]``."""
        return self._familiarity.get(domain, 0.0)

    def _type_affinity(self, policy: SourcingPolicy, page: Page) -> float:
        record = self._registry.get(page.domain)
        if record.source_type is SourceType.SOCIAL:
            return policy.social_affinity
        if record.source_type is SourceType.BRAND:
            base = policy.brand_affinity
            if record.is_retailer:
                base += policy.retailer_affinity
            return base
        return policy.earned_affinity

    def persona_score(
        self,
        policy: SourcingPolicy,
        page: Page,
        relevance: float,
        query_text: str = "",
    ) -> float:
        """The persona's appeal score for one candidate page.

        The jitter term is a deterministic per-(query, page) perturbation:
        a commercial engine's retrieval stack is not a fixed linear scorer,
        and its source choices vary idiosyncratically from query to query.
        The jitter reproduces that variety (occasional UGC citations, long-
        tail discoveries) while keeping every answer bit-reproducible.

        See :meth:`score_components` for the per-signal breakdown.
        """
        return sum(
            self.score_components(policy, page, relevance, query_text).values()
        )

    def candidates(self, query_text: str, policy: SourcingPolicy) -> list[tuple[float, Page]]:
        """BM25 candidate pool under the policy's reformulated query.

        Returns (relevance, page) pairs, relevance normalized to [0, 1],
        best-first, truncated to ``policy.candidate_pool``.
        """
        reformulated = query_text
        if policy.reformulation_terms:
            reformulated = f"{query_text} {' '.join(policy.reformulation_terms)}"
        scores = self._scorer.score_all(reformulated)
        if not scores:
            return []
        max_score = max(scores.values())
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            (score / max_score, self._index.page(doc_id))
            for doc_id, score in ranked[: policy.candidate_pool]
        ]

    def score_components(
        self,
        policy: SourcingPolicy,
        page: Page,
        relevance: float,
        query_text: str = "",
    ) -> dict[str, float]:
        """The persona score broken into named weighted contributions."""
        age = self._corpus.clock.age_days(page.published)
        jitter = 0.0
        if policy.selection_jitter:
            jitter = derive_rng("select", query_text, page.url).uniform(
                -policy.selection_jitter, policy.selection_jitter
            )
        return {
            "relevance": policy.relevance_weight * relevance,
            "type_affinity": self._type_affinity(policy, page),
            "freshness": policy.freshness_weight
            * freshness_decay(age, policy.freshness_half_life_days),
            "authority": policy.authority_weight
            * self._search_engine.domain_authority(page.domain),
            "quality": policy.quality_weight * page.quality,
            "familiarity": policy.familiarity_pull * self.familiarity(page.domain),
            "jitter": jitter,
        }

    def explain(
        self,
        query_text: str,
        policy: SourcingPolicy,
        *,
        intent: Intent | None = None,
        pool: list[tuple[float, Page]] | None = None,
        top: int = 20,
    ) -> list[ScoredCandidate]:
        """The scored candidate list behind :meth:`select_sources`.

        Returns the ``top`` candidates by persona score, each with its
        component breakdown and whether the selection (same policy, same
        diversity caps) would actually cite it.  Deterministic, and
        consistent with :meth:`select_sources` by construction.
        """
        if top < 1:
            raise ValueError("top must be at least 1")
        effective = policy.adapted_to(
            intent if intent is not None else detect_intent(query_text)
        )
        if pool is None:
            pool = self.candidates(query_text, effective)
        selected_urls = {
            page.url
            for page in self.select_sources(
                query_text, policy, intent=intent, pool=pool
            )
        }
        scored = []
        for relevance, page in pool:
            components = self.score_components(
                effective, page, relevance, query_text
            )
            scored.append(
                ScoredCandidate(
                    page=page,
                    relevance=relevance,
                    components=components,
                    total=sum(components.values()),
                    selected=page.url in selected_urls,
                )
            )
        scored.sort(key=lambda c: (-c.total, c.page.doc_id))
        return scored[:top]

    def select_sources(
        self,
        query_text: str,
        policy: SourcingPolicy,
        *,
        intent: Intent | None = None,
        pool: list[tuple[float, Page]] | None = None,
    ) -> list[Page]:
        """Full pipeline: candidates -> persona rerank -> diversified pick.

        ``pool`` overrides candidate retrieval (Gemini reranks Google's
        results instead of issuing its own search).  ``intent`` defaults
        to surface-cue detection on the query text.

        With a resilience context attached this is the
        ``"retrieval.select_sources"`` fault site, keyed by the query
        text: injected timeouts retry with deterministic backoff and
        exhaustion raises ``ResilienceExhausted``.
        """
        ctx = getattr(self, "_resilience", None)
        if ctx is not None:
            return ctx.call(
                "retrieval.select_sources",
                query_text,
                lambda: self._select_sources_impl(
                    query_text, policy, intent=intent, pool=pool
                ),
            )
        return self._select_sources_impl(query_text, policy, intent=intent, pool=pool)

    def _select_sources_impl(
        self,
        query_text: str,
        policy: SourcingPolicy,
        *,
        intent: Intent | None = None,
        pool: list[tuple[float, Page]] | None = None,
    ) -> list[Page]:
        effective = policy.adapted_to(
            intent if intent is not None else detect_intent(query_text)
        )
        if pool is None:
            pool = self.candidates(query_text, effective)
        scored = [
            (self.persona_score(effective, page, relevance, query_text), page)
            for relevance, page in pool
        ]
        scored.sort(key=lambda item: (-item[0], item[1].doc_id))

        selected: list[Page] = []
        per_domain: dict[str, int] = {}
        for __, page in scored:
            seen = per_domain.get(page.domain, 0)
            if seen >= effective.max_per_domain:
                continue
            per_domain[page.domain] = seen + 1
            selected.append(page)
            if len(selected) == effective.citations_per_answer:
                break
        return selected
