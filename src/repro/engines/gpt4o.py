"""GPT-4o (web-enabled).

Persona, from the paper's measurements: the most divergent sourcing of
all engines (4.0% mean domain overlap with Google, Figure 1), heavy
earned-media concentration (57% earned / 8% social, Figure 3), fresh
citations (median 80 days in electronics vs Google's 130, Figure 4), and
a strong pull toward domains prominent in pre-training.  Its web tool
reformulates queries toward expert/review content, which moves its BM25
candidate pool away from Google's.
"""

from __future__ import annotations

from repro.engines.generative import GenerativeEngine
from repro.engines.retrieval import Retriever, SourcingPolicy
from repro.entities.catalog import EntityCatalog
from repro.llm.model import SimulatedLLM

__all__ = ["GPT4O_POLICY", "Gpt4oEngine"]


GPT4O_POLICY = SourcingPolicy(
    earned_affinity=0.72,
    brand_affinity=0.16,
    social_affinity=0.5,
    retailer_affinity=0.0,
    freshness_weight=0.36,
    freshness_half_life_days=110.0,
    authority_weight=0.05,
    quality_weight=0.45,
    relevance_weight=0.55,
    familiarity_pull=0.3,
    candidate_pool=64,
    citations_per_answer=5,
    max_per_domain=2,
    reformulation_terms=("expert", "review", "tested"),
    transactional_brand_boost=0.7,
    transactional_earned_drop=0.4,
    informational_brand_boost=0.3,
    selection_jitter=0.26,
)


class Gpt4oEngine(GenerativeEngine):
    """OpenAI GPT-4o with web search enabled."""

    name = "GPT-4o"

    def __init__(
        self,
        retriever: Retriever,
        llm: SimulatedLLM,
        catalog: EntityCatalog,
        policy: SourcingPolicy = GPT4O_POLICY,
    ) -> None:
        super().__init__(retriever, llm, catalog, policy)
