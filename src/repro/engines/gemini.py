"""Gemini 2.5 Flash with Google Search grounding.

Persona, from the paper's measurements: grounded in Google — its
candidate pool *is* Google's result list (top-20), which it reranks with
generative preferences rather than SEO order.  Balanced brand/earned
sourcing (46% each, Figure 3) and 11.1% domain overlap with Google
(Figure 1): grounding raises overlap above GPT-4o's, but reranking keeps
it far below identity.
"""

from __future__ import annotations

from repro.engines.generative import GenerativeEngine
from repro.engines.retrieval import Retriever, SourcingPolicy
from repro.entities.catalog import EntityCatalog
from repro.entities.queries import Query
from repro.llm.model import SimulatedLLM
from repro.search.engine import SearchEngine
from repro.webgraph.pages import Page

__all__ = ["GEMINI_POLICY", "GeminiEngine"]


GEMINI_POLICY = SourcingPolicy(
    earned_affinity=0.5,
    brand_affinity=0.5,
    social_affinity=0.28,
    retailer_affinity=0.08,
    freshness_weight=0.25,
    freshness_half_life_days=120.0,
    authority_weight=0.0,
    quality_weight=0.35,
    relevance_weight=0.15,
    familiarity_pull=0.2,
    candidate_pool=60,
    citations_per_answer=6,
    max_per_domain=2,
    reformulation_terms=(),
    transactional_brand_boost=0.6,
    transactional_earned_drop=0.25,
    informational_brand_boost=0.25,
    selection_jitter=0.2,
)


class GeminiEngine(GenerativeEngine):
    """Google Gemini 2.5 Flash with Search grounding."""

    name = "Gemini"

    def __init__(
        self,
        retriever: Retriever,
        llm: SimulatedLLM,
        catalog: EntityCatalog,
        search_engine: SearchEngine,
        policy: SourcingPolicy = GEMINI_POLICY,
        grounding_depth: int = 50,
    ) -> None:
        if grounding_depth < 1:
            raise ValueError("grounding_depth must be at least 1")
        super().__init__(retriever, llm, catalog, policy)
        self._search_engine = search_engine
        self._grounding_depth = grounding_depth

    def _candidate_pool(self, query: Query) -> list[tuple[float, Page]]:
        """Google's top results, with rank-decayed relevance scores."""
        results = self._search_engine.search(query.text, k=self._grounding_depth)
        if not results:
            return []
        depth = len(results)
        return [
            (1.0 - (result.rank - 1) / depth, result.page) for result in results
        ]
