"""Perplexity Sonar Pro (search mode: web).

Persona, from the paper's measurements: the closest of the AI engines to
Google (15.2% overlap, Figure 1), the broadest source mix — "Perplexity
mixed sources more broadly, including YouTube and BestBuy" (Section 2.3)
— with substantial brand/retailer presence (50% earned / 39% brand,
Figure 3) and ages between the AI leaders and Google (Figure 4).
"""

from __future__ import annotations

from repro.engines.generative import GenerativeEngine
from repro.engines.retrieval import Retriever, SourcingPolicy
from repro.entities.catalog import EntityCatalog
from repro.llm.model import SimulatedLLM

__all__ = ["PERPLEXITY_POLICY", "PerplexityEngine"]


PERPLEXITY_POLICY = SourcingPolicy(
    earned_affinity=0.5,
    brand_affinity=0.38,
    social_affinity=0.38,
    retailer_affinity=0.15,
    freshness_weight=0.26,
    freshness_half_life_days=160.0,
    authority_weight=0.12,
    quality_weight=0.15,
    relevance_weight=0.55,
    familiarity_pull=0.15,
    candidate_pool=44,
    citations_per_answer=8,
    max_per_domain=2,
    reformulation_terms=("2025",),
    transactional_brand_boost=0.55,
    transactional_earned_drop=0.25,
    informational_brand_boost=0.2,
    selection_jitter=0.22,
)


class PerplexityEngine(GenerativeEngine):
    """Perplexity Sonar Pro in web search mode."""

    name = "Perplexity"

    def __init__(
        self,
        retriever: Retriever,
        llm: SimulatedLLM,
        catalog: EntityCatalog,
        policy: SourcingPolicy = PERPLEXITY_POLICY,
    ) -> None:
        super().__init__(retriever, llm, catalog, policy)
