"""Construction of the calibrated engine fleet.

Each generative engine is a *different* LLM: it gets its own
:class:`PretrainedKnowledge` (own model seed, hence own frozen priors) on
top of the shared pre-training web.
"""

from __future__ import annotations

from repro.engines.base import AnswerEngine
from repro.engines.claude import ClaudeEngine
from repro.engines.gemini import GeminiEngine
from repro.engines.google import GoogleEngine
from repro.engines.gpt4o import Gpt4oEngine
from repro.engines.perplexity import PerplexityEngine
from repro.engines.retrieval import Retriever
from repro.entities.catalog import EntityCatalog
from repro.llm.model import LLMConfig, SimulatedLLM
from repro.llm.pretraining import PretrainedKnowledge
from repro.llm.rng import derive_seed
from repro.search.engine import SearchEngine
from repro.webgraph.corpus import Corpus
from repro.webgraph.domains import DomainRegistry

__all__ = ["AI_ENGINE_NAMES", "ENGINE_NAMES", "build_engines"]


# Canonical display order used in figures.
ENGINE_NAMES = ("Google", "GPT-4o", "Claude", "Gemini", "Perplexity")
AI_ENGINE_NAMES = ENGINE_NAMES[1:]


def build_engines(
    corpus: Corpus,
    registry: DomainRegistry,
    catalog: EntityCatalog,
    search_engine: SearchEngine,
    *,
    study_seed: int = 0,
    prior_corpus: Corpus | None = None,
) -> dict[str, AnswerEngine]:
    """Build the five compared systems, keyed by display name.

    ``study_seed`` derives a distinct model seed per engine, so each LLM
    has its own pre-training noise realization (as distinct commercial
    models do) while sharing the same pre-training web.

    ``prior_corpus`` pins the LLMs' pre-training knowledge to a different
    corpus than the one they retrieve from.  The AEO intervention lab
    uses this to model content that is live on the web (retrievable) but
    published after the models' training cut (absent from priors).
    """
    retriever = Retriever(corpus, registry, search_engine)
    knowledge_corpus = prior_corpus if prior_corpus is not None else corpus

    def llm_for(engine_name: str) -> SimulatedLLM:
        model_seed = derive_seed("model", study_seed, engine_name)
        knowledge = PretrainedKnowledge(
            knowledge_corpus, catalog, model_seed=model_seed
        )
        return SimulatedLLM(knowledge, LLMConfig(seed=model_seed))

    return {
        "Google": GoogleEngine(search_engine),
        "GPT-4o": Gpt4oEngine(retriever, llm_for("GPT-4o"), catalog),
        "Claude": ClaudeEngine(retriever, llm_for("Claude"), catalog),
        "Gemini": GeminiEngine(
            retriever, llm_for("Gemini"), catalog, search_engine
        ),
        "Perplexity": PerplexityEngine(retriever, llm_for("Perplexity"), catalog),
    }
