"""Google: the traditional-search baseline.

Its "answer" is the organic top-10 result list — no synthesis, no LLM.
Citations are the result URLs, which is exactly what the paper compares
the generative engines' citations against.
"""

from __future__ import annotations

from repro.engines.base import Answer, AnswerEngine, Citation
from repro.entities.queries import Query
from repro.search.engine import SearchEngine

__all__ = ["GoogleEngine"]


class GoogleEngine(AnswerEngine):
    """Organic web search presented as an answer."""

    name = "Google"

    def __init__(self, search_engine: SearchEngine, results_per_query: int = 10) -> None:
        super().__init__()
        if results_per_query < 1:
            raise ValueError("results_per_query must be at least 1")
        self._search = search_engine
        self._k = results_per_query

    def _cache_epoch(self) -> int:
        # Answers are ranked result lists; they go stale the moment the
        # index underneath grows, so the memo key tracks its epoch.
        return self._search.index.epoch

    def _answer_uncached(self, query: Query) -> Answer:
        results = self._search.search(query.text, k=self._k)
        lines = [f"Results for: {query.text}", ""]
        lines.extend(
            f"{r.rank}. {r.page.title} — {r.url}" for r in results
        )
        return Answer(
            engine=self.name,
            query_id=query.id,
            text="\n".join(lines),
            citations=tuple(
                Citation(url=r.url, domain=r.domain, page=r.page) for r in results
            ),
        )
