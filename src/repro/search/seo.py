"""SEO signal model: how Google-style organic ranking weighs a page.

The paper's framing: Google's ranking is the product of SEO logic —
text relevance, link authority, on-page optimization, and only a weak
freshness preference (which is why its cited pages are much older than the
AI engines', Figure 4).  :class:`SeoWeights` captures that blend; the
search engine normalizes each component to ``[0, 1]`` and takes the
weighted sum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["SeoWeights", "freshness_decay"]


def freshness_decay(age_days: int, half_life_days: float = 365.0) -> float:
    """Exponential freshness signal in ``(0, 1]``; 1.0 = published today."""
    if age_days < 0:
        raise ValueError("age_days must be non-negative")
    if half_life_days <= 0:
        raise ValueError("half_life_days must be positive")
    return math.pow(0.5, age_days / half_life_days)


@dataclass(frozen=True)
class SeoWeights:
    """Blend weights for the organic ranking function.

    The defaults encode the paper's Google: relevance and authority
    dominate, on-page SEO matters, freshness barely does.  Weights need
    not sum to one (the blend is a plain weighted sum of normalized
    components), but the defaults do for interpretability.
    """

    relevance: float = 0.42
    authority: float = 0.34
    on_page_seo: float = 0.16
    freshness: float = 0.08
    freshness_half_life_days: float = 365.0

    def __post_init__(self) -> None:
        for name in ("relevance", "authority", "on_page_seo", "freshness"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} weight must be non-negative")
        if self.freshness_half_life_days <= 0:
            raise ValueError("freshness_half_life_days must be positive")
        if self.relevance + self.authority + self.on_page_seo + self.freshness == 0:
            raise ValueError("at least one weight must be positive")

    def blend(
        self,
        relevance: float,
        authority: float,
        on_page_seo: float,
        age_days: int,
    ) -> float:
        """Weighted sum of the four normalized signals."""
        fresh = freshness_decay(age_days, self.freshness_half_life_days)
        return (
            self.relevance * relevance
            + self.authority * authority
            + self.on_page_seo * on_page_seo
            + self.freshness * fresh
        )
