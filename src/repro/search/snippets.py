"""Query-biased snippet extraction.

Generative engines consume retrieved evidence as (snippet, url) pairs —
the paper's Section 3.1 retrieves "pairs of text snippets and urls".  The
extractor picks the body sentences with the highest query-term overlap,
which is how real result snippets are built.
"""

from __future__ import annotations

from repro.search.tokenize import tokenize
from repro.webgraph.pages import Page

__all__ = ["extract_snippet"]


def _sentences(body: str) -> list[str]:
    """Split a page body into sentences (generator bodies use newlines)."""
    pieces = []
    for line in body.split("\n"):
        start = 0
        for i, ch in enumerate(line):
            if ch in ".!?":
                piece = line[start : i + 1].strip()
                if piece:
                    pieces.append(piece)
                start = i + 1
        tail = line[start:].strip()
        if tail:
            pieces.append(tail)
    return pieces


def extract_snippet(page: Page, query: str, max_sentences: int = 2) -> str:
    """The ``max_sentences`` body sentences most relevant to ``query``.

    Sentences are scored by overlap with the analyzed query terms (ties
    break toward earlier sentences); selected sentences are returned in
    document order so the snippet reads naturally.  Falls back to the
    page's leading sentences when nothing overlaps.
    """
    if max_sentences < 1:
        raise ValueError("max_sentences must be at least 1")
    sentences = _sentences(page.body)
    if not sentences:
        return page.title
    query_terms = set(tokenize(query))
    scored = []
    for position, sentence in enumerate(sentences):
        overlap = len(query_terms & set(tokenize(sentence)))
        scored.append((overlap, position, sentence))
    # Highest overlap first, earliest position as tiebreak.
    scored.sort(key=lambda item: (-item[0], item[1]))
    chosen = sorted(scored[:max_sentences], key=lambda item: item[1])
    return " ".join(sentence for __, __, sentence in chosen)
