"""Query-biased snippet extraction.

Generative engines consume retrieved evidence as (snippet, url) pairs —
the paper's Section 3.1 retrieves "pairs of text snippets and urls".  The
extractor picks the body sentences with the highest query-term overlap,
which is how real result snippets are built.

Two implementations share the algorithm:

* :func:`extract_snippet` — the original stateless function, which
  re-splits and re-tokenizes the page body on every call.  Kept as the
  equivalence oracle and for one-off callers.
* :class:`SnippetCache` — the fast path: a lock-guarded, bounded
  per-page cache of pre-split sentences with pre-tokenized term sets,
  so the tens of thousands of repeated retrievals a study performs pay
  tokenization once per page instead of once per (page, query, arm).
  Output is byte-identical to :func:`extract_snippet` (pinned by a
  regression test).
"""

from __future__ import annotations

from repro.search.caching import BoundedCache, CacheCounters
from repro.search.tokenize import tokenize
from repro.webgraph.pages import Page

__all__ = ["SnippetCache", "extract_snippet"]


def _sentences(body: str) -> list[str]:
    """Split a page body into sentences (generator bodies use newlines)."""
    pieces = []
    for line in body.split("\n"):
        start = 0
        for i, ch in enumerate(line):
            if ch in ".!?":
                piece = line[start : i + 1].strip()
                if piece:
                    pieces.append(piece)
                start = i + 1
        tail = line[start:].strip()
        if tail:
            pieces.append(tail)
    return pieces


def extract_snippet(page: Page, query: str, max_sentences: int = 2) -> str:
    """The ``max_sentences`` body sentences most relevant to ``query``.

    Sentences are scored by overlap with the analyzed query terms (ties
    break toward earlier sentences); selected sentences are returned in
    document order so the snippet reads naturally.  Falls back to the
    page's leading sentences when nothing overlaps.

    This is the reference implementation the snippet cache is held to;
    do not "optimize" it — its value is being the unchanged original.
    """
    if max_sentences < 1:
        raise ValueError("max_sentences must be at least 1")
    sentences = _sentences(page.body)
    if not sentences:
        return page.title
    query_terms = set(tokenize(query))
    scored = []
    for position, sentence in enumerate(sentences):
        overlap = len(query_terms & set(tokenize(sentence)))
        scored.append((overlap, position, sentence))
    # Highest overlap first, earliest position as tiebreak.
    scored.sort(key=lambda item: (-item[0], item[1]))
    chosen = sorted(scored[:max_sentences], key=lambda item: item[1])
    return " ".join(sentence for __, __, sentence in chosen)


class SnippetCache:
    """Per-page sentence cache behind query-biased snippet extraction.

    Entries are keyed on the page *body* (CPython caches a string's hash,
    and repeated lookups see the same body object, so keying is cheap and
    stays correct across worlds that happen to reuse doc ids).  Each entry
    holds the pre-split sentences and one frozen term set per sentence;
    per-query work is then a set intersection per sentence.

    Sharing contract: the cache is an instance attribute of the world's
    :class:`~repro.search.engine.SearchEngine`; forked pool workers
    inherit independent copies, the thread executor shares one through
    :class:`~repro.search.caching.BoundedCache`'s lock.
    """

    def __init__(self, limit: int = 8192) -> None:
        # Content-addressed: the key IS the page body, so entries can
        # never go stale under index growth and the staleness witness
        # needs no epoch supplier (see the cache-coherence contract in
        # docs/architecture.md).
        self._cache = BoundedCache(limit=limit, site="SnippetCache._cache")

    def __len__(self) -> int:
        return len(self._cache)

    def page_sentences(
        self, page: Page
    ) -> tuple[tuple[str, ...], tuple[frozenset[str], ...]]:
        """``(sentences, per-sentence term sets)`` for a page, memoized."""
        body = page.body
        entry = self._cache.get(body)
        if entry is not None:
            return entry
        sentences = tuple(_sentences(body))
        term_sets = tuple(
            frozenset(tokenize(sentence)) for sentence in sentences
        )
        return self._cache.put(body, (sentences, term_sets))

    def extract(self, page: Page, query: str, max_sentences: int = 2) -> str:
        """Byte-identical to :func:`extract_snippet`, via the cache."""
        return self.extract_with_terms(
            page, frozenset(tokenize(query)), max_sentences
        )

    def extract_with_terms(
        self,
        page: Page,
        query_terms: frozenset[str],
        max_sentences: int = 2,
    ) -> str:
        """Extraction with the query analyzed once by the caller.

        ``search_with_snippets`` and the evidence builders tokenize the
        query a single time and reuse the term set across every retrieved
        page.
        """
        if max_sentences < 1:
            raise ValueError("max_sentences must be at least 1")
        sentences, term_sets = self.page_sentences(page)
        if not sentences:
            return page.title
        scored = [
            (len(query_terms & term_sets[position]), position, sentence)
            for position, sentence in enumerate(sentences)
        ]
        # Same selection as the reference: highest overlap first,
        # earliest position as tiebreak, then back to document order.
        scored.sort(key=lambda item: (-item[0], item[1]))
        chosen = sorted(scored[:max_sentences], key=lambda item: item[1])
        return " ".join(sentence for __, __, sentence in chosen)

    def counters(self) -> CacheCounters:
        """Hit/miss/eviction counters of the sentence cache."""
        return self._cache.counters()

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._cache.clear()
