"""Fault-tolerant resident shard executor: supervised worker processes.

:class:`~repro.search.sharding.ShardedSearchEngine` scores every shard
in the calling process.  At production scale each shard is a *server* —
a long-lived process holding its slice of the index hot — and the
scatter crosses a process boundary that can crash, stall and restart.
This module reproduces that topology deterministically:

* **Residency.**  :class:`ShardSupervisor` forks one worker per shard.
  Each worker inherits its frozen :class:`~repro.search.index.InvertedIndex`
  and the broadcast :class:`~repro.search.sharding.GlobalStats`
  copy-on-write through the same publish-then-retract module-global
  handshake as ``repro.core.runner._WORKER_WORLD`` and
  ``repro.search.sharding._BUILDER_GROUPS``, builds its
  :class:`~repro.search.bm25.BM25Scorer` once, and then answers
  ``score`` RPCs over a pipe for its lifetime.  Only picklable
  primitives cross the pipe: term tuples in, ``{doc_id: float}`` out.
  The child runs the byte-identical scoring code on byte-identical
  inputs, so residency changes *where* scoring happens and nothing
  about the floats.

* **Supervision.**  The parent-side :class:`ShardWorker` handle
  serializes pipe use under a witnessed lock (the RPC protocol is
  strict request/response); :class:`ShardSupervisor` health-checks
  workers (:meth:`~ShardSupervisor.heartbeat`), respawns dead ones with
  a **generation bump** — the supervisor-level epoch that tells any
  observer the process serving a shard changed, while the parent's
  index epoch stays put because a respawned worker rebuilds the *same*
  frozen shard and returns the same floats — and turns real pipe death
  (``EOFError``/``BrokenPipeError``: a worker that dies mid-RPC closes
  its pipe ends, so ``recv`` raises instead of hanging) into one
  transparent respawn-and-retry before letting :class:`ShardWorkerError`
  propagate.

* **Degradation.**  :class:`ResidentShardedSearchEngine` plugs the
  supervisor into the sharded engine's ``_score_shard`` seam, so the
  whole PR 5 ladder applies per scatter: deterministic ``search.shard``
  faults from the plan, retry backoff on :class:`SimClock`, a per-shard
  circuit breaker, and — via the ``_shard_fault`` hook — an immediate
  respawn on crash-kind faults so the retry lands on a fresh process.
  A shard lost past the ladder degrades to the partial merge with
  :class:`~repro.resilience.coverage.ShardCoverage` provenance,
  exactly like the in-process engine.

Where ``fork`` is unavailable the supervisor degrades to resident
*thread-side* scorers with a warning (same interface, same floats,
no process boundary), mirroring the study runner and shard builder.

Forked **study** workers (the runner's fork pool) inherit the resident
engine but must not speak over pipes they share with the parent: the
engine records its owner pid and falls back to in-process scoring in
any other process — same scorers, same floats.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from collections.abc import Sequence

from repro.lockorder import witness_lock
from repro.search.bm25 import BM25Scorer
from repro.search.index import InvertedIndex
from repro.search.seo import SeoWeights
from repro.search.sharding import (
    GlobalStats,
    ShardedIndex,
    ShardedSearchEngine,
)
from repro.webgraph.corpus import Corpus
from repro.webgraph.domains import DomainRegistry

__all__ = [
    "ResidentShardedSearchEngine",
    "ShardSupervisor",
    "ShardWorker",
    "ShardWorkerError",
]

#: The resident handshake: ``(shard indexes, broadcast stats)`` published
#: immediately before each worker forks and retracted in the outermost
#: ``finally`` — the ``_WORKER_WORLD`` / ``_BUILDER_GROUPS`` pattern.
#: ``fork`` snapshots the frozen shard copy-on-write into the child, so
#: the index never crosses a pipe; only term tuples and score dicts do.
_RESIDENT_SPEC: "tuple[tuple[InvertedIndex, ...], GlobalStats] | None" = None


class ShardWorkerError(RuntimeError):
    """A resident shard worker died and could not be revived in time.

    A *real* failure (not an injected one): it propagates through the
    resilience ladder like any genuine exception, because retrying a
    worker that will not come back cannot succeed.
    """

    def __init__(self, shard_id: int, reason: str) -> None:
        super().__init__(f"shard {shard_id} worker unavailable: {reason}")
        self.shard_id = shard_id
        self.reason = reason

    def __reduce__(self):
        return (type(self), (self.shard_id, self.reason))


def _worker_main(shard_id: int, conn) -> None:
    """The resident worker loop: build the scorer once, serve forever.

    Runs in the forked child.  The shard index and global stats arrive
    through the inherited :data:`_RESIDENT_SPEC`; the scorer is built
    (and its norm table warmed) exactly once, which is the point of
    residency — queries pay only the term-at-a-time scoring cost.
    """
    spec = _RESIDENT_SPEC
    if spec is None:  # pragma: no cover - defensive; fork guarantees it
        conn.send(("error", "worker inherited no resident spec"))
        conn.close()
        return
    shards, stats = spec
    scorer = BM25Scorer(shards[shard_id], stats=stats).warm()
    while True:
        try:
            request = conn.recv()
        except EOFError:  # parent closed its end: retire quietly
            return
        op = request[0]
        if op == "score":
            conn.send(("ok", scorer.score_terms(request[1])))
        elif op == "ping":
            conn.send(("ok", shard_id))
        elif op == "stop":
            conn.send(("ok", None))
            return
        else:  # pragma: no cover - protocol misuse
            conn.send(("error", f"unknown op {request[0]!r}"))


class ShardWorker:
    """Parent-side handle of one resident worker process.

    The pipe protocol is strict request/response, so :attr:`_lock`
    serializes RPCs — two serve threads interleaving sends would cross
    each other's replies.  ``Connection.send``/``recv`` only block for
    as long as the child's deterministic scoring runs (or raise on a
    dead pipe), so holding the lock across the round-trip is safe.
    """

    def __init__(self, shard_id: int, process, conn, generation: int) -> None:
        self.shard_id = shard_id
        self.process = process
        self.generation = generation
        self._conn = conn
        self._lock = witness_lock("ShardWorker._lock")

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def _request(self, message: tuple) -> object:
        with self._lock:
            self._conn.send(message)
            status, payload = self._conn.recv()
        if status != "ok":  # pragma: no cover - protocol misuse
            raise ShardWorkerError(self.shard_id, str(payload))
        return payload

    def score(self, terms: Sequence[str]) -> dict[int, float]:
        return self._request(("score", tuple(terms)))

    def ping(self) -> bool:
        """One health-check round-trip; ``False`` on any pipe failure."""
        if not self.alive():
            return False
        try:
            return self._request(("ping",)) == self.shard_id
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError):
            return False

    def stop(self) -> None:
        """Retire the worker: polite stop RPC, then terminate and reap."""
        process, conn = self.process, self._conn
        if process is None:
            return
        self.process = None
        try:
            with self._lock:
                conn.send(("stop",))
                conn.recv()
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError):
            pass  # already dead: terminate below reaps it regardless
        try:
            conn.close()
        except OSError:  # pragma: no cover - double close
            pass
        process.terminate()
        process.join()


class _ResidentThreadWorker:
    """The fallback "worker" where ``fork`` is unavailable: the same
    interface over an in-process scorer.  No process boundary, so
    ``alive``/``ping`` always hold and ``stop`` only drops the scorer —
    but generations still advance, so respawn bookkeeping (and the
    chaos tests that assert it) behave identically on every platform.
    """

    def __init__(self, shard_id: int, scorer: BM25Scorer, generation: int) -> None:
        self.shard_id = shard_id
        self.generation = generation
        self._scorer = scorer

    def alive(self) -> bool:
        return self._scorer is not None

    def score(self, terms: Sequence[str]) -> dict[int, float]:
        if self._scorer is None:  # pragma: no cover - use after stop
            raise ShardWorkerError(self.shard_id, "worker stopped")
        return self._scorer.score_terms(terms)

    def ping(self) -> bool:
        return self.alive()

    def stop(self) -> None:
        self._scorer = None


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class ShardSupervisor:
    """Keeps one resident worker per shard and supervises the fleet.

    :attr:`_lock` guards the worker table and the generation counters;
    it is *not* held across score RPCs (each worker's own lock
    serializes its pipe), so shards answer concurrently.  Respawns are
    generation-checked: concurrent threads that both witness a dead
    worker race to :meth:`respawn`, the loser sees the generation
    already advanced and reuses the winner's fresh worker.
    """

    def __init__(
        self,
        shards: Sequence[InvertedIndex],
        stats: GlobalStats,
        *,
        use_processes: bool | None = None,
    ) -> None:
        if use_processes is None:
            use_processes = _fork_available()
        if use_processes and not _fork_available():
            raise ValueError("process-resident workers require fork")
        if not use_processes and _fork_available() is False:
            warnings.warn(
                "fork start method unavailable; resident shard workers "
                "degrading to in-process scorers (results are identical, "
                "there is no process boundary to crash)",
                RuntimeWarning,
                stacklevel=2,
            )
        self._shards = tuple(shards)
        self._stats = stats
        self._use_processes = use_processes
        self._lock = witness_lock("ShardSupervisor._lock")
        self._workers: dict[int, object] = {}
        self._closed = False
        for shard_id in range(len(self._shards)):
            self._workers[shard_id] = self._spawn(shard_id, generation=0)

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def resident_processes(self) -> bool:
        """Whether workers are real processes (``fork``) or the thread
        fallback."""
        return self._use_processes

    # ------------------------------------------------------------------
    # Spawning and supervision

    def _spawn(self, shard_id: int, generation: int):
        """Fork one worker (or build its thread-fallback twin)."""
        if not self._use_processes:
            scorer = BM25Scorer(self._shards[shard_id], stats=self._stats).warm()
            return _ResidentThreadWorker(shard_id, scorer, generation)
        global _RESIDENT_SPEC
        parent_conn, child_conn = multiprocessing.Pipe()
        # The allowlisted shared-global write (conclint CONC001):
        # publish the spec for fork inheritance, retract in the
        # outermost finally no matter what fails — including Process()
        # construction or start() itself (pid/fd exhaustion).
        _RESIDENT_SPEC = (self._shards, self._stats)
        try:
            process = multiprocessing.get_context("fork").Process(
                target=_worker_main,
                args=(shard_id, child_conn),
                daemon=True,
                name=f"repro-shard-{shard_id}",
            )
            process.start()
        finally:
            _RESIDENT_SPEC = None
        child_conn.close()
        return ShardWorker(shard_id, process, parent_conn, generation)

    def worker(self, shard_id: int):
        """The current worker handle for ``shard_id``."""
        with self._lock:
            return self._workers[shard_id]

    def generation(self, shard_id: int) -> int:
        """How many times this shard's worker has been (re)spawned."""
        with self._lock:
            return self._workers[shard_id].generation

    def alive(self, shard_id: int) -> bool:
        return self.worker(shard_id).alive()

    def heartbeat(self) -> dict[int, bool]:
        """One liveness round-trip per shard: ``{shard_id: healthy}``.

        Pure observation — dead shards are reported, not respawned, so
        a monitoring sweep never races the scatter path's own
        generation-checked revival.
        """
        return {
            shard_id: self.worker(shard_id).ping()
            for shard_id in range(len(self._shards))
        }

    def respawn(self, shard_id: int, seen_generation: int | None = None):
        """Replace ``shard_id``'s worker with a freshly spawned one.

        With ``seen_generation`` the respawn is conditional: if another
        thread already revived the shard past that generation, nothing
        is spawned and the incumbent is returned — the loser of the
        race must reuse the winner's worker, not kill it.  The table
        swap happens under the supervisor lock; the retired worker is
        stopped only after release, so the supervisor never acquires a
        worker's pipe lock while holding its own — the two sites stay
        independent in the canonical hierarchy.
        """
        with self._lock:
            if self._closed:
                raise ShardWorkerError(shard_id, "supervisor closed")
            incumbent = self._workers[shard_id]
            if (
                seen_generation is not None
                and incumbent.generation > seen_generation
            ):
                return incumbent
            replacement = self._spawn(
                shard_id, generation=incumbent.generation + 1
            )
            self._workers[shard_id] = replacement
        incumbent.stop()
        return replacement

    # ------------------------------------------------------------------
    # The scatter RPC

    def score(self, shard_id: int, terms: Sequence[str]) -> dict[int, float]:
        """Score ``terms`` on the shard's resident worker.

        Real pipe death (the worker crashed or was killed) earns one
        transparent respawn-and-retry: the revived worker holds the
        same frozen shard, so the retried RPC returns the floats the
        dead worker would have.  A second death in a row propagates as
        :class:`ShardWorkerError` — a genuine failure for the
        resilience ladder to exhaust, never an injected one.
        """
        worker = self.worker(shard_id)
        try:
            return worker.score(terms)
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError):
            revived = self.respawn(shard_id, seen_generation=worker.generation)
            try:
                return revived.score(terms)
            except (
                EOFError,
                BrokenPipeError,
                ConnectionResetError,
                OSError,
            ) as exc:
                raise ShardWorkerError(
                    shard_id, f"died twice in one scatter ({exc!r})"
                ) from exc

    # ------------------------------------------------------------------
    # Teardown

    def close(self) -> None:
        """Stop every worker and refuse further respawns (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
            # Rebind rather than .clear(): the table swap stays guarded
            # either way, and the rebind keeps conclint's name-based
            # dispatch from conflating a dict clear with the cache
            # classes' clear() methods.
            self._workers = {}
        for worker in workers:
            worker.stop()


class ResidentShardedSearchEngine(ShardedSearchEngine):
    """The sharded engine with its shards resident in worker processes.

    A drop-in :class:`ShardedSearchEngine`: ranking, caches, the exact
    merge and the partial-coverage degradation are all inherited — only
    the ``_score_shard`` seam changes, routing each scatter to the
    supervisor's resident worker for that shard.  The workers hold the
    same frozen shard indexes behind the same broadcast stats, so every
    float is identical to the in-process engine's, which is identical
    to the single index's.

    The supervisor table is epoch-tagged like the scorer table: a shard
    mutation moves the composite epoch, the stale fleet is stopped, and
    a fresh one forks against the re-frozen shards — the cache-coherence
    story (cachelint/cachewitness) is unchanged because the query cache
    keys already carry the epoch.

    Process model: the engine records its owner pid at construction.
    Forked study workers inherit the object (and the parent's pipe fds)
    but score in-process instead — two processes speaking over one
    inherited pipe would interleave frames — which reuses the inherited
    warmed scorers and produces the same floats.
    """

    def __init__(
        self,
        corpus: Corpus,
        registry: DomainRegistry,
        weights: SeoWeights | None = None,
        max_per_domain: int = 2,
        *,
        shards: int = 4,
        builders: int = 1,
        build_executor: str = "process",
    ) -> None:
        self._owner_pid = os.getpid()
        #: ``(epoch, supervisor)`` — the resident fleet for that epoch;
        #: single-writer like the scorer/static tables (index mutation
        #: concurrent with queries is outside the engine's contract).
        self._supervisor_table: tuple[int, ShardSupervisor] | None = None
        super().__init__(
            corpus,
            registry,
            weights,
            max_per_domain,
            shards=shards,
            builders=builders,
            build_executor=build_executor,
        )

    def _warm(self) -> None:
        super()._warm()
        if type(self._weights) is SeoWeights and self._corpus.pages:
            self._supervisor()

    def supervisor(self) -> ShardSupervisor:
        """The resident fleet (spawning it on first use)."""
        return self._supervisor()

    def _supervisor(self) -> ShardSupervisor:
        index = self._index
        assert isinstance(index, ShardedIndex)
        epoch = index.epoch
        tagged = self._supervisor_table
        if tagged is not None and tagged[0] == epoch:
            return tagged[1]
        if tagged is not None:
            # The epoch moved: the old fleet serves stale shards.  Stop
            # it before forking successors so worker processes never
            # accumulate across mutations.
            tagged[1].close()
        for shard in index.shards:
            shard.freeze()
        supervisor = ShardSupervisor(index.shards, index.global_stats())
        self._supervisor_table = (epoch, supervisor)
        return supervisor

    def close(self) -> None:
        """Stop the resident fleet (tests and orderly shutdown; the
        daemon flag reaps workers at interpreter exit regardless)."""
        tagged = self._supervisor_table
        if tagged is not None:
            tagged[1].close()
            self._supervisor_table = None

    # ------------------------------------------------------------------
    # The resident seams

    def _score_shard(
        self, shard_id: int, terms: Sequence[str], scorer: BM25Scorer
    ) -> dict[int, float]:
        if os.getpid() != self._owner_pid:
            # A forked study worker: the inherited pipes belong to the
            # parent's RPCs.  Score on the inherited warmed scorer —
            # the same code over the same frozen shard, same floats.
            return scorer.score_terms(terms)
        return self._supervisor().score(shard_id, terms)

    def _shard_fault(self, shard_id: int, fault) -> None:
        """Crash-kind injected faults kill the worker in effigy: the
        supervisor respawns the shard immediately, so the ladder's
        retry exercises the spawn path and lands on a fresh process."""
        if fault.kind != "crash" or os.getpid() != self._owner_pid:
            return
        supervisor = self._supervisor()
        supervisor.respawn(
            shard_id, seen_generation=supervisor.generation(shard_id)
        )
        ctx = self._resilience
        if ctx is not None:
            # Outside every supervisor/worker lock: events take the
            # ResilienceEvents lock, which sits before the shard locks
            # in the canonical hierarchy.
            ctx.events.bump("shard_worker_respawns")
