"""Okapi BM25 scoring over the inverted index.

Standard formulation with the non-negative IDF variant
(``log(1 + (N - df + 0.5) / (df + 0.5))``), so very common terms score
zero rather than negative — important in a small synthetic corpus where a
vertical keyword can appear in most documents.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.search.index import InvertedIndex
from repro.search.tokenize import tokenize

__all__ = ["BM25Scorer"]


class BM25Scorer:
    """BM25 with tunable ``k1`` (tf saturation) and ``b`` (length norm)."""

    def __init__(self, index: InvertedIndex, k1: float = 1.4, b: float = 0.75) -> None:
        if k1 < 0:
            raise ValueError("k1 must be non-negative")
        if not 0.0 <= b <= 1.0:
            raise ValueError("b must be in [0, 1]")
        self._index = index
        self._k1 = k1
        self._b = b

    def idf(self, term: str) -> float:
        """Non-negative inverse document frequency for an analyzed term."""
        n = self._index.doc_count
        df = self._index.document_frequency(term)
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5))

    def score_all(self, query: str) -> dict[int, float]:
        """BM25 scores for every document matching at least one term."""
        return self.score_terms(tokenize(query))

    def score_terms(self, terms: Sequence[str]) -> dict[int, float]:
        """BM25 scores from pre-analyzed query terms."""
        scores: dict[int, float] = {}
        avg_len = self._index.average_doc_length
        if avg_len == 0.0:
            return scores
        for term in terms:
            idf = self.idf(term)
            if idf == 0.0:
                continue
            for posting in self._index.postings(term):
                tf = posting.term_frequency
                norm = 1.0 - self._b + self._b * (
                    self._index.doc_length(posting.doc_id) / avg_len
                )
                gain = idf * tf * (self._k1 + 1.0) / (tf + self._k1 * norm)
                scores[posting.doc_id] = scores.get(posting.doc_id, 0.0) + gain
        return scores
