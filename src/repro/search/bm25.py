"""Okapi BM25 scoring over the inverted index.

Standard formulation with the non-negative IDF variant
(``log(1 + (N - df + 0.5) / (df + 0.5))``), so very common terms score
zero rather than negative — important in a small synthetic corpus where a
vertical keyword can appear in most documents.

:meth:`BM25Scorer.score_terms` is the query fast path: term-at-a-time
accumulation over the index's frozen postings arrays, with the per-doc
length norm ``k1 * (1 - b + b * dl/avgdl)`` precomputed once per index
epoch so the per-posting work is one multiply-add and one divide.  It is
**bit-identical** to :meth:`score_terms_reference` — the original
postings-walking implementation, kept as the equivalence oracle — because
every float is produced by the same operations in the same order; the
property tests in ``tests/search/test_fastpath_equivalence.py`` hold the
two to exact equality.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from typing import Protocol

from repro.search.index import InvertedIndex
from repro.search.tokenize import tokenize

__all__ = ["BM25Scorer", "CorpusStats"]


class CorpusStats(Protocol):
    """The corpus-level statistics BM25 reads: N, avgdl, and df.

    An :class:`InvertedIndex` satisfies this directly (the single-shard
    default).  A sharded deployment substitutes the merged
    :class:`repro.search.sharding.GlobalStats` so every shard's scorer
    sees corpus-wide numbers — the seam that makes per-shard scores
    float-exact equal to single-shard scores.
    """

    @property
    def doc_count(self) -> int: ...

    @property
    def average_doc_length(self) -> float: ...

    def document_frequency(self, term: str) -> int: ...


class BM25Scorer:
    """BM25 with tunable ``k1`` (tf saturation) and ``b`` (length norm).

    ``stats`` defaults to the index itself; passing corpus-wide
    statistics instead changes *which numbers* feed the formula, never
    the operations or their order — so a shard scorer handed global
    stats reproduces the single-shard floats exactly.  External stats
    are a frozen snapshot: if the index grows, build a fresh scorer
    from re-exchanged stats (the sharded engine epoch-tags its scorers
    for exactly this).
    """

    def __init__(
        self,
        index: InvertedIndex,
        k1: float = 1.4,
        b: float = 0.75,
        *,
        stats: CorpusStats | None = None,
    ) -> None:
        if k1 < 0:
            raise ValueError("k1 must be non-negative")
        if not 0.0 <= b <= 1.0:
            raise ValueError("b must be in [0, 1]")
        self._index = index
        self._stats: CorpusStats = stats if stats is not None else index
        self._k1 = k1
        self._b = b
        #: ``(epoch, table)`` — per-doc ``k1 * (1 - b + b * dl/avgdl)``,
        #: rebuilt lazily when the index epoch moves.  Published by a
        #: single attribute store (see the sharing contract): a racing
        #: rebuild under the thread executor swaps in an identical table.
        self._norm_table: tuple[int, Sequence[float] | Mapping[int, float]] | None = None

    def idf(self, term: str) -> float:
        """Non-negative inverse document frequency for an analyzed term."""
        n = self._stats.doc_count
        df = self._stats.document_frequency(term)
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5))

    def warm(self) -> "BM25Scorer":
        """Precompute the norm table now (idempotent; returns self).

        Called at world assembly so forked pool workers inherit the table
        instead of each rebuilding it on first query.
        """
        if self._stats.average_doc_length != 0.0:
            self._norms()
        return self

    def _norms(self) -> Sequence[float] | Mapping[int, float]:
        epoch = self._index.epoch
        cached = self._norm_table
        if cached is not None and cached[0] == epoch:
            return cached[1]
        avg_len = self._stats.average_doc_length
        k1, b = self._k1, self._b
        dense, lengths = self._index.doc_length_table()
        table: Sequence[float] | Mapping[int, float]
        if dense:
            # Same expression the reference evaluates per posting:
            # k1 * (1.0 - b + b * (dl / avg_len)), hoisted per document.
            table = [k1 * (1.0 - b + b * (dl / avg_len)) for dl in lengths]
        else:
            table = {
                doc_id: k1 * (1.0 - b + b * (dl / avg_len))
                for doc_id, dl in lengths.items()
            }
        self._norm_table = (epoch, table)
        return table

    def score_all(self, query: str) -> dict[int, float]:
        """BM25 scores for every document matching at least one term."""
        return self.score_terms(tokenize(query))

    def score_terms(self, terms: Sequence[str]) -> dict[int, float]:
        """BM25 scores from pre-analyzed query terms (the fast path)."""
        scores: dict[int, float] = {}
        if self._stats.average_doc_length == 0.0:
            return scores
        norms = self._norms()
        k1_plus_1 = self._k1 + 1.0
        postings_arrays = self._index.postings_arrays
        get = scores.get
        for term in terms:
            idf = self.idf(term)
            if idf == 0.0:
                continue
            doc_ids, tfs = postings_arrays(term)
            for doc_id, tf in zip(doc_ids, tfs):
                scores[doc_id] = get(doc_id, 0.0) + (
                    idf * tf * k1_plus_1 / (tf + norms[doc_id])
                )
        return scores

    def score_all_reference(self, query: str) -> dict[int, float]:
        """Reference scores for a raw query (see :meth:`score_terms_reference`)."""
        return self.score_terms_reference(tokenize(query))

    def score_terms_reference(self, terms: Sequence[str]) -> dict[int, float]:
        """The original posting-walk implementation, kept as the oracle.

        Property tests assert ``score_terms`` matches this bit-for-bit;
        do not "optimize" it — its value is being the unchanged original.
        """
        scores: dict[int, float] = {}
        avg_len = self._stats.average_doc_length
        if avg_len == 0.0:
            return scores
        for term in terms:
            idf = self.idf(term)
            if idf == 0.0:
                continue
            for posting in self._index.postings(term):
                tf = posting.term_frequency
                norm = 1.0 - self._b + self._b * (
                    self._index.doc_length(posting.doc_id) / avg_len
                )
                gain = idf * tf * (self._k1 + 1.0) / (tf + self._k1 * norm)
                scores[posting.doc_id] = scores.get(posting.doc_id, 0.0) + gain
        return scores
