"""Document-partitioned sharded search with score-identical merge.

Scale-out for the organic substrate: the corpus is partitioned across N
per-shard :class:`~repro.search.index.InvertedIndex` /
:class:`~repro.search.bm25.BM25Scorer` pairs, and queries scatter to
every shard and gather through an exact top-k merge.  The contract is
**float-exactness**: for any shard count, :class:`ShardedSearchEngine`
returns byte-identical results to the single-shard
:class:`~repro.search.engine.SearchEngine` (and therefore to
``search_reference``).  Three mechanisms carry that contract:

* **Pure partition function.** :func:`shard_of` is plain arithmetic on
  ``doc_id`` — no RNG, no state — so the assignment of documents to
  shards is reproducible from the ids alone.

* **Two-phase global-statistics exchange.** Phase one: every shard
  reports a :class:`LocalStats` — local df per term, doc count, total
  token length (an ``int``, so summation is exact).  Phase two: the
  merged :class:`GlobalStats` (global df, N, avgdl) is broadcast back
  and every shard scorer is rebuilt against it.  BM25's inputs are then
  corpus-wide numbers identical to the single index's, and the scoring
  *operations* are untouched, so per-document scores are float-exact.

* **Scatter-gather top-k with exact merge.** Each shard runs the
  term-at-a-time bounded-heap fast path with the same ``k x
  max_per_domain`` headroom; because ``heapq.nsmallest(m, items)``
  equals ``sorted(items)[:m]`` and every global top-m item is a top-m
  item of its own shard, sorting the concatenated per-shard prefixes
  and truncating to the headroom reproduces the single-shard selection
  exactly.  Domain crowding is re-applied over that merged prefix; if
  crowding exhausts it, the merge falls back to the fully sorted union
  of *all* scored documents — the same fallback the single-shard path
  takes.  The whole fast path stays gated by the exact-``SeoWeights``
  check, so blend subclasses route to the uncached reference oracles.

Shard index builds parallelize over a ``fork`` process pool using the
same handshake pattern as ``repro.core.runner._WORKER_WORLD``: page
groups are published in a module global immediately before pool
creation and retracted right after, so forked builders inherit them
copy-on-write and only compact frozen arrays (tuples of ints) come back
over the pipe — never ``Posting`` or ``Page`` objects.  The parent
reconstitutes each shard against its *own* page objects
(:meth:`InvertedIndex.from_frozen_parts`), preserving page identity for
every downstream consumer.  Where ``fork`` is unavailable the build
degrades to threads with a warning, exactly like the study runner.

Cache coherence: the facade :class:`ShardedIndex` exposes a
**composite epoch** — the sum of the shard epochs, a monotone mutation
counter — so the engine's inherited query cache and every epoch-tagged
table stay correct without knowing about shards.
"""

from __future__ import annotations

import heapq
import multiprocessing
import warnings
from collections.abc import Mapping, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

from repro.resilience.coverage import ShardCoverage
from repro.resilience.faults import InjectedFault, ResilienceExhausted
from repro.resilience.quarantine import QuarantineRecord
from repro.search.bm25 import BM25Scorer
from repro.search.engine import SearchEngine, SearchResult
from repro.search.index import InvertedIndex, Posting
from repro.search.seo import SeoWeights
from repro.webgraph.corpus import Corpus
from repro.webgraph.domains import DomainRegistry
from repro.webgraph.pages import Page

__all__ = [
    "GlobalStats",
    "LocalStats",
    "ShardedIndex",
    "ShardedSearchEngine",
    "build_shard_indexes",
    "exchange_global_stats",
    "partition_pages",
    "shard_of",
]

_EMPTY_ARRAYS: tuple[tuple[int, ...], tuple[int, ...]] = ((), ())

#: Executor kinds the shard builder accepts (mirrors the study runner).
BUILD_EXECUTORS = ("process", "thread")


def shard_of(doc_id: int, shard_count: int) -> int:
    """The shard owning ``doc_id`` — a pure function, no RNG.

    Round-robin by id: documents land on ``doc_id mod shard_count``, so
    the assignment is reproducible from the id and the shard count
    alone, and contiguous corpus ids spread evenly.
    """
    if shard_count < 1:
        raise ValueError("shard_count must be at least 1")
    return doc_id % shard_count


def partition_pages(
    pages: Sequence[Page], shard_count: int
) -> list[list[Page]]:
    """Split pages into per-shard groups by :func:`shard_of`.

    Group order within a shard follows the input order, which for the
    corpus generator is ascending ``doc_id`` — the property the merged
    postings rely on.
    """
    groups: list[list[Page]] = [[] for _ in range(shard_count)]
    for page in pages:
        groups[shard_of(page.doc_id, shard_count)].append(page)
    return groups


# ----------------------------------------------------------------------
# Two-phase global-statistics exchange


@dataclass(frozen=True)
class LocalStats:
    """Phase one: what one shard reports about its local documents."""

    shard_id: int
    doc_count: int
    #: Sum of local document lengths, kept integral so the global sum
    #: (and hence avgdl) is exact.
    total_length: int
    #: term -> local document frequency.
    df: Mapping[str, int]


@dataclass(frozen=True)
class GlobalStats:
    """Phase two: the merged statistics broadcast back to every shard.

    Satisfies :class:`repro.search.bm25.CorpusStats`, so a shard scorer
    constructed with ``stats=global_stats`` computes idf and length
    norms from corpus-wide numbers — the same ints and the same
    division the single index would produce.
    """

    doc_count: int
    total_length: int
    #: term -> global document frequency (sum of shard-local df).
    df: Mapping[str, int]

    @property
    def average_doc_length(self) -> float:
        if not self.doc_count:
            return 0.0
        return self.total_length / self.doc_count

    def document_frequency(self, term: str) -> int:
        return self.df.get(term, 0)


def local_stats(shard_id: int, index: InvertedIndex) -> LocalStats:
    """One shard's phase-one report, read off its frozen arrays."""
    arrays = index.freeze()._snapshot().arrays
    return LocalStats(
        shard_id=shard_id,
        doc_count=index.doc_count,
        total_length=index.total_length,
        df={term: len(doc_ids) for term, (doc_ids, __) in arrays.items()},
    )


def exchange_global_stats(
    shard_indexes: Sequence[InvertedIndex],
) -> GlobalStats:
    """Run the two-phase exchange over a set of shard indexes.

    Phase one gathers every shard's :class:`LocalStats`; phase two
    merges them into the :class:`GlobalStats` the caller broadcasts to
    the shard scorers.  Document partitioning makes the merge trivial
    and exact: each document lives in exactly one shard, so global df is
    a sum of disjoint counts and ``N``/``total_length`` are integer
    sums.
    """
    reports = [
        local_stats(shard_id, index)
        for shard_id, index in enumerate(shard_indexes)
    ]
    df: dict[str, int] = {}
    for report in reports:
        for term, count in report.df.items():
            df[term] = df.get(term, 0) + count
    return GlobalStats(
        doc_count=sum(report.doc_count for report in reports),
        total_length=sum(report.total_length for report in reports),
        df=df,
    )


# ----------------------------------------------------------------------
# Parallel shard builds (the _WORKER_WORLD handshake pattern)

#: Page groups inherited by forked shard builders.  Set immediately
#: before the pool is created and cleared right after it shuts down;
#: ``fork`` snapshots them into each child, so pages never cross a
#: pipe — only the compact frozen arrays come back.
_BUILDER_GROUPS: "tuple[tuple[Page, ...], ...] | None" = None


@dataclass(frozen=True)
class _ShardParts:
    """A worker-built shard's picklable core (no pages, no postings)."""

    arrays: dict[str, tuple[tuple[int, ...], tuple[int, ...]]]
    doc_lengths: dict[int, int]
    total_length: int


def _build_parts(pages: Sequence[Page], title_boost: int) -> _ShardParts:
    """Build one shard index and strip it to its picklable parts."""
    index = InvertedIndex(title_boost)
    index.add_all(pages)
    arrays, doc_lengths, total_length = index.frozen_parts()
    return _ShardParts(
        arrays=arrays, doc_lengths=doc_lengths, total_length=total_length
    )


def _build_parts_inherited(shard_id: int, title_boost: int) -> _ShardParts:
    """Build one shard in a forked worker, via the inherited groups."""
    groups = _BUILDER_GROUPS
    if groups is None:  # pragma: no cover - defensive; fork guarantees it
        raise RuntimeError("builder has no inherited page groups")
    return _build_parts(groups[shard_id], title_boost)


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def build_shard_indexes(
    groups: Sequence[Sequence[Page]],
    *,
    builders: int = 1,
    executor: str = "process",
    title_boost: int = 3,
) -> list[InvertedIndex]:
    """Build one :class:`InvertedIndex` per page group, possibly in parallel.

    ``builders=1`` takes the plain sequential path.  With more builders
    the groups go through a ``fork`` process pool (pages inherited
    copy-on-write, frozen arrays shipped back) or, where ``fork`` is
    unavailable, a thread pool — results are identical either way, and
    identical to the sequential build: each shard's arrays, statistics
    and epoch match what ``add_all`` over the same group produces.
    """
    if builders < 1:
        raise ValueError("builders must be at least 1")
    if executor not in BUILD_EXECUTORS:
        raise ValueError(
            f"executor must be one of {BUILD_EXECUTORS}, got {executor!r}"
        )
    if builders == 1 or len(groups) <= 1:
        indexes = []
        for pages in groups:
            index = InvertedIndex(title_boost)
            index.add_all(pages)
            indexes.append(index.freeze())
        return indexes

    global _BUILDER_GROUPS
    use_processes = executor == "process" and _fork_available()
    if executor == "process" and not use_processes:
        warnings.warn(
            "fork start method unavailable; shard builds degrading from the "
            "process executor to threads (results are identical, sharing "
            "semantics differ)",
            RuntimeWarning,
            stacklevel=2,
        )
    width = min(builders, len(groups))
    if use_processes:
        # The allowlisted shared-global write (see conclint CONC001):
        # publish the groups for fork inheritance, retract in the
        # outermost finally no matter what fails.
        _BUILDER_GROUPS = tuple(tuple(pages) for pages in groups)
    try:
        # Pool creation sits inside the try: if it fails (fd/process
        # limits), the handshake global must still be retracted.
        if use_processes:
            pool = ProcessPoolExecutor(
                max_workers=width,
                mp_context=multiprocessing.get_context("fork"),
            )
        else:
            pool = ThreadPoolExecutor(max_workers=width)
        try:
            if use_processes:
                futures = [
                    pool.submit(_build_parts_inherited, shard_id, title_boost)
                    for shard_id in range(len(groups))
                ]
            else:
                futures = [
                    pool.submit(_build_parts, pages, title_boost)
                    for pages in groups
                ]
            # Collection in submission order keeps shard order (and
            # therefore everything downstream) deterministic.
            parts = [future.result() for future in futures]
        finally:
            pool.shutdown()
    finally:
        if use_processes:
            _BUILDER_GROUPS = None

    return [
        InvertedIndex.from_frozen_parts(
            pages,
            shard_parts.arrays,
            shard_parts.doc_lengths,
            shard_parts.total_length,
            title_boost=title_boost,
        )
        for pages, shard_parts in zip(groups, parts)
    ]


# ----------------------------------------------------------------------
# The facade index


class ShardedIndex(InvertedIndex):
    """A read view over N shard indexes with global statistics.

    Presents the full :class:`InvertedIndex` API — statistics from the
    merged :class:`GlobalStats`, per-document accessors routed by
    :func:`shard_of`, postings lazily merged by ascending ``doc_id`` —
    so epoch-agnostic consumers (the retriever, the reference scorer)
    work over a sharded corpus unchanged and produce the exact
    single-index floats.

    :attr:`epoch` is the **composite epoch**: the sum of the shard
    epochs.  Each ``add`` bumps exactly one shard's counter by one, so
    the sum is a monotone global mutation counter and every
    ``(..., epoch)``-keyed cache stays coherent.  The merged views held
    here are epoch-tagged the same way the scorer's norm table is, so
    they can never serve a stale merge.
    """

    def __init__(
        self, shards: Sequence[InvertedIndex], title_boost: int = 3
    ) -> None:
        if not shards:
            raise ValueError("at least one shard is required")
        super().__init__(title_boost)
        self._shard_indexes = tuple(shards)
        #: ``(epoch, GlobalStats)`` — re-exchanged when a shard grows.
        self._stats_table: tuple[int, GlobalStats] | None = None
        #: ``(epoch, {term: merged arrays})`` — per-term merge memo,
        #: dropped wholesale when the composite epoch moves.
        self._merged_table: tuple[
            int, dict[str, tuple[tuple[int, ...], tuple[int, ...]]]
        ] | None = None
        #: ``(epoch, (dense, lengths))`` — merged doc-length table.
        self._lengths_table: tuple[
            int, tuple[bool, Sequence[int] | Mapping[int, int]]
        ] | None = None
        #: ``(epoch, {term: posting views})`` — merged Posting tuples,
        #: epoch-tagged like :attr:`_merged_table` (the inherited
        #: ``_views`` memo is reset by the single index's own ``add``;
        #: the facade's ``add`` routes to a shard instead, so its memos
        #: must carry the composite epoch themselves).
        self._views_table: tuple[
            int, dict[str, tuple[Posting, ...]]
        ] | None = None

    # -- sharding-specific API

    @property
    def shards(self) -> tuple[InvertedIndex, ...]:
        """The per-shard indexes (read-only use)."""
        return self._shard_indexes

    @property
    def shard_count(self) -> int:
        return len(self._shard_indexes)

    def shard_for(self, doc_id: int) -> InvertedIndex:
        """The shard index owning ``doc_id``."""
        return self._shard_indexes[shard_of(doc_id, len(self._shard_indexes))]

    def global_stats(self) -> GlobalStats:
        """The merged statistics for the current composite epoch.

        Runs the two-phase exchange on first use and after any shard
        mutation (the epoch tag invalidates the previous merge).
        """
        epoch = self.epoch
        tagged = self._stats_table
        if tagged is not None and tagged[0] == epoch:
            return tagged[1]
        stats = exchange_global_stats(self._shard_indexes)
        self._stats_table = (epoch, stats)
        return stats

    # -- InvertedIndex API, routed/merged

    @property
    def epoch(self) -> int:
        """Composite epoch: the sum of the shard epochs (monotone)."""
        return sum(index.epoch for index in self._shard_indexes)

    def add(self, page: Page) -> None:
        """Route the page to its shard (bumps the composite epoch)."""
        self.shard_for(page.doc_id).add(page)

    def freeze(self) -> "ShardedIndex":
        """Freeze every shard and run the stats exchange (idempotent)."""
        for index in self._shard_indexes:
            index.freeze()
        self.global_stats()
        return self

    def postings_arrays(
        self, term: str
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        epoch = self.epoch
        tagged = self._merged_table
        if tagged is None or tagged[0] != epoch:
            tagged = (epoch, {})
            self._merged_table = tagged
        merged = tagged[1].get(term)
        if merged is None:
            pairs: list[tuple[int, int]] = []
            for index in self._shard_indexes:
                doc_ids, tfs = index.postings_arrays(term)
                pairs.extend(zip(doc_ids, tfs))
            if not pairs:
                return _EMPTY_ARRAYS
            # Ascending doc_id == the corpus generator's add order, so
            # the merge equals the single index's build-ordered arrays.
            pairs.sort()
            merged = (
                tuple(doc_id for doc_id, __ in pairs),
                tuple(tf for __, tf in pairs),
            )
            tagged[1][term] = merged
        return merged

    def doc_length_table(
        self,
    ) -> tuple[bool, Sequence[int] | Mapping[int, int]]:
        epoch = self.epoch
        tagged = self._lengths_table
        if tagged is not None and tagged[0] == epoch:
            return tagged[1]
        lengths: dict[int, int] = {}
        for index in self._shard_indexes:
            dense, table = index.doc_length_table()
            if dense:
                lengths.update(enumerate(table))
            else:
                lengths.update(table)
        count = len(lengths)
        dense = count > 0 and min(lengths) == 0 and max(lengths) == count - 1
        merged: tuple[bool, Sequence[int] | Mapping[int, int]]
        if dense:
            flat = [0] * count
            for doc_id, length in lengths.items():
                flat[doc_id] = length
            merged = (True, flat)
        else:
            merged = (False, lengths)
        self._lengths_table = (epoch, merged)
        return merged

    def postings(self, term: str) -> Sequence[Posting]:
        doc_ids, tfs = self.postings_arrays(term)
        if not doc_ids:
            return ()
        epoch = self.epoch
        tagged = self._views_table
        if tagged is None or tagged[0] != epoch:
            tagged = (epoch, {})
            self._views_table = tagged
        view = tagged[1].get(term)
        if view is None:
            view = tuple(
                Posting(doc_id=doc_id, term_frequency=tf)
                for doc_id, tf in zip(doc_ids, tfs)
            )
            tagged[1][term] = view
        return view

    def document_frequency(self, term: str) -> int:
        return self.global_stats().document_frequency(term)

    def doc_length(self, doc_id: int) -> int:
        return self.shard_for(doc_id).doc_length(doc_id)

    def page(self, doc_id: int) -> Page:
        return self.shard_for(doc_id).page(doc_id)

    @property
    def doc_count(self) -> int:
        return sum(index.doc_count for index in self._shard_indexes)

    @property
    def total_length(self) -> int:
        return sum(index.total_length for index in self._shard_indexes)

    @property
    def average_doc_length(self) -> float:
        count = self.doc_count
        if not count:
            return 0.0
        # Integer total over integer count: the exact same division the
        # single index performs, so the float is identical.
        return self.total_length / count

    def vocabulary_size(self) -> int:
        return len(self.global_stats().df)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self.shard_for(doc_id)


# ----------------------------------------------------------------------
# The sharded engine


class ShardedSearchEngine(SearchEngine):
    """Organic search over a document-partitioned corpus.

    A drop-in :class:`SearchEngine`: the public query API, the caches,
    the authority model and the reference oracles are all inherited.
    What changes is underneath — :meth:`_build_index` partitions the
    corpus and builds per-shard indexes (in parallel when ``builders >
    1``), and :meth:`_rank_fast` scatters scoring across per-shard
    scorers built against the broadcast :class:`GlobalStats`, then
    gathers through the exact merge described in the module docstring.

    The inherited ``search`` keeps its exact-``SeoWeights`` gate (blend
    subclasses take the uncached reference path over the facade index)
    and its epoch-keyed query cache — the facade's composite epoch
    makes those keys coherent across shard mutations.
    """

    def __init__(
        self,
        corpus: Corpus,
        registry: DomainRegistry,
        weights: SeoWeights | None = None,
        max_per_domain: int = 2,
        *,
        shards: int = 4,
        builders: int = 1,
        build_executor: str = "process",
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if builders < 1:
            raise ValueError("builders must be at least 1")
        if build_executor not in BUILD_EXECUTORS:
            raise ValueError(
                f"build_executor must be one of {BUILD_EXECUTORS}, "
                f"got {build_executor!r}"
            )
        self._shard_count = shards
        self._builders = builders
        self._build_executor = build_executor
        #: ``(epoch, scorers)`` — per-shard scorers bound to the stats
        #: broadcast at that epoch; rebuilt by re-exchange when a shard
        #: grows, exactly like the scorer's norm table.
        self._shard_scorer_table: tuple[int, tuple[BM25Scorer, ...]] | None = None
        #: The world's resilience bundle, when installed: scatters then
        #: run behind the ``search.shard`` fault site with per-shard
        #: breakers, and exhausted shards degrade to a partial merge
        #: with a :class:`~repro.resilience.coverage.ShardCoverage`
        #: record.  ``None`` keeps the scatter on the direct path.
        self._resilience = None
        super().__init__(corpus, registry, weights, max_per_domain)

    @property
    def shard_count(self) -> int:
        return self._shard_count

    def _build_index(self, corpus: Corpus) -> InvertedIndex:
        groups = partition_pages(corpus.pages, self._shard_count)
        shard_indexes = build_shard_indexes(
            groups,
            builders=self._builders,
            executor=self._build_executor,
        )
        return ShardedIndex(shard_indexes)

    def _warm(self) -> None:
        super()._warm()
        if type(self._weights) is SeoWeights and self._corpus.pages:
            self._shard_scorers()

    def _shard_scorers(self) -> tuple[BM25Scorer, ...]:
        """Per-shard scorers bound to the current global stats.

        The broadcast half of the two-phase exchange: every scorer
        reads idf/avgdl from the merged :class:`GlobalStats`, norms
        from its own shard's lengths.  Epoch-tagged so a shard mutation
        triggers a re-exchange and a fresh broadcast.
        """
        index = self._index
        assert isinstance(index, ShardedIndex)
        epoch = index.epoch
        tagged = self._shard_scorer_table
        if tagged is not None and tagged[0] == epoch:
            return tagged[1]
        stats = index.global_stats()
        scorers = tuple(
            BM25Scorer(shard, stats=stats).warm() for shard in index.shards
        )
        self._shard_scorer_table = (epoch, scorers)
        return scorers

    # ------------------------------------------------------------------
    # Resilient scatter

    def set_resilience(self, context) -> None:
        """Install (or with ``None`` detach) the world's resilience
        bundle; scatters then run behind the ``search.shard`` site."""
        self._resilience = context

    def _score_shard(
        self, shard_id: int, terms: Sequence[str], scorer: BM25Scorer
    ) -> dict[int, float]:
        """Score one shard — the seam a resident executor overrides to
        route the call to a long-lived worker process."""
        return scorer.score_terms(terms)

    def _shard_fault(self, shard_id: int, fault: InjectedFault) -> None:
        """Observe one injected fault on a shard scatter.

        A hook for supervised executors: the resident engine respawns
        the shard's worker on a crash-kind fault so the retry lands on
        a fresh process.  The in-process engine has no worker to lose.
        """

    def _scatter_scores(
        self, terms: Sequence[str]
    ) -> tuple[list, "ShardCoverage | None"]:
        """Scatter scoring across shards, fault-tolerantly.

        Without a resilience context this is the direct loop.  With one,
        each shard scatter runs behind the ``search.shard`` fault site
        — deterministic injection keyed ``(shard id, query text)``, the
        retry ladder, a per-shard circuit breaker — and a shard that is
        exhausted anyway contributes ``None`` instead of raising.  Lost
        shards are recorded as a :class:`ShardCoverage` (plus a
        ``degraded``-kind quarantine record, so report annotations pick
        the cell up), and the caller merges the survivors.  Recoverable
        faults recover *inside* the ladder, so they reach neither the
        coverage log nor the merge: the scores list is then exactly the
        direct loop's, which is what keeps recoverable chaos runs
        byte-identical to clean ones.
        """
        scorers = self._shard_scorers()
        ctx = self._resilience
        if ctx is None:
            return [
                self._score_shard(shard_id, terms, scorer)
                for shard_id, scorer in enumerate(scorers)
            ], None
        query = " ".join(terms)
        shard_scores: list = []
        missing: list[int] = []
        reasons: list[str] = []
        attempts = 0
        for shard_id, scorer in enumerate(scorers):
            try:
                scores = ctx.call(
                    "search.shard",
                    (shard_id, query),
                    lambda shard_id=shard_id, scorer=scorer: self._score_shard(
                        shard_id, terms, scorer
                    ),
                    engine=f"search.shard:{shard_id}",
                    on_fault=lambda fault, shard_id=shard_id: self._shard_fault(
                        shard_id, fault
                    ),
                )
            except ResilienceExhausted as exc:
                shard_scores.append(None)
                missing.append(shard_id)
                reasons.append(exc.reason)
                attempts = max(attempts, exc.attempts)
            else:
                shard_scores.append(scores)
        if not missing:
            return shard_scores, None
        coverage = ShardCoverage(
            phase=ctx.current_phase,
            query=query,
            total_shards=len(scorers),
            missing=tuple(missing),
            reasons=tuple(reasons),
        )
        ctx.coverage.record(coverage)
        ctx.events.bump("shard_scatter_losses", len(missing))
        ctx.quarantine.record(
            QuarantineRecord(
                phase=coverage.phase,
                site="search.shard",
                engine="search",
                key=query,
                attempts=attempts,
                reason="; ".join(
                    f"shard {shard_id}: {reason}"
                    for shard_id, reason in zip(missing, reasons)
                ),
                kind="degraded",
            )
        )
        return shard_scores, coverage

    def _rank_fast_cacheable(
        self, terms: Sequence[str], k: int
    ) -> tuple[list[SearchResult], bool]:
        """Scatter, merge, and report whether coverage was complete.

        A partial merge (lost shards) must not enter the query cache —
        the cache key carries the index epoch, and a recovered shard
        does not move it, so a memoized partial page would replay its
        ranking skew forever.
        """
        shard_scores, coverage = self._scatter_scores(terms)
        return self._merge_ranked(shard_scores, k), coverage is None

    def _rank_fast(self, terms: Sequence[str], k: int) -> list[SearchResult]:
        """Scatter-gather top-``k``, float-exact vs the single-shard path.

        Each shard scores its own documents (global stats, local
        postings) and selects its bounded-heap top-``m`` with the same
        ``m = k x max_per_domain`` headroom the single-shard path uses.
        The gathered prefixes are sorted and truncated to ``m`` — by
        the subset argument in the module docstring this equals
        ``sorted(all items)[:m]`` exactly — then domain crowding runs
        over the merged prefix.  If crowding exhausts it while scored
        documents remain un-gathered, the fallback re-sorts the *full*
        union, matching the single-shard fallback order.
        """
        shard_scores, __ = self._scatter_scores(terms)
        return self._merge_ranked(shard_scores, k)

    def _merge_ranked(
        self, shard_scores: Sequence, k: int
    ) -> list[SearchResult]:
        """The exact gather half of the scatter: merge per-shard scores.

        ``None`` entries (shards lost past the resilience ladder) and
        empty dicts are skipped alike, so the merge over the survivors
        is *by construction* the full merge of a corpus that never had
        the lost shards' documents — float-exact for the shards that
        answered, with ``max_bm25`` renormalized over the survivors
        exactly as a smaller corpus would.  All shards lost means an
        empty page, never an exception.
        """
        if not any(shard_scores):
            return []
        max_bm25 = max(
            max(scores.values()) for scores in shard_scores if scores
        )
        statics = self._statics()
        w_rel = self._weights.relevance
        headroom = k * self._max_per_domain
        pools: list[list[tuple[float, int]]] = []
        gathered: list[tuple[float, int]] = []
        total = 0
        for scores in shard_scores:
            if not scores:
                continue
            total += len(scores)
            if max_bm25:
                items = [
                    (
                        -(
                            (
                                w_rel * (raw / max_bm25)
                                + (s := statics[doc_id])[0]
                                + s[1]
                            )
                            + s[2]
                        ),
                        doc_id,
                    )
                    for doc_id, raw in scores.items()
                ]
            else:
                items = [
                    (
                        -(
                            (w_rel * 0.0 + (s := statics[doc_id])[0] + s[1])
                            + s[2]
                        ),
                        doc_id,
                    )
                    for doc_id, raw in scores.items()
                ]
            pools.append(items)
            if headroom < len(items):
                gathered.extend(heapq.nsmallest(headroom, items))
            else:
                gathered.extend(items)
        gathered.sort()
        top: Sequence[tuple[float, int]] = (
            gathered[:headroom] if headroom < len(gathered) else gathered
        )
        results = self._crowd(top, k)
        if len(results) < k and len(top) < total:
            # Crowding ate the merged headroom: fall back to the full
            # ordering over every scored document, like the single shard.
            full = [item for items in pools for item in items]
            full.sort()
            results = self._crowd(full, k)
        return results
