"""PageRank over the domain link graph.

Power iteration with damping and uniform teleportation; dangling nodes
(no outgoing links) redistribute their mass uniformly, the standard
treatment.  Implemented from scratch (networkx is available in the
environment but the algorithm is part of the substrate we owe the paper).
"""

from __future__ import annotations

from repro.webgraph.linkgraph import LinkGraph

__all__ = ["pagerank"]


def pagerank(
    graph: LinkGraph,
    damping: float = 0.85,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
) -> dict[str, float]:
    """PageRank scores for every node of ``graph`` (they sum to 1).

    Parameters
    ----------
    graph:
        The weighted domain digraph.
    damping:
        Probability of following a link rather than teleporting.
    tolerance:
        L1 convergence threshold between iterations.
    max_iterations:
        Hard cap on power-iteration steps.
    """
    if not 0.0 <= damping < 1.0:
        raise ValueError(f"damping must be in [0, 1), got {damping}")
    nodes = graph.nodes()
    n = len(nodes)
    if n == 0:
        return {}

    # Precompute normalized out-edges once.
    out_norm: dict[str, list[tuple[str, float]]] = {}
    dangling: list[str] = []
    for node in nodes:
        edges = graph.out_edges(node)
        total = sum(edges.values())
        if total > 0:
            out_norm[node] = [(t, w / total) for t, w in edges.items()]
        else:
            dangling.append(node)

    rank = {node: 1.0 / n for node in nodes}
    teleport = (1.0 - damping) / n
    for _ in range(max_iterations):
        dangling_mass = sum(rank[node] for node in dangling)
        next_rank = {node: teleport + damping * dangling_mass / n for node in nodes}
        for node, edges in out_norm.items():
            share = rank[node]
            for target, fraction in edges:
                next_rank[target] += damping * share * fraction
        delta = sum(abs(next_rank[node] - rank[node]) for node in nodes)
        rank = next_rank
        if delta < tolerance:
            break
    return rank
