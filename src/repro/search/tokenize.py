"""Text analysis for indexing and querying.

A small, deterministic analyzer: lowercase, split on non-alphanumerics,
drop stopwords and single characters, and apply a light suffix stemmer so
that "phones" matches "phone" and "ranking" matches "rank".  Both the
index and the query side use the same pipeline, which is all BM25 needs.
"""

from __future__ import annotations

__all__ = ["STOPWORDS", "stem", "tokenize"]

STOPWORDS = frozenset(
    """
    a an and are as at be best by for from has have how i in is it its of on
    or that the this to top was we what when where which who why will with
    you your
    """.split()
)

_SUFFIXES = ("ings", "ing", "edly", "ied", "ies", "ed", "ly")


def stem(token: str) -> str:
    """Light suffix stripping (an S-stemmer variant).

    Deliberately conservative: strips one suffix when the stem stays at
    least three characters, so "airlines" -> "airline" but "gps" stays
    "gps"; a trailing plural "s" is removed unless the word ends in "ss"
    or "us" ("glass", "bonus" stay intact).
    """
    for suffix in _SUFFIXES:
        if token.endswith(suffix) and len(token) - len(suffix) >= 3:
            return token[: -len(suffix)]
    if (
        token.endswith("s")
        and not token.endswith(("ss", "us"))
        and len(token) >= 4
    ):
        return token[:-1]
    return token


def tokenize(text: str) -> list[str]:
    """Analyze ``text`` into index terms.

    >>> tokenize("Top 10 most reliable smartphones in 2025!")
    ['10', 'most', 'reliabl', 'smartphon', '2025']
    """
    tokens = []
    word: list[str] = []
    for ch in text.lower():
        if ch.isalnum():
            word.append(ch)
        elif word:
            tokens.append("".join(word))
            word = []
    if word:
        tokens.append("".join(word))
    return [stem(t) for t in tokens if len(t) > 1 and t not in STOPWORDS]
