"""Inverted index over the synthetic corpus.

Classic postings-list design: term -> [(doc_id, term_frequency)], plus
per-document lengths and the corpus statistics BM25 needs.  Title terms
are indexed with a configurable boost (counted multiple times), a standard
trick that stands in for field-weighted scoring.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.search.tokenize import tokenize
from repro.webgraph.pages import Page

__all__ = ["InvertedIndex", "Posting"]


@dataclass(frozen=True)
class Posting:
    """One document's entry in a term's postings list."""

    doc_id: int
    term_frequency: int


class InvertedIndex:
    """Term -> postings mapping with document statistics.

    Build once with :meth:`add` / :meth:`add_all`; the index is append-only
    (re-adding a ``doc_id`` raises).
    """

    def __init__(self, title_boost: int = 3) -> None:
        if title_boost < 1:
            raise ValueError("title_boost must be at least 1")
        self._title_boost = title_boost
        self._postings: dict[str, list[Posting]] = {}
        self._doc_lengths: dict[int, int] = {}
        self._pages: dict[int, Page] = {}
        self._total_length = 0

    def add(self, page: Page) -> None:
        """Index one page."""
        if page.doc_id in self._pages:
            raise ValueError(f"doc_id {page.doc_id} already indexed")
        term_counts: dict[str, int] = {}
        title_terms = tokenize(page.title)
        body_terms = tokenize(page.body)
        for term in title_terms:
            term_counts[term] = term_counts.get(term, 0) + self._title_boost
        for term in body_terms:
            term_counts[term] = term_counts.get(term, 0) + 1

        length = self._title_boost * len(title_terms) + len(body_terms)
        self._doc_lengths[page.doc_id] = length
        self._total_length += length
        self._pages[page.doc_id] = page
        for term, count in term_counts.items():
            self._postings.setdefault(term, []).append(
                Posting(doc_id=page.doc_id, term_frequency=count)
            )

    def add_all(self, pages: Iterable[Page]) -> None:
        for page in pages:
            self.add(page)

    def postings(self, term: str) -> list[Posting]:
        """Postings list for an (already analyzed) term; empty if unseen."""
        return list(self._postings.get(term, []))

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return len(self._postings.get(term, []))

    def doc_length(self, doc_id: int) -> int:
        """Token count of a document (title boost included)."""
        return self._doc_lengths[doc_id]

    def page(self, doc_id: int) -> Page:
        """The indexed page for ``doc_id``."""
        return self._pages[doc_id]

    @property
    def doc_count(self) -> int:
        return len(self._pages)

    @property
    def average_doc_length(self) -> float:
        if not self._pages:
            return 0.0
        return self._total_length / len(self._pages)

    def vocabulary_size(self) -> int:
        """Number of distinct indexed terms."""
        return len(self._postings)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._pages
