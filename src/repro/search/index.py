"""Inverted index over the synthetic corpus.

Classic postings-list design: term -> [(doc_id, term_frequency)], plus
per-document lengths and the corpus statistics BM25 needs.  Title terms
are indexed with a configurable boost (counted multiple times), a standard
trick that stands in for field-weighted scoring.

The index has two phases.  During *build* (:meth:`add` / :meth:`add_all`)
postings accumulate in per-term lists.  The first read through
:meth:`freeze`, :meth:`postings_arrays` or :meth:`doc_length_table`
freezes that state into immutable parallel arrays — one ``doc_ids`` tuple
and one ``term_frequencies`` tuple per term, plus a doc-length table laid
out densely when doc ids are contiguous — which the query fast path scans
without per-call copies or per-posting object dispatch.  A later ``add``
thaws the snapshot and bumps :attr:`epoch`, so anything keyed on
``(..., epoch)`` can never serve stale results.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.search.tokenize import tokenize
from repro.webgraph.pages import Page

__all__ = ["InvertedIndex", "Posting"]


@dataclass(frozen=True)
class Posting:
    """One document's entry in a term's postings list."""

    doc_id: int
    term_frequency: int


@dataclass(frozen=True)
class _FrozenPostings:
    """An immutable snapshot of the index's postings at one epoch.

    Built entirely off to the side and published through a single
    attribute store, so a racing rebuild under the thread executor can
    only ever swap in an identical snapshot — never expose a torn one.
    """

    epoch: int
    #: term -> (doc_ids, term_frequencies), parallel and build-ordered.
    arrays: dict[str, tuple[tuple[int, ...], tuple[int, ...]]]
    #: doc lengths; a dense list indexed by doc_id when ids are the
    #: contiguous range 0..n-1 (the corpus generator's layout), else a dict.
    lengths: Sequence[int] | Mapping[int, int]
    dense: bool


_EMPTY_ARRAYS: tuple[tuple[int, ...], tuple[int, ...]] = ((), ())


class InvertedIndex:
    """Term -> postings mapping with document statistics.

    Build once with :meth:`add` / :meth:`add_all`; the index is append-only
    (re-adding a ``doc_id`` raises).  Read accessors hand out **immutable
    views** onto frozen internal state — callers share storage with the
    index and must not (and cannot) mutate it; there is no defensive
    copying anywhere on the query path.
    """

    def __init__(self, title_boost: int = 3) -> None:
        if title_boost < 1:
            raise ValueError("title_boost must be at least 1")
        self._title_boost = title_boost
        self._postings: dict[str, list[Posting]] = {}
        self._doc_lengths: dict[int, int] = {}
        self._pages: dict[int, Page] = {}
        self._total_length = 0
        self._mutations = 0
        self._frozen: _FrozenPostings | None = None
        #: Per-term tuple views handed out by :meth:`postings`, built
        #: lazily and invalidated wholesale by :meth:`add`.
        self._views: dict[str, tuple[Posting, ...]] = {}

    def add(self, page: Page) -> None:
        """Index one page (thaws any frozen snapshot; bumps the epoch)."""
        if page.doc_id in self._pages:
            raise ValueError(f"doc_id {page.doc_id} already indexed")
        term_counts: dict[str, int] = {}
        title_terms = tokenize(page.title)
        body_terms = tokenize(page.body)
        for term in title_terms:
            term_counts[term] = term_counts.get(term, 0) + self._title_boost
        for term in body_terms:
            term_counts[term] = term_counts.get(term, 0) + 1

        length = self._title_boost * len(title_terms) + len(body_terms)
        self._doc_lengths[page.doc_id] = length
        self._total_length += length
        self._pages[page.doc_id] = page
        for term, count in term_counts.items():
            self._postings.setdefault(term, []).append(
                Posting(doc_id=page.doc_id, term_frequency=count)
            )
        self._mutations += 1
        if self._views:
            self._views = {}

    def add_all(self, pages: Iterable[Page]) -> None:
        for page in pages:
            self.add(page)

    # ------------------------------------------------------------------
    # Frozen read path

    @property
    def epoch(self) -> int:
        """Mutation counter; bumps on every :meth:`add`.

        Caches keyed on ``(..., epoch)`` — the search engine's query
        cache — are invalidated by construction when the index grows.
        """
        return self._mutations

    def freeze(self) -> "InvertedIndex":
        """Materialize the frozen snapshot now (idempotent; returns self).

        Called eagerly by :class:`repro.search.engine.SearchEngine` after
        ``add_all`` so forked pool workers inherit the arrays instead of
        each rebuilding them.
        """
        self._snapshot()
        return self

    def _snapshot(self) -> _FrozenPostings:
        snapshot = self._frozen
        if snapshot is not None and snapshot.epoch == self._mutations:
            return snapshot
        arrays = {
            term: (
                tuple(p.doc_id for p in plist),
                tuple(p.term_frequency for p in plist),
            )
            for term, plist in self._postings.items()
        }
        count = len(self._pages)
        dense = count > 0 and min(self._pages) == 0 and max(self._pages) == count - 1
        lengths: Sequence[int] | Mapping[int, int]
        if dense:
            table = [0] * count
            for doc_id, length in self._doc_lengths.items():
                table[doc_id] = length
            lengths = table
        else:
            lengths = dict(self._doc_lengths)
        snapshot = _FrozenPostings(
            epoch=self._mutations, arrays=arrays, lengths=lengths, dense=dense
        )
        self._frozen = snapshot
        return snapshot

    def postings_arrays(
        self, term: str
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Parallel ``(doc_ids, term_frequencies)`` views for a term.

        Zero-copy: both tuples belong to the frozen snapshot and are
        shared across calls.  Empty pair if the term is unseen.
        """
        return self._snapshot().arrays.get(term, _EMPTY_ARRAYS)

    def doc_length_table(self) -> tuple[bool, Sequence[int] | Mapping[int, int]]:
        """``(dense, table)`` view of per-doc lengths.

        When ``dense`` is true the table is a list indexed by ``doc_id``;
        otherwise a mapping.  Read-only — shared with the snapshot.
        """
        snapshot = self._snapshot()
        return snapshot.dense, snapshot.lengths

    # ------------------------------------------------------------------
    # Classic accessors

    def postings(self, term: str) -> Sequence[Posting]:
        """Postings for an (already analyzed) term; empty if unseen.

        Returns an **immutable view** (a tuple, memoized per term) rather
        than a fresh list copy — repeated calls share one object, and the
        O(df) per-call garbage the old copy created is gone.
        """
        view = self._views.get(term)
        if view is None:
            plist = self._postings.get(term)
            if plist is None:
                return ()
            view = tuple(plist)
            self._views[term] = view
        return view

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return len(self._postings.get(term, ()))

    def doc_length(self, doc_id: int) -> int:
        """Token count of a document (title boost included)."""
        return self._doc_lengths[doc_id]

    def page(self, doc_id: int) -> Page:
        """The indexed page for ``doc_id``."""
        return self._pages[doc_id]

    @property
    def doc_count(self) -> int:
        return len(self._pages)

    @property
    def average_doc_length(self) -> float:
        if not self._pages:
            return 0.0
        return self._total_length / len(self._pages)

    def vocabulary_size(self) -> int:
        """Number of distinct indexed terms."""
        return len(self._postings)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._pages
