"""Inverted index over the synthetic corpus.

Classic postings-list design: term -> [(doc_id, term_frequency)], plus
per-document lengths and the corpus statistics BM25 needs.  Title terms
are indexed with a configurable boost (counted multiple times), a standard
trick that stands in for field-weighted scoring.

The index has two phases.  During *build* (:meth:`add` / :meth:`add_all`)
postings accumulate in per-term lists.  The first read through
:meth:`freeze`, :meth:`postings_arrays` or :meth:`doc_length_table`
freezes that state into immutable parallel arrays — one ``doc_ids`` tuple
and one ``term_frequencies`` tuple per term, plus a doc-length table laid
out densely when doc ids are contiguous — which the query fast path scans
without per-call copies or per-posting object dispatch.  A later ``add``
thaws the snapshot and bumps :attr:`epoch`, so anything keyed on
``(..., epoch)`` can never serve stale results.

For parallel shard builds (:mod:`repro.search.sharding`) the frozen
arrays double as a wire format: a worker process builds an index, ships
:meth:`frozen_parts` home (plain tuples and ints — no ``Posting`` or
``Page`` objects cross the pipe), and the parent reconstitutes it with
:meth:`from_frozen_parts` against its own page objects.  An index built
that way starts *lazy* — postings lists materialize from the arrays
only if a later :meth:`add` thaws it — so reconstruction costs O(vocab)
dict inserts, not O(postings) object builds.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.search.tokenize import tokenize
from repro.webgraph.pages import Page

__all__ = ["InvertedIndex", "Posting"]


@dataclass(frozen=True)
class Posting:
    """One document's entry in a term's postings list."""

    doc_id: int
    term_frequency: int


@dataclass(frozen=True)
class _FrozenPostings:
    """An immutable snapshot of the index's postings at one epoch.

    Built entirely off to the side and published through a single
    attribute store, so a racing rebuild under the thread executor can
    only ever swap in an identical snapshot — never expose a torn one.
    """

    epoch: int
    #: term -> (doc_ids, term_frequencies), parallel and build-ordered.
    arrays: dict[str, tuple[tuple[int, ...], tuple[int, ...]]]
    #: doc lengths; a dense list indexed by doc_id when ids are the
    #: contiguous range 0..n-1 (the corpus generator's layout), else a dict.
    lengths: Sequence[int] | Mapping[int, int]
    dense: bool


_EMPTY_ARRAYS: tuple[tuple[int, ...], tuple[int, ...]] = ((), ())


def _length_table(
    pages: Mapping[int, Page], doc_lengths: Mapping[int, int]
) -> tuple[bool, Sequence[int] | Mapping[int, int]]:
    """``(dense, lengths)`` — dense list when ids are 0..n-1, else dict."""
    count = len(pages)
    dense = count > 0 and min(pages) == 0 and max(pages) == count - 1
    if dense:
        table = [0] * count
        for doc_id, length in doc_lengths.items():
            table[doc_id] = length
        return True, table
    return False, dict(doc_lengths)


class InvertedIndex:
    """Term -> postings mapping with document statistics.

    Build once with :meth:`add` / :meth:`add_all`; the index is append-only
    (re-adding a ``doc_id`` raises).  Read accessors hand out **immutable
    views** onto frozen internal state — callers share storage with the
    index and must not (and cannot) mutate it; there is no defensive
    copying anywhere on the query path.
    """

    def __init__(self, title_boost: int = 3) -> None:
        if title_boost < 1:
            raise ValueError("title_boost must be at least 1")
        self._title_boost = title_boost
        #: ``None`` marks a *lazy* index (built by
        #: :meth:`from_frozen_parts`): the frozen snapshot is the
        #: canonical store and postings lists materialize on demand.
        self._postings: dict[str, list[Posting]] | None = {}
        self._doc_lengths: dict[int, int] = {}
        self._pages: dict[int, Page] = {}
        self._total_length = 0
        self._mutations = 0
        self._frozen: _FrozenPostings | None = None
        #: Per-term tuple views handed out by :meth:`postings`, built
        #: lazily and invalidated wholesale by :meth:`add`.
        self._views: dict[str, tuple[Posting, ...]] = {}

    @classmethod
    def from_frozen_parts(
        cls,
        pages: Iterable[Page],
        arrays: dict[str, tuple[tuple[int, ...], tuple[int, ...]]],
        doc_lengths: Mapping[int, int],
        total_length: int,
        title_boost: int = 3,
    ) -> "InvertedIndex":
        """Reconstitute an index from :meth:`frozen_parts` plus pages.

        The counterpart of a worker-side build: ``arrays``,
        ``doc_lengths`` and ``total_length`` crossed the pipe as plain
        tuples/ints, and ``pages`` are the *parent's* page objects for
        the same documents — so every accessor returns the parent's
        instances, exactly as if the parent had built the index itself.
        The result is read-equivalent to ``add_all(pages)`` (same epoch,
        same arrays, same statistics); a later :meth:`add` thaws the
        snapshot into ordinary postings lists first.
        """
        index = cls(title_boost)
        index._pages = {page.doc_id: page for page in pages}
        if set(doc_lengths) != set(index._pages):
            raise ValueError("doc_lengths and pages disagree on doc ids")
        index._doc_lengths = dict(doc_lengths)
        index._total_length = total_length
        index._mutations = len(index._pages)
        dense, lengths = _length_table(index._pages, index._doc_lengths)
        index._frozen = _FrozenPostings(
            epoch=index._mutations, arrays=arrays, lengths=lengths, dense=dense
        )
        index._postings = None
        return index

    def frozen_parts(
        self,
    ) -> tuple[
        dict[str, tuple[tuple[int, ...], tuple[int, ...]]],
        dict[int, int],
        int,
    ]:
        """``(arrays, doc_lengths, total_length)`` — the picklable core.

        Everything :meth:`from_frozen_parts` needs except the pages:
        plain string/int containers, cheap to ship across a process
        pipe relative to re-tokenizing the documents.
        """
        return self._snapshot().arrays, dict(self._doc_lengths), self._total_length

    def _thaw(self) -> dict[str, list[Posting]]:
        """Materialize postings lists from the frozen arrays (lazy mode)."""
        snapshot = self._frozen
        assert snapshot is not None  # lazy mode always carries a snapshot
        postings = {
            term: [
                Posting(doc_id=doc_id, term_frequency=tf)
                for doc_id, tf in zip(doc_ids, tfs)
            ]
            for term, (doc_ids, tfs) in snapshot.arrays.items()
        }
        self._postings = postings
        return postings

    def add(self, page: Page) -> None:
        """Index one page (thaws any frozen snapshot; bumps the epoch)."""
        if page.doc_id in self._pages:
            raise ValueError(f"doc_id {page.doc_id} already indexed")
        term_counts: dict[str, int] = {}
        title_terms = tokenize(page.title)
        body_terms = tokenize(page.body)
        for term in title_terms:
            term_counts[term] = term_counts.get(term, 0) + self._title_boost
        for term in body_terms:
            term_counts[term] = term_counts.get(term, 0) + 1

        length = self._title_boost * len(title_terms) + len(body_terms)
        self._doc_lengths[page.doc_id] = length
        self._total_length += length
        self._pages[page.doc_id] = page
        postings = self._postings if self._postings is not None else self._thaw()
        for term, count in term_counts.items():
            postings.setdefault(term, []).append(
                Posting(doc_id=page.doc_id, term_frequency=count)
            )
        self._mutations += 1
        if self._views:
            self._views = {}

    def add_all(self, pages: Iterable[Page]) -> None:
        for page in pages:
            self.add(page)

    # ------------------------------------------------------------------
    # Frozen read path

    @property
    def epoch(self) -> int:
        """Mutation counter; bumps on every :meth:`add`.

        Caches keyed on ``(..., epoch)`` — the search engine's query
        cache — are invalidated by construction when the index grows.
        """
        return self._mutations

    def freeze(self) -> "InvertedIndex":
        """Materialize the frozen snapshot now (idempotent; returns self).

        Called eagerly by :class:`repro.search.engine.SearchEngine` after
        ``add_all`` so forked pool workers inherit the arrays instead of
        each rebuilding them.
        """
        self._snapshot()
        return self

    def _snapshot(self) -> _FrozenPostings:
        snapshot = self._frozen
        if snapshot is not None and snapshot.epoch == self._mutations:
            return snapshot
        assert self._postings is not None  # lazy snapshots never go stale
        arrays = {
            term: (
                tuple(p.doc_id for p in plist),
                tuple(p.term_frequency for p in plist),
            )
            for term, plist in self._postings.items()
        }
        dense, lengths = _length_table(self._pages, self._doc_lengths)
        snapshot = _FrozenPostings(
            epoch=self._mutations, arrays=arrays, lengths=lengths, dense=dense
        )
        self._frozen = snapshot
        return snapshot

    def postings_arrays(
        self, term: str
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Parallel ``(doc_ids, term_frequencies)`` views for a term.

        Zero-copy: both tuples belong to the frozen snapshot and are
        shared across calls.  Empty pair if the term is unseen.
        """
        return self._snapshot().arrays.get(term, _EMPTY_ARRAYS)

    def doc_length_table(self) -> tuple[bool, Sequence[int] | Mapping[int, int]]:
        """``(dense, table)`` view of per-doc lengths.

        When ``dense`` is true the table is a list indexed by ``doc_id``;
        otherwise a mapping.  Read-only — shared with the snapshot.
        """
        snapshot = self._snapshot()
        return snapshot.dense, snapshot.lengths

    # ------------------------------------------------------------------
    # Classic accessors

    def postings(self, term: str) -> Sequence[Posting]:
        """Postings for an (already analyzed) term; empty if unseen.

        Returns an **immutable view** (a tuple, memoized per term) rather
        than a fresh list copy — repeated calls share one object, and the
        O(df) per-call garbage the old copy created is gone.
        """
        view = self._views.get(term)
        if view is None:
            if self._postings is None:
                doc_ids, tfs = self._snapshot().arrays.get(term, _EMPTY_ARRAYS)
                if not doc_ids:
                    return ()
                view = tuple(
                    Posting(doc_id=doc_id, term_frequency=tf)
                    for doc_id, tf in zip(doc_ids, tfs)
                )
            else:
                plist = self._postings.get(term)
                if plist is None:
                    return ()
                view = tuple(plist)
            self._views[term] = view
        return view

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        if self._postings is None:
            return len(self._snapshot().arrays.get(term, _EMPTY_ARRAYS)[0])
        return len(self._postings.get(term, ()))

    def doc_length(self, doc_id: int) -> int:
        """Token count of a document (title boost included)."""
        return self._doc_lengths[doc_id]

    def page(self, doc_id: int) -> Page:
        """The indexed page for ``doc_id``."""
        return self._pages[doc_id]

    @property
    def doc_count(self) -> int:
        return len(self._pages)

    @property
    def average_doc_length(self) -> float:
        if not self._pages:
            return 0.0
        return self._total_length / len(self._pages)

    @property
    def total_length(self) -> int:
        """Sum of all document lengths (the avgdl numerator).

        Kept as an int so sharded deployments can sum shard totals
        without floating-point drift: the merged average equals the
        single-index average *exactly*.
        """
        return self._total_length

    def vocabulary_size(self) -> int:
        """Number of distinct indexed terms."""
        if self._postings is None:
            return len(self._snapshot().arrays)
        return len(self._postings)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._pages
