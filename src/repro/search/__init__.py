"""A from-scratch web search engine: the study's Google stand-in.

The engine indexes the synthetic corpus with an inverted index, scores
text relevance with BM25, computes domain authority with PageRank over the
link graph, and blends both with SEO signals (title match, freshness,
on-page optimization) into a final ranking — the "organic ranking"
logic that SEO optimizes for and that the paper contrasts with generative
engines' source selection.
"""

from repro.search.bm25 import BM25Scorer
from repro.search.caching import BoundedCache, CacheCounters
from repro.search.engine import SearchEngine, SearchResult, Snippet
from repro.search.index import InvertedIndex
from repro.search.pagerank import pagerank
from repro.search.seo import SeoWeights
from repro.search.sharding import (
    GlobalStats,
    LocalStats,
    ShardedIndex,
    ShardedSearchEngine,
    shard_of,
)
from repro.search.snippets import SnippetCache, extract_snippet
from repro.search.tokenize import tokenize

__all__ = [
    "BM25Scorer",
    "BoundedCache",
    "CacheCounters",
    "GlobalStats",
    "InvertedIndex",
    "LocalStats",
    "SearchEngine",
    "SearchResult",
    "SeoWeights",
    "ShardedIndex",
    "ShardedSearchEngine",
    "Snippet",
    "SnippetCache",
    "extract_snippet",
    "pagerank",
    "shard_of",
    "tokenize",
]
