"""The search engine: BM25 + PageRank + SEO signals -> ranked results.

This is the study's Google stand-in.  ``search(query, k)`` returns the
organic top-``k`` with host crowding (at most ``max_per_domain`` results
per registrable domain, as Google clusters same-site results), and
``search_with_snippets`` additionally attaches query-biased snippets —
the evidence format the generative engines consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.search.bm25 import BM25Scorer
from repro.search.index import InvertedIndex
from repro.search.pagerank import pagerank
from repro.search.seo import SeoWeights
from repro.search.snippets import extract_snippet
from repro.webgraph.corpus import Corpus
from repro.webgraph.domains import DomainRegistry
from repro.webgraph.pages import Page

__all__ = ["SearchEngine", "SearchResult", "Snippet"]


@dataclass(frozen=True)
class SearchResult:
    """One organic result."""

    rank: int  # 1-based
    url: str
    domain: str
    score: float
    page: Page


@dataclass(frozen=True)
class Snippet:
    """A (text, url) evidence pair, as retrieved for LLM grounding."""

    text: str
    url: str
    domain: str
    page: Page


class SearchEngine:
    """Organic web search over a :class:`Corpus`."""

    #: Authority assumed for domains absent from the registry: the wider
    #: web's median, unexceptional site.  One documented default shared
    #: by organic blending and :meth:`domain_authority`, so the Google
    #: stand-in and the persona retrievers score unknown domains
    #: consistently (neither buries them at 0 nor trusts them).
    UNKNOWN_DOMAIN_AUTHORITY = 0.3

    def __init__(
        self,
        corpus: Corpus,
        registry: DomainRegistry,
        weights: SeoWeights | None = None,
        max_per_domain: int = 2,
    ) -> None:
        if max_per_domain < 1:
            raise ValueError("max_per_domain must be at least 1")
        self._corpus = corpus
        self._registry = registry
        self._weights = weights or SeoWeights()
        self._max_per_domain = max_per_domain

        self._index = InvertedIndex()
        self._index.add_all(corpus.pages)
        self._scorer = BM25Scorer(self._index)

        raw_rank = pagerank(corpus.link_graph)
        max_rank = max(raw_rank.values()) if raw_rank else 1.0
        # Authority blends the graph-derived PageRank with the registry's
        # curated baseline.  The synthetic graph is brand-heavy (editorial
        # pages link to the brands they review far more than anyone links
        # back), so the baseline carries most of the weight — it stands in
        # for the wider web's links that the corpus doesn't model.
        self._authority: dict[str, float] = {}
        for domain in registry.names():
            graph_part = raw_rank.get(domain, 0.0) / max_rank if max_rank else 0.0
            baseline = registry.get(domain).authority
            self._authority[domain] = 0.3 * graph_part + 0.7 * baseline

    @property
    def index(self) -> InvertedIndex:
        """The underlying inverted index (read-only use)."""
        return self._index

    def domain_authority(self, domain: str) -> float:
        """Blended authority in ``[0, 1]``.

        Unknown domains get :data:`UNKNOWN_DOMAIN_AUTHORITY`, the same
        default the organic blend uses.
        """
        return self._authority.get(domain, self.UNKNOWN_DOMAIN_AUTHORITY)

    def search(self, query: str, k: int = 10) -> list[SearchResult]:
        """Organic top-``k`` for ``query``."""
        if k < 1:
            raise ValueError("k must be at least 1")
        bm25 = self._scorer.score_all(query)
        if not bm25:
            return []
        max_bm25 = max(bm25.values())

        candidates = []
        for doc_id, raw in bm25.items():
            page = self._index.page(doc_id)
            relevance = raw / max_bm25 if max_bm25 else 0.0
            blended = self._weights.blend(
                relevance=relevance,
                authority=self.domain_authority(page.domain),
                on_page_seo=page.seo_score,
                age_days=self._corpus.clock.age_days(page.published),
            )
            candidates.append((blended, doc_id, page))
        # Deterministic order: score desc, then doc_id for exact ties.
        candidates.sort(key=lambda item: (-item[0], item[1]))

        results: list[SearchResult] = []
        per_domain: dict[str, int] = {}
        for score, doc_id, page in candidates:
            seen = per_domain.get(page.domain, 0)
            if seen >= self._max_per_domain:
                continue
            per_domain[page.domain] = seen + 1
            results.append(
                SearchResult(
                    rank=len(results) + 1,
                    url=page.url,
                    domain=page.domain,
                    score=score,
                    page=page,
                )
            )
            if len(results) == k:
                break
        return results

    def search_with_snippets(self, query: str, k: int = 10) -> list[Snippet]:
        """Top-``k`` results as (snippet, url) evidence pairs."""
        return [
            Snippet(
                text=extract_snippet(result.page, query),
                url=result.url,
                domain=result.domain,
                page=result.page,
            )
            for result in self.search(query, k)
        ]
