"""The search engine: BM25 + PageRank + SEO signals -> ranked results.

This is the study's Google stand-in.  ``search(query, k)`` returns the
organic top-``k`` with host crowding (at most ``max_per_domain`` results
per registrable domain, as Google clusters same-site results), and
``search_with_snippets`` additionally attaches query-biased snippets —
the evidence format the generative engines consume.

The query path is an *exact fast path*: term-at-a-time BM25 accumulation
over the frozen index (:meth:`BM25Scorer.score_terms`), per-page static
blend components precomputed once per index epoch, bounded-heap top-m
selection with host-crowding headroom (falling back to full selection
when crowding exhausts the headroom), and a lock-guarded bounded query
cache keyed on ``(analyzed terms, k, index epoch)``.  Every float it
produces comes from the same operations in the same order as
:meth:`search_reference` — the original score-everything-then-sort
pipeline, kept verbatim as the equivalence oracle — so rankings, scores,
and snippets are byte-identical (see
``tests/search/test_fastpath_equivalence.py`` and the "Query fast path"
section of ``docs/architecture.md``).
"""

from __future__ import annotations

import heapq
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.search.bm25 import BM25Scorer
from repro.search.caching import BoundedCache, CacheCounters
from repro.search.index import InvertedIndex
from repro.search.pagerank import pagerank
from repro.search.seo import SeoWeights, freshness_decay
from repro.search.snippets import SnippetCache, extract_snippet
from repro.search.tokenize import tokenize
from repro.webgraph.corpus import Corpus
from repro.webgraph.domains import DomainRegistry
from repro.webgraph.pages import Page

__all__ = ["SearchEngine", "SearchResult", "Snippet"]


@dataclass(frozen=True)
class SearchResult:
    """One organic result."""

    rank: int  # 1-based
    url: str
    domain: str
    score: float
    page: Page


@dataclass(frozen=True)
class Snippet:
    """A (text, url) evidence pair, as retrieved for LLM grounding."""

    text: str
    url: str
    domain: str
    page: Page


#: (authority, on-page SEO, freshness) blend terms for one page, each
#: already multiplied by its weight.  Kept as three separate floats — not
#: pre-summed — because float addition is non-associative and the blend
#: must reproduce the reference's left-to-right ``a + b + c + d``.
_Statics = Sequence[tuple[float, float, float]] | Mapping[int, tuple[float, float, float]]


class SearchEngine:
    """Organic web search over a :class:`Corpus`."""

    #: Authority assumed for domains absent from the registry: the wider
    #: web's median, unexceptional site.  One documented default shared
    #: by organic blending and :meth:`domain_authority`, so the Google
    #: stand-in and the persona retrievers score unknown domains
    #: consistently (neither buries them at 0 nor trusts them).
    UNKNOWN_DOMAIN_AUTHORITY = 0.3

    #: Bound on distinct ``(terms, k, epoch)`` entries the query cache
    #: holds.  A full study issues a few hundred distinct queries; the
    #: bound only matters to ad-hoc exploratory use.
    QUERY_CACHE_LIMIT = 4096

    def __init__(
        self,
        corpus: Corpus,
        registry: DomainRegistry,
        weights: SeoWeights | None = None,
        max_per_domain: int = 2,
    ) -> None:
        if max_per_domain < 1:
            raise ValueError("max_per_domain must be at least 1")
        self._corpus = corpus
        self._registry = registry
        self._weights = weights or SeoWeights()
        self._max_per_domain = max_per_domain

        # The index seam: subclasses (the sharded engine) override
        # _build_index to substitute a different postings substrate;
        # everything downstream — scorer, caches, statics — is built
        # against whatever comes back.
        self._index: InvertedIndex = self._build_index(corpus)
        self._scorer: BM25Scorer = BM25Scorer(self._index)

        raw_rank = pagerank(corpus.link_graph)
        max_rank = max(raw_rank.values()) if raw_rank else 1.0
        # Authority blends the graph-derived PageRank with the registry's
        # curated baseline.  The synthetic graph is brand-heavy (editorial
        # pages link to the brands they review far more than anyone links
        # back), so the baseline carries most of the weight — it stands in
        # for the wider web's links that the corpus doesn't model.
        self._authority: dict[str, float] = {}
        for domain in registry.names():
            graph_part = raw_rank.get(domain, 0.0) / max_rank if max_rank else 0.0
            baseline = registry.get(domain).authority
            self._authority[domain] = 0.3 * graph_part + 0.7 * baseline

        #: ``(epoch, table)`` of per-page static blend components,
        #: rebuilt lazily when the index epoch moves (published by a
        #: single attribute store; a racing rebuild swaps in an
        #: identical table).
        self._static_table: tuple[int, _Statics] | None = None
        #: World-level query-result cache: ``(terms, k, epoch)`` ->
        #: tuple of :class:`SearchResult`.  Lock-guarded and bounded;
        #: only the fast path uses it (a custom :class:`SeoWeights`
        #: subclass routes through the uncached reference pipeline).
        self._query_cache = BoundedCache(
            limit=self.QUERY_CACHE_LIMIT,
            site="SearchEngine._query_cache",
            epochs=lambda: self._index.epoch,
        )
        #: Per-page sentence cache shared by ``search_with_snippets``
        #: and the generative engines' evidence builders.
        self.snippet_cache = SnippetCache()
        self._warm()

    def _build_index(self, corpus: Corpus) -> InvertedIndex:
        """Build the postings substrate (the sharded engine overrides)."""
        index = InvertedIndex()
        index.add_all(corpus.pages)
        return index

    def _warm(self) -> None:
        """Precompute everything the query path reads, so forked pool
        workers inherit built state instead of each rebuilding it (see
        the sharing contract in repro.core.runner)."""
        self._index.freeze()
        self._scorer.warm()
        if type(self._weights) is SeoWeights and self._corpus.pages:
            self._statics()

    @property
    def index(self) -> InvertedIndex:
        """The underlying inverted index (read-only use)."""
        return self._index

    def domain_authority(self, domain: str) -> float:
        """Blended authority in ``[0, 1]``.

        Unknown domains get :data:`UNKNOWN_DOMAIN_AUTHORITY`, the same
        default the organic blend uses.
        """
        return self._authority.get(domain, self.UNKNOWN_DOMAIN_AUTHORITY)

    # ------------------------------------------------------------------
    # Fast path

    def _statics(self) -> _Statics:
        """Per-doc ``(authority, seo, freshness)`` blend terms, weighted.

        Epoch-tagged like the scorer's norm table; each term is exactly
        the product the reference blend computes for that page, so
        summing them left-to-right after the relevance term reproduces
        :meth:`SeoWeights.blend` bit-for-bit.
        """
        epoch = self._index.epoch
        cached = self._static_table
        if cached is not None and cached[0] == epoch:
            return cached[1]
        w = self._weights
        w_auth, w_seo, w_fresh = w.authority, w.on_page_seo, w.freshness
        half_life = w.freshness_half_life_days
        age_days = self._corpus.clock.age_days
        authority = self.domain_authority
        dense, lengths = self._index.doc_length_table()
        page = self._index.page
        table: _Statics
        if dense:
            table = [
                (
                    w_auth * authority((p := page(doc_id)).domain),
                    w_seo * p.seo_score,
                    w_fresh * freshness_decay(age_days(p.published), half_life),
                )
                for doc_id in range(len(lengths))
            ]
        else:
            table = {
                doc_id: (
                    w_auth * authority((p := page(doc_id)).domain),
                    w_seo * p.seo_score,
                    w_fresh * freshness_decay(age_days(p.published), half_life),
                )
                for doc_id in lengths
            }
        self._static_table = (epoch, table)
        return table

    def _rank_fast_cacheable(
        self, terms: Sequence[str], k: int
    ) -> tuple[list[SearchResult], bool]:
        """Rank plus a cacheability verdict for the query cache.

        The single-index path always covers the whole corpus, so its
        pages are always cacheable.  The sharded engine overrides this
        to report partial coverage (a shard lost past the resilience
        ladder), which :meth:`search` must not memoize.
        """
        return self._rank_fast(terms, k), True

    def _rank_fast(self, terms: Sequence[str], k: int) -> list[SearchResult]:
        """Exact top-``k``: accumulate, bounded-heap select, crowd.

        ``heapq.nsmallest(m, items)`` is documented to equal
        ``sorted(items)[:m]``; the items are ``(-blended, doc_id)`` pairs
        (negation of a float is exact, ``doc_id`` is unique), so the
        heap's order is exactly the reference's ``(-score, doc_id)``
        sort.  Host crowding then scans that prefix; if the ``m = k ×
        max_per_domain`` headroom is exhausted before ``k`` results are
        found, the selection falls back to the fully sorted pool, which
        *is* the reference pipeline's order.
        """
        bm25 = self._scorer.score_terms(terms)
        if not bm25:
            return []
        max_bm25 = max(bm25.values())
        statics = self._statics()
        w_rel = self._weights.relevance
        if max_bm25:
            items = [
                (
                    -(
                        (w_rel * (raw / max_bm25) + (s := statics[doc_id])[0] + s[1])
                        + s[2]
                    ),
                    doc_id,
                )
                for doc_id, raw in bm25.items()
            ]
        else:
            items = [
                (
                    -(
                        (w_rel * 0.0 + (s := statics[doc_id])[0] + s[1])
                        + s[2]
                    ),
                    doc_id,
                )
                for doc_id, raw in bm25.items()
            ]
        headroom = k * self._max_per_domain
        if headroom < len(items):
            top: Sequence[tuple[float, int]] = heapq.nsmallest(headroom, items)
        else:
            items.sort()
            top = items
        results = self._crowd(top, k)
        if len(results) < k and len(top) < len(items):
            # Crowding ate the headroom: fall back to the full ordering.
            items.sort()
            results = self._crowd(items, k)
        return results

    def _crowd(
        self, ordered: Sequence[tuple[float, int]], k: int
    ) -> list[SearchResult]:
        """Apply host crowding over ``(-score, doc_id)`` pairs in order."""
        page_of = self._index.page
        results: list[SearchResult] = []
        per_domain: dict[str, int] = {}
        for neg_score, doc_id in ordered:
            page = page_of(doc_id)
            seen = per_domain.get(page.domain, 0)
            if seen >= self._max_per_domain:
                continue
            per_domain[page.domain] = seen + 1
            results.append(
                SearchResult(
                    rank=len(results) + 1,
                    url=page.url,
                    domain=page.domain,
                    score=-neg_score,
                    page=page,
                )
            )
            if len(results) == k:
                break
        return results

    # ------------------------------------------------------------------
    # Public query API

    def search(self, query: str, k: int = 10) -> list[SearchResult]:
        """Organic top-``k`` for ``query``."""
        if k < 1:
            raise ValueError("k must be at least 1")
        if type(self._weights) is not SeoWeights:
            # A blend override means the precomputed statics don't
            # describe the ranking; take the uncached reference path.
            return self.search_reference(query, k)
        terms = tuple(tokenize(query))
        key = (terms, k, self._index.epoch)
        cached = self._query_cache.get(key)
        if cached is not None:
            return list(cached)
        results, cacheable = self._rank_fast_cacheable(terms, k)
        if not cacheable:
            # A partial-coverage page (shards lost past the resilience
            # ladder) is never memoized: the next identical query must
            # re-scatter and regain full coverage the moment the shard
            # recovers, not replay the degraded merge from cache.
            return list(results)
        return list(self._query_cache.put(key, tuple(results)))

    def search_with_snippets(self, query: str, k: int = 10) -> list[Snippet]:
        """Top-``k`` results as (snippet, url) evidence pairs."""
        results = self.search(query, k)
        if not results:
            return []
        query_terms = frozenset(tokenize(query))
        extract = self.snippet_cache.extract_with_terms
        return [
            Snippet(
                text=extract(result.page, query_terms),
                url=result.url,
                domain=result.domain,
                page=result.page,
            )
            for result in results
        ]

    # ------------------------------------------------------------------
    # Reference pipeline (equivalence oracle)

    def search_reference(self, query: str, k: int = 10) -> list[SearchResult]:
        """The original score-everything-then-sort pipeline, verbatim.

        Property tests hold :meth:`search` to bit-identical output; do
        not "optimize" it — its value is being the unchanged original.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        bm25 = self._scorer.score_all_reference(query)
        if not bm25:
            return []
        max_bm25 = max(bm25.values())

        candidates = []
        for doc_id, raw in bm25.items():
            page = self._index.page(doc_id)
            relevance = raw / max_bm25 if max_bm25 else 0.0
            blended = self._weights.blend(
                relevance=relevance,
                authority=self.domain_authority(page.domain),
                on_page_seo=page.seo_score,
                age_days=self._corpus.clock.age_days(page.published),
            )
            candidates.append((blended, doc_id, page))
        # Deterministic order: score desc, then doc_id for exact ties.
        candidates.sort(key=lambda item: (-item[0], item[1]))

        results: list[SearchResult] = []
        per_domain: dict[str, int] = {}
        for score, doc_id, page in candidates:
            seen = per_domain.get(page.domain, 0)
            if seen >= self._max_per_domain:
                continue
            per_domain[page.domain] = seen + 1
            results.append(
                SearchResult(
                    rank=len(results) + 1,
                    url=page.url,
                    domain=page.domain,
                    score=score,
                    page=page,
                )
            )
            if len(results) == k:
                break
        return results

    def search_with_snippets_reference(
        self, query: str, k: int = 10
    ) -> list[Snippet]:
        """Reference evidence pairs via :func:`extract_snippet`."""
        return [
            Snippet(
                text=extract_snippet(result.page, query),
                url=result.url,
                domain=result.domain,
                page=result.page,
            )
            for result in self.search_reference(query, k)
        ]

    # ------------------------------------------------------------------
    # Cache administration

    def query_cache_stats(self) -> CacheCounters:
        """Hit/miss/eviction counters of the query-result cache."""
        return self._query_cache.counters()

    def clear_query_cache(self) -> None:
        """Drop cached query results (e.g. between benchmark rounds)."""
        self._query_cache.clear()
