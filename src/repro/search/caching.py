"""Lock-guarded bounded memoization for the search substrate.

Both query-path caches (the world-level query-result cache on
:class:`repro.search.engine.SearchEngine` and the per-page sentence cache
behind snippet extraction) share this primitive: a FIFO-bounded dict with
hit/miss/eviction counters, every write under an instance lock.

The concurrency contract matches the engine memo caches that conclint
CONC002 audits: ``compute`` runs *outside* the lock (racing duplicate
computations are deterministic, so last-insert-wins is harmless), all
bookkeeping — insert, trim, counters — runs inside it.  Instances are
plain attributes of world-owned objects, so forked pool workers inherit
independent copies and the thread executor shares one safely through the
lock; no module-level state is involved (CONC001/CONC004 clean by
construction).
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from dataclasses import dataclass
from typing import Any

from repro.cachewitness import witness_for
from repro.lockorder import witness_lock

__all__ = ["BoundedCache", "CacheCounters"]

#: Module-private miss marker: lets ``get``/``get_or_compute`` tell a
#: stored ``None`` apart from an absent key, so a legitimately-``None``
#: value memoizes once instead of recomputing (and miscounting the
#: re-insert as a hit) on every lookup.
_MISSING = object()


@dataclass(frozen=True)
class CacheCounters:
    """A point-in-time snapshot of one cache's counters."""

    hits: int
    misses: int
    evictions: int
    size: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class BoundedCache:
    """A keyed memo held in FIFO insertion order and trimmed to ``limit``.

    Invariants (shared with :class:`repro.core.runner.EvidenceCache`):

    * one computation per key per cache between evictions — a second
      lookup is a hit, never a recompute;
    * thread-safe — ``compute`` runs outside the lock, bookkeeping
      inside it, and the stored value (not the racing duplicate) is
      what every caller receives, so value identity is stable across
      threads.
    """

    def __init__(
        self,
        limit: int = 8192,
        *,
        site: str = "BoundedCache",
        epochs: Callable[[], Hashable] | None = None,
    ) -> None:
        if limit < 1:
            raise ValueError("limit must be at least 1")
        self._limit = limit
        self._cache: dict[Hashable, Any] = {}
        self._lock = witness_lock("BoundedCache._lock")
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        #: Staleness witness (None unless REPRO_CACHE_WITNESS=1).
        #: ``site`` names this cache in violations; ``epochs`` supplies
        #: the generation stamp of whatever the values derive from.
        self._witness = witness_for(site, epochs=epochs)

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._cache

    def get(self, key: Hashable, default: Any = None) -> Any | None:
        """The cached value for ``key`` (a counted hit), or ``default``.

        Presence — not truthiness or ``None``-ness — decides hit vs
        miss: a stored ``None`` is a hit.  An absent key moves no
        counter; the miss is recorded by the :meth:`put` half of the
        pair, as always.
        """
        with self._lock:
            value = self._cache.get(key, _MISSING)
            if value is not _MISSING:
                self._hits += 1
        if value is not _MISSING:
            # Witness checks run outside the lock (the witness has its
            # own leaf-level lock; see CANONICAL_HIERARCHY).
            if self._witness is not None:
                self._witness.verify(key, value)
            return value
        return default

    def put(self, key: Hashable, value: Any) -> Any:
        """Insert ``value`` unless ``key`` arrived first; return the winner.

        Counted as the miss half of a ``get``/``put`` pair: the caller
        already observed the miss via :meth:`get`, so ``put`` records it.
        """
        with self._lock:
            if key not in self._cache:
                inserted = True
                self._misses += 1
                self._cache[key] = value
                while len(self._cache) > self._limit:
                    self._cache.pop(next(iter(self._cache)))
                    self._evictions += 1
            else:
                inserted = False
                self._hits += 1
            stored = self._cache[key]
        if self._witness is not None:
            if inserted:
                self._witness.record(key, stored)
            else:
                self._witness.verify(key, stored)
        return stored

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on first use.

        ``None`` is a first-class value: once stored it is returned as
        a hit, never recomputed.
        """
        value = self.get(key, _MISSING)
        if value is not _MISSING:
            return value
        return self.put(key, compute())

    def counters(self) -> CacheCounters:
        """Current hit/miss/eviction counts and entry count."""
        with self._lock:
            return CacheCounters(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._cache),
            )

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._cache.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0
        if self._witness is not None:
            self._witness.clear()
