"""Reproduction of "Navigating the Shift: A Comparative Analysis of Web
Search and Generative AI Response Generation" (EDBT 2026).

The package simulates the paper's entire apparatus — a synthetic web, a
traditional search engine, four generative answer engines with
pre-training priors — and reruns every experiment behind the paper's
figures and tables.

Quickstart::

    from repro import ComparativeStudy, StudyConfig, World

    world = World.build(StudyConfig(seed=7))
    study = ComparativeStudy(world)
    print(study.domain_overlap_ranking().mean_overlap)   # Figure 1

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro.core.config import StudyConfig, WorkloadSizes
from repro.core.experiments import EXPERIMENTS, run_experiment
from repro.core.runner import StudyRunner
from repro.core.study import ComparativeStudy
from repro.core.world import World

__version__ = "1.0.0"

__all__ = [
    "ComparativeStudy",
    "EXPERIMENTS",
    "StudyConfig",
    "StudyRunner",
    "WorkloadSizes",
    "World",
    "run_experiment",
    "__version__",
]
