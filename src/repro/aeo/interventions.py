"""Causal what-if experiments: inject content, re-measure presence.

A :class:`ContentPlan` describes a publishing campaign for one entity —
how many pages, of which source type, how fresh, how favorable.  The
:class:`InterventionLab` injects the campaign into a copy of the web,
rebuilds the retrieval ecosystem around it, and re-runs the presence
audit, yielding the *causal* effect of the campaign on AI-search and
web-search visibility.

One fidelity detail matters: injected pages enter the **retrieval** web
immediately, but NOT the engines' **pre-training priors** — new content
influences what can be retrieved today, while priors only move at the
next training cut.  The lab therefore rebuilds engines with their
knowledge pinned to the base corpus.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field, replace

from repro.aeo.audit import BrandAuditor, PresenceAudit
from repro.core.world import World
from repro.engines.registry import build_engines
from repro.engines.retrieval import Retriever
from repro.entities.queries import Query
from repro.entities.verticals import get_vertical
from repro.llm.rng import derive_rng
from repro.search.engine import SearchEngine
from repro.webgraph.corpus import Corpus
from repro.webgraph.domains import SourceType
from repro.webgraph.pages import DateMarkup, Page, PageKind

__all__ = ["ContentPlan", "InterventionLab", "InterventionOutcome"]


@dataclass(frozen=True)
class ContentPlan:
    """A publishing campaign for one entity.

    Attributes
    ----------
    name:
        Label used in reports ("fresh earned reviews").
    entity_id:
        The campaign's subject.
    source_type:
        Where the content lives: EARNED places coverage on the strongest
        editorial outlets in the vertical, BRAND publishes on the
        entity's own domain, SOCIAL seeds discussion threads.
    page_count:
        Campaign size.
    age_days:
        Freshness of the placed pages at audit time.
    stance:
        How favorable the coverage reads, in ``[-1, 1]``.
    quality / seo_score:
        Editorial quality and on-page optimization of the placed pages.
    domains:
        Optional explicit placement domains; defaults per source type.
    """

    name: str
    entity_id: str
    source_type: SourceType = SourceType.EARNED
    page_count: int = 4
    age_days: int = 7
    stance: float = 0.8
    quality: float = 0.8
    seo_score: float = 0.7
    domains: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.page_count < 1:
            raise ValueError("page_count must be at least 1")
        if self.age_days < 0:
            raise ValueError("age_days must be non-negative")
        if not -1.0 <= self.stance <= 1.0:
            raise ValueError("stance must be in [-1, 1]")
        for bound_name in ("quality", "seo_score"):
            if not 0.0 <= getattr(self, bound_name) <= 1.0:
                raise ValueError(f"{bound_name} must be in [0, 1]")


@dataclass(frozen=True)
class InterventionOutcome:
    """Presence before and after one campaign."""

    plan: ContentPlan
    baseline: PresenceAudit
    after: PresenceAudit

    def ai_citation_lift(self) -> float:
        """Change in mean AI citation coverage (fraction of queries)."""
        return (
            self.after.mean_ai_citation_coverage()
            - self.baseline.mean_ai_citation_coverage()
        )

    def serp_lift(self) -> float:
        """Change in Google SERP coverage."""
        return self.after.serp_coverage - self.baseline.serp_coverage

    def ranking_lift(self) -> dict[str, float]:
        """Per-engine change in synthesized-ranking presence."""
        return {
            name: self.after.ai_ranking_presence[name]
            - self.baseline.ai_ranking_presence[name]
            for name in self.after.ai_ranking_presence
        }


class InterventionLab:
    """Builds counterfactual worlds from content plans."""

    def __init__(self, base_world: World) -> None:
        self._base = base_world

    @property
    def base_world(self) -> World:
        return self._base

    # ------------------------------------------------------------------
    # Page fabrication

    def _placement_domains(self, plan: ContentPlan) -> list[str]:
        if plan.domains:
            for domain in plan.domains:
                if domain not in self._base.registry:
                    raise ValueError(f"unknown placement domain {plan.domains}")
            return list(plan.domains)
        entity = self._base.catalog.get(plan.entity_id)
        if plan.source_type is SourceType.BRAND:
            if entity.brand_domain is None:
                raise ValueError(f"{plan.entity_id} has no brand domain")
            return [entity.brand_domain]
        candidates = [
            record
            for record in self._base.registry.covering(entity.vertical)
            if record.source_type is plan.source_type and not record.is_retailer
        ]
        if not candidates:
            raise ValueError(
                f"no {plan.source_type.value} domains cover {entity.vertical}"
            )
        candidates.sort(key=lambda record: -record.authority)
        return [record.name for record in candidates[:4]]

    def _fabricate_pages(self, plan: ContentPlan, next_doc_id: int) -> list[Page]:
        entity = self._base.catalog.get(plan.entity_id)
        vertical = get_vertical(entity.vertical)
        clock = self._base.corpus.clock
        published = clock.date_for_age(plan.age_days)
        domains = self._placement_domains(plan)
        rng = derive_rng("aeo", plan.name, plan.entity_id)

        pages = []
        for index in range(plan.page_count):
            domain = domains[index % len(domains)]
            keyword = vertical.keywords[index % len(vertical.keywords)]
            if plan.source_type is SourceType.SOCIAL:
                kind = PageKind.FORUM_THREAD
                title = f"{entity.name} experiences? ({vertical.noun} thread)"
                closing = "Several commenters agreed enthusiastically."
            elif plan.source_type is SourceType.BRAND:
                kind = PageKind.PRODUCT
                title = f"{entity.name} official: explore {vertical.noun}"
                closing = f"Discover what makes {entity.name} stand out."
            else:
                kind = PageKind.REVIEW
                qualifier = vertical.qualifiers[index % len(vertical.qualifiers)]
                title = f"{entity.name} review: {qualifier} {vertical.noun} tested"
                closing = f"Our verdict places {entity.name} at the top."
            body = "\n".join(
                (
                    f"We looked closely at {vertical.noun}, focusing on {keyword}.",
                    f"{entity.name} proved excellent in our {keyword} assessment.",
                    closing,
                )
            )
            slug = f"aeo-{plan.name.replace(' ', '-')}-{index}".lower()
            pages.append(
                Page(
                    doc_id=next_doc_id + index,
                    url=f"https://{domain}/{vertical.id.replace('_', '-')}/{slug}",
                    domain=domain,
                    kind=kind,
                    vertical=vertical.id,
                    title=title,
                    body=body,
                    published=published,
                    date_markup=DateMarkup.META,
                    entities=(entity.id,),
                    entity_stance={entity.id: plan.stance},
                    quality=plan.quality,
                    seo_score=plan.seo_score,
                )
            )
        return pages

    # ------------------------------------------------------------------
    # World rebuilding

    def apply(self, plan: ContentPlan) -> World:
        """The counterfactual world with the campaign published.

        Retrieval (index, ranking, engines' source selection) sees the
        new pages; the engines' pre-training priors stay pinned to the
        base corpus.
        """
        base_corpus = self._base.corpus
        next_doc_id = max(page.doc_id for page in base_corpus.pages) + 1
        injected = self._fabricate_pages(plan, next_doc_id)
        corpus = Corpus(
            pages=[*base_corpus.pages, *injected],
            link_graph=base_corpus.link_graph,
            clock=base_corpus.clock,
        )
        config = self._base.config
        registry = self._base.registry
        catalog = self._base.catalog

        search_engine = SearchEngine(corpus, registry)
        engines = build_engines(
            corpus, registry, catalog, search_engine,
            study_seed=config.seed,
            prior_corpus=base_corpus,
        )
        retriever = Retriever(corpus, registry, search_engine)
        return replace(
            self._base,
            corpus=corpus,
            search_engine=search_engine,
            engines=engines,
            retriever=retriever,
        )

    def evaluate(
        self,
        plans: Sequence[ContentPlan],
        queries: Sequence[Query] | None = None,
        query_count: int = 25,
        query_seed: int = 0,
    ) -> list[InterventionOutcome]:
        """Run baseline + per-plan audits over a shared workload.

        All plans must target the same entity (the audit workload is the
        entity's vertical).
        """
        if not plans:
            raise ValueError("at least one plan is required")
        entity_ids = {plan.entity_id for plan in plans}
        if len(entity_ids) != 1:
            raise ValueError("all plans must target the same entity")
        entity_id = plans[0].entity_id

        base_auditor = BrandAuditor(self._base)
        workload = (
            list(queries)
            if queries is not None
            else base_auditor.default_queries(entity_id, query_count, query_seed)
        )
        baseline = base_auditor.audit(entity_id, workload)

        outcomes = []
        for plan in plans:
            counterfactual = self.apply(plan)
            after = BrandAuditor(counterfactual).audit(entity_id, workload)
            outcomes.append(
                InterventionOutcome(plan=plan, baseline=baseline, after=after)
            )
        return outcomes
