"""Turning audits and interventions into an action plan.

The paper's closing observation: "developing analytical strategies that
dissect query patterns to generate actionable content plans becomes vital
for optimization success."  :func:`recommend` is that strategy, mechanized:
it reads a presence audit (and, when available, measured intervention
lifts) and emits a ranked list of actions with the reasoning attached.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.aeo.audit import PresenceAudit
from repro.aeo.interventions import InterventionOutcome

__all__ = ["ActionPlan", "Recommendation", "recommend"]


@dataclass(frozen=True)
class Recommendation:
    """One ranked action."""

    priority: int
    action: str
    reasoning: str
    expected_channel: str  # "ai", "serp", or "both"


@dataclass(frozen=True)
class ActionPlan:
    """The ranked plan for one entity."""

    entity_id: str
    entity_name: str
    recommendations: tuple[Recommendation, ...] = ()
    measured_lifts: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable plan."""
        lines = [f"Action plan for {self.entity_name}:"]
        for rec in self.recommendations:
            lines.append(f"  {rec.priority}. [{rec.expected_channel}] {rec.action}")
            lines.append(f"     why: {rec.reasoning}")
        if self.measured_lifts:
            lines.append("  measured campaign lifts (AI citation coverage):")
            for name, lift in sorted(
                self.measured_lifts.items(), key=lambda kv: -kv[1]
            ):
                lines.append(f"    {name:<28} {lift:+.1%}")
        return "\n".join(lines)


def _audit_driven(audit: PresenceAudit) -> list[Recommendation]:
    recs: list[Recommendation] = []

    gap = audit.visibility_gap()
    mean_ai = audit.mean_ai_citation_coverage()
    prior_shares = list(audit.prior_injected_share.values())
    mean_prior_share = (
        sum(prior_shares) / len(prior_shares) if prior_shares else 0.0
    )

    if audit.is_popular:
        if mean_prior_share > 0.2:
            recs.append(
                Recommendation(
                    priority=0,
                    action=(
                        "Maintain reputation: rankings include the brand even "
                        "without retrieved support (prior-injected "
                        f"{mean_prior_share:.0%} of appearances)."
                    ),
                    reasoning=(
                        "For popular entities the model's pre-trained "
                        "hierarchy dominates; retrieval confirms rather than "
                        "creates presence (paper Section 3.2)."
                    ),
                    expected_channel="ai",
                )
            )
        recs.append(
            Recommendation(
                priority=0,
                action="Keep flagship coverage fresh on high-quality earned outlets.",
                reasoning=(
                    "AI engines prefer fresh earned media (paper Figures 3-4); "
                    "for popular entities this sustains citation share even "
                    "though it barely moves the ranking."
                ),
                expected_channel="ai",
            )
        )
    else:
        recs.append(
            Recommendation(
                priority=0,
                action=(
                    "Win retrieval: place fresh earned reviews so the brand "
                    "enters the context window."
                ),
                reasoning=(
                    "For niche entities the ranking is constructed from the "
                    "retrieved snippets (paper Section 3.3); presence in the "
                    "window is presence in the answer."
                ),
                expected_channel="ai",
            )
        )

    if gap < -0.1:
        recs.append(
            Recommendation(
                priority=0,
                action=(
                    "Close the AI visibility gap: SERP coverage "
                    f"({audit.serp_coverage:.0%}) far exceeds AI citation "
                    f"coverage ({mean_ai:.0%})."
                ),
                reasoning=(
                    "SEO presence does not transfer to answer engines, which "
                    "select sources by freshness, quality and type rather "
                    "than link authority (paper Section 2)."
                ),
                expected_channel="ai",
            )
        )
    elif gap > 0.1:
        recs.append(
            Recommendation(
                priority=0,
                action=(
                    "Invest in SEO fundamentals: AI engines cite the brand "
                    f"({mean_ai:.0%}) more than Google surfaces it "
                    f"({audit.serp_coverage:.0%})."
                ),
                reasoning="Organic search still routes most traffic today.",
                expected_channel="serp",
            )
        )

    ages = [
        age for age in audit.mean_source_age_days.values() if age == age  # not NaN
    ]
    if ages and min(ages) > 180:
        recs.append(
            Recommendation(
                priority=0,
                action="Refresh the citable corpus: surviving coverage is stale.",
                reasoning=(
                    "AI engines' cited sources run 40-70% younger than "
                    "Google's (paper Figure 4); stale coverage silently "
                    "drops out of AI answers first."
                ),
                expected_channel="both",
            )
        )
    return recs


def recommend(
    audit: PresenceAudit,
    outcomes: Sequence[InterventionOutcome] = (),
) -> ActionPlan:
    """Build the ranked action plan for one audited entity.

    When intervention outcomes are supplied, the measured lifts reorder
    the audit-driven heuristics: campaigns that demonstrably moved AI
    citation coverage rise to the top and are cited as evidence.
    """
    recs = _audit_driven(audit)
    measured: dict[str, float] = {}
    for outcome in outcomes:
        if outcome.plan.entity_id != audit.entity_id:
            raise ValueError("intervention outcomes must target the audited entity")
        lift = outcome.ai_citation_lift()
        measured[outcome.plan.name] = lift
        if lift > 0.05:
            recs.insert(
                0,
                Recommendation(
                    priority=0,
                    action=f"Execute campaign '{outcome.plan.name}'.",
                    reasoning=(
                        f"Counterfactual test measured {lift:+.1%} AI citation "
                        f"coverage and {outcome.serp_lift():+.1%} SERP coverage."
                    ),
                    expected_channel="ai" if outcome.serp_lift() < lift else "both",
                ),
            )

    ranked = tuple(
        Recommendation(
            priority=index + 1,
            action=rec.action,
            reasoning=rec.reasoning,
            expected_channel=rec.expected_channel,
        )
        for index, rec in enumerate(recs)
    )
    return ActionPlan(
        entity_id=audit.entity_id,
        entity_name=audit.entity_name,
        recommendations=ranked,
        measured_lifts=measured,
    )
