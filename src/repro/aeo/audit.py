"""Brand presence auditing across the two information ecosystems.

For a target entity and a query workload, the auditor measures:

* **SERP coverage** — fraction of queries where Google's top-10 contains
  the brand's own domain or a page covering the entity,
* **AI citation coverage** — the same, per generative engine,
* **AI ranking presence** — fraction of queries where the engine's
  synthesized answer *ranks* the entity, split into evidence-backed and
  prior-injected appearances (the Section 3 distinction),
* **mean cited-source age** — the freshness of the sources through which
  the entity surfaces, per system.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.world import World
from repro.engines.base import Answer
from repro.entities.queries import Query, ranking_queries

__all__ = ["BrandAuditor", "PresenceAudit"]


@dataclass(frozen=True)
class PresenceAudit:
    """One entity's presence measurements over a workload."""

    entity_id: str
    entity_name: str
    is_popular: bool
    query_count: int
    serp_coverage: float
    ai_citation_coverage: dict[str, float]
    ai_ranking_presence: dict[str, float]
    prior_injected_share: dict[str, float]
    mean_source_age_days: dict[str, float]

    def mean_ai_citation_coverage(self) -> float:
        """Citation coverage averaged over the generative engines."""
        values = list(self.ai_citation_coverage.values())
        return sum(values) / len(values) if values else 0.0

    def visibility_gap(self) -> float:
        """AI-citation coverage minus SERP coverage.

        Positive: the brand is more visible to answer engines than to
        traditional search; negative: it lives on SEO presence.
        """
        return self.mean_ai_citation_coverage() - self.serp_coverage


class BrandAuditor:
    """Runs presence audits against a :class:`World`."""

    def __init__(self, world: World) -> None:
        self._world = world

    def default_queries(
        self, entity_id: str, count: int = 25, seed: int = 0
    ) -> list[Query]:
        """Ranking queries in the entity's vertical.

        The candidate pool is widened to the vertical's *entire* entity
        set — an audit must let the engines consider the audited brand,
        however niche, or ranking presence would be zero by construction.
        """
        vertical = self._world.catalog.get(entity_id).vertical
        full_pool = tuple(e.id for e in self._world.catalog.in_vertical(vertical))
        queries = ranking_queries(
            self._world.catalog,
            verticals=(vertical,),
            count=count,
            seed=seed,
            id_prefix=f"audit-{entity_id.replace(':', '-')}",
        )
        return [
            dataclasses.replace(query, entities=full_pool) for query in queries
        ]

    def _covers(self, answer: Answer, entity_id: str, brand_domain: str | None) -> bool:
        for citation in answer.citations:
            if brand_domain is not None and citation.domain == brand_domain:
                return True
            if citation.page is not None and citation.page.mentions(entity_id):
                return True
        return False

    def _source_ages(self, answer: Answer) -> list[int]:
        clock = self._world.corpus.clock
        return [
            clock.age_days(citation.page.published)
            for citation in answer.citations
            if citation.page is not None
        ]

    def audit(
        self,
        entity_id: str,
        queries: Sequence[Query] | None = None,
    ) -> PresenceAudit:
        """Audit one entity over ``queries`` (default: its vertical's)."""
        entity = self._world.catalog.get(entity_id)
        workload = list(queries) if queries is not None else self.default_queries(entity_id)
        if not workload:
            raise ValueError("audit requires at least one query")

        serp_hits = 0
        serp_ages: list[int] = []
        citation_hits = {name: 0 for name in self._world.ai_engines()}
        ranking_hits = {name: 0 for name in self._world.ai_engines()}
        uncited_hits = {name: 0 for name in self._world.ai_engines()}
        ai_ages: dict[str, list[int]] = {name: [] for name in self._world.ai_engines()}

        for query in workload:
            google_answer = self._world.google().answer(query)
            if self._covers(google_answer, entity_id, entity.brand_domain):
                serp_hits += 1
                serp_ages.extend(self._source_ages(google_answer))
            for name, engine in self._world.ai_engines().items():
                answer = engine.answer(query)
                covered = self._covers(answer, entity_id, entity.brand_domain)
                if covered:
                    citation_hits[name] += 1
                    ai_ages[name].extend(self._source_ages(answer))
                if entity_id in answer.ranked_entities:
                    ranking_hits[name] += 1
                    if not covered:
                        uncited_hits[name] += 1

        total = len(workload)

        def rate(counts: dict[str, int]) -> dict[str, float]:
            return {name: counts[name] / total for name in counts}

        mean_ages = {
            name: (sum(ages) / len(ages) if ages else float("nan"))
            for name, ages in ai_ages.items()
        }
        mean_ages["Google"] = (
            sum(serp_ages) / len(serp_ages) if serp_ages else float("nan")
        )
        prior_share = {}
        for name in ranking_hits:
            ranked = ranking_hits[name]
            prior_share[name] = uncited_hits[name] / ranked if ranked else 0.0

        return PresenceAudit(
            entity_id=entity_id,
            entity_name=entity.name,
            is_popular=entity.is_popular,
            query_count=total,
            serp_coverage=serp_hits / total,
            ai_citation_coverage=rate(citation_hits),
            ai_ranking_presence=rate(ranking_hits),
            prior_injected_share=prior_share,
            mean_source_age_days=mean_ages,
        )
