"""Query-pattern dissection: presence by query segment.

Section 3.4: "developing analytical strategies that dissect query
patterns to generate actionable content plans becomes vital".  A brand's
query space is not uniform — its AI-search presence can differ wildly
between informational, consideration, transactional, ranking and
comparison queries, and the right content plan targets the weak
segments.  :class:`QueryPatternAnalyzer` builds an entity-anchored query
portfolio per segment and audits each.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.aeo.audit import BrandAuditor, PresenceAudit
from repro.core.world import World
from repro.entities.intents import INTENT_TEMPLATES, Intent
from repro.entities.queries import Query, QueryKind, ranking_queries
from repro.entities.verticals import get_vertical
from repro.llm.rng import derive_rng

__all__ = ["PatternReport", "QueryPatternAnalyzer", "SEGMENTS"]

SEGMENTS = (
    "informational",
    "consideration",
    "transactional",
    "ranking",
    "comparison",
)


@dataclass(frozen=True)
class PatternReport:
    """Per-segment presence for one entity."""

    entity_id: str
    entity_name: str
    segments: dict[str, PresenceAudit]

    def ai_presence_by_segment(self) -> dict[str, float]:
        """Segment -> mean AI citation coverage."""
        return {
            name: audit.mean_ai_citation_coverage()
            for name, audit in self.segments.items()
        }

    def weakest_segments(self, k: int = 2) -> list[str]:
        """The ``k`` segments with the lowest AI citation coverage."""
        ranked = sorted(
            self.ai_presence_by_segment().items(), key=lambda kv: kv[1]
        )
        return [name for name, __ in ranked[:k]]

    def render(self) -> str:
        """Human-readable segment table."""
        lines = [f"Query-pattern presence for {self.entity_name}:"]
        lines.append(
            f"  {'segment':<15} {'SERP':>7} {'AI cite':>8} {'AI rank':>8}"
        )
        for name in SEGMENTS:
            if name not in self.segments:
                continue
            audit = self.segments[name]
            ranking = (
                sum(audit.ai_ranking_presence.values())
                / max(1, len(audit.ai_ranking_presence))
            )
            lines.append(
                f"  {name:<15} {audit.serp_coverage:>6.0%} "
                f"{audit.mean_ai_citation_coverage():>7.0%} {ranking:>7.0%}"
            )
        weakest = ", ".join(self.weakest_segments())
        lines.append(f"  weakest AI segments: {weakest}")
        return "\n".join(lines)


class QueryPatternAnalyzer:
    """Builds and audits an entity's segmented query portfolio."""

    def __init__(self, world: World) -> None:
        self._world = world
        self._auditor = BrandAuditor(world)

    # ------------------------------------------------------------------
    # Portfolio construction

    def _intent_segment(
        self, entity_id: str, intent: Intent, count: int, seed: int
    ) -> list[Query]:
        entity = self._world.catalog.get(entity_id)
        vertical = get_vertical(entity.vertical)
        rng = derive_rng("pattern", seed, entity_id, intent.value)
        templates = INTENT_TEMPLATES[intent]
        queries = []
        for index in range(count):
            template = templates[index % len(templates)]
            text = template.format(
                noun=vertical.noun,
                keyword=rng.choice(vertical.keywords),
                entity=entity.name,
            )
            queries.append(
                Query(
                    id=f"pat-{intent.value[:3]}-{entity.id.replace(':', '-')}-{index}",
                    text=text,
                    kind=QueryKind.INTENT,
                    vertical=entity.vertical,
                    intent=intent,
                    entities=(entity_id,),
                )
            )
        return queries

    def _ranking_segment(self, entity_id: str, count: int, seed: int) -> list[Query]:
        entity = self._world.catalog.get(entity_id)
        full_pool = tuple(
            e.id for e in self._world.catalog.in_vertical(entity.vertical)
        )
        queries = ranking_queries(
            self._world.catalog,
            verticals=(entity.vertical,),
            count=count,
            seed=seed,
            id_prefix=f"pat-rank-{entity.id.replace(':', '-')}",
        )
        return [dataclasses.replace(q, entities=full_pool) for q in queries]

    def _comparison_segment(
        self, entity_id: str, count: int, seed: int
    ) -> list[Query]:
        entity = self._world.catalog.get(entity_id)
        rivals = [
            e for e in self._world.catalog.in_vertical(entity.vertical)
            if e.id != entity_id
        ]
        rivals.sort(key=lambda e: -e.popularity)
        rng = derive_rng("pattern", seed, entity_id, "cmp")
        queries = []
        for index in range(count):
            rival = rivals[index % max(1, min(4, len(rivals)))]
            keyword = rng.choice(get_vertical(entity.vertical).keywords)
            queries.append(
                Query(
                    id=f"pat-cmp-{entity.id.replace(':', '-')}-{index}",
                    text=f"{entity.name} or {rival.name} for {keyword}",
                    kind=QueryKind.COMPARISON,
                    vertical=entity.vertical,
                    entities=(entity_id, rival.id),
                )
            )
        return queries

    # ------------------------------------------------------------------

    def analyze(
        self, entity_id: str, queries_per_segment: int = 10, seed: int = 0
    ) -> PatternReport:
        """Audit the entity across all five query segments."""
        if queries_per_segment < 1:
            raise ValueError("queries_per_segment must be at least 1")
        entity = self._world.catalog.get(entity_id)
        portfolio: dict[str, list[Query]] = {
            "informational": self._intent_segment(
                entity_id, Intent.INFORMATIONAL, queries_per_segment, seed
            ),
            "consideration": self._intent_segment(
                entity_id, Intent.CONSIDERATION, queries_per_segment, seed
            ),
            "transactional": self._intent_segment(
                entity_id, Intent.TRANSACTIONAL, queries_per_segment, seed
            ),
            "ranking": self._ranking_segment(entity_id, queries_per_segment, seed),
            "comparison": self._comparison_segment(
                entity_id, queries_per_segment, seed
            ),
        }
        segments = {
            name: self._auditor.audit(entity_id, queries)
            for name, queries in portfolio.items()
        }
        return PatternReport(
            entity_id=entity_id,
            entity_name=entity.name,
            segments=segments,
        )
