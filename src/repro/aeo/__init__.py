"""Answer Engine Optimization toolkit (the paper's Section 3.4,
operationalized).

The paper closes with observations on AEO/GEO: once a document reaches
the context window, its position matters little for popular entities but
a lot for niche ones; content freshness is crucial; earned and owned
media carry more AI-search presence than social.  This package turns
those observations into tooling a content strategist could run:

* :mod:`repro.aeo.audit` — measure a brand's presence across both
  ecosystems (Google SERPs vs. AI citations and synthesized rankings),
* :mod:`repro.aeo.interventions` — *causal* what-if experiments: inject a
  content plan (N pages of a given source type, freshness and stance)
  into a copy of the web and re-measure presence,
* :mod:`repro.aeo.recommendations` — rank the levers and emit an action
  plan.

Because the whole ecosystem is simulated, interventions here are true
counterfactuals — the one experiment the paper's live-API methodology
cannot run.
"""

from repro.aeo.audit import BrandAuditor, PresenceAudit
from repro.aeo.interventions import (
    ContentPlan,
    InterventionLab,
    InterventionOutcome,
)
from repro.aeo.patterns import PatternReport, QueryPatternAnalyzer
from repro.aeo.recommendations import ActionPlan, recommend

__all__ = [
    "ActionPlan",
    "BrandAuditor",
    "ContentPlan",
    "InterventionLab",
    "InterventionOutcome",
    "PatternReport",
    "PresenceAudit",
    "QueryPatternAnalyzer",
    "recommend",
]
