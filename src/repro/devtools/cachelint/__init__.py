"""cachelint — cache-coherence and epoch-invalidation analysis.

PR 7 pinned the cache/counter contract; this analyzer machine-checks
the half of it no test suite pins reliably: *invalidation*.  The repo's
caches — the engine answer memos, the query-result cache, the evidence
cache, the snippet cache — all memoize values derived from the inverted
index, and the index mutates (``add()`` bumps its ``epoch``).  A cache
whose key omits that epoch, or that world-level invalidation forgets,
serves stale answers silently.  cachelint reuses conclint's
project-wide symbol table, discovers every **cache site** (a
``*Cache``-typed attribute, a dict-as-cache ``__init__`` attribute, a
module-level memo table), summarizes every function's cache traffic,
and enforces:

========  =========================================================
CACHE001  a cache reachable from a ``clear_caches()`` owner that the
          clear walk never reaches (survives world invalidation)
CACHE002  a cache filled from epoch-coupled state whose key has no
          epoch/generation component
CACHE003  a method of an epoch-bearing class that mutates its keyed
          state without bumping the generation counter
CACHE004  a mutable cached value that escapes and is mutated after
          insertion (later hits observe the mutation)
CACHE005  raw storage access from outside the owning cache, or an
          insert that skips the hit/miss counter contract
========  =========================================================

Receiver resolution is strictly typed — an unknown receiver contributes
nothing, and the runtime witness (:mod:`repro.cachewitness`,
``REPRO_CACHE_WITNESS=1``) covers the dynamic remainder by
fingerprinting stored values at insert and re-verifying them, with an
epoch stamp, on every cached read.  The one deliberate exception is
CACHE001's clear walk, which follows ``clear``-named calls by name —
there, a missed edge would *invent* a finding rather than suppress one.

Waive a single site with ``# cachelint: ignore[CACHE002] -- reason``;
the ``.cachelint-baseline.json`` baseline ships **empty** — src/repro
carries no grandfathered cache debt.  Run via ``python -m repro
cachelint``; ``--dump-cachegraph`` emits the deterministic
site/epoch/traffic JSON the analysis ran against.  The findings/pragma/
baseline/reporter machinery lives in :mod:`repro.devtools.common`,
shared with detlint, conclint and locklint.
"""

from repro.devtools.common.findings import Finding
from repro.devtools.cachelint.cachegraph import (
    CacheGraph,
    CacheOp,
    FunctionSummary,
    build_cachegraph,
)
from repro.devtools.cachelint.rules import cache_rule_table, run_rules
from repro.devtools.cachelint.runner import (
    EXEMPT_MODULES,
    CacheAnalysis,
    analyze_paths,
)
from repro.devtools.cachelint.sites import (
    CacheSite,
    CacheSiteTable,
    build_cache_sites,
)

__all__ = [
    "EXEMPT_MODULES",
    "CacheAnalysis",
    "CacheGraph",
    "CacheOp",
    "CacheSite",
    "CacheSiteTable",
    "Finding",
    "FunctionSummary",
    "analyze_paths",
    "build_cache_sites",
    "build_cachegraph",
    "cache_rule_table",
    "run_rules",
]
