"""The ``python -m repro cachelint`` subcommand (shared CLI skeleton)."""

from __future__ import annotations

import argparse

from repro.devtools.common.cli import DumpOption, ToolCLI, run_tool
from repro.devtools.common.cli import configure_parser as _configure
from repro.devtools.cachelint.rules import cache_rule_table
from repro.devtools.cachelint.runner import analyze_paths

__all__ = ["configure_parser", "run_cachelint"]

DEFAULT_BASELINE = ".cachelint-baseline.json"

CLI = ToolCLI(
    tool="cachelint",
    default_baseline=DEFAULT_BASELINE,
    analyze=analyze_paths,
    rule_table=cache_rule_table,
    dumps=(
        DumpOption(
            flag="--dump-cachegraph",
            help="emit the cache sites, epoch tables and per-function "
            "cache traffic as deterministic JSON and exit",
            render=lambda report: report.graph.to_json(),
        ),
    ),
)


def configure_parser(parser: argparse.ArgumentParser) -> None:
    _configure(parser, CLI)


def run_cachelint(args: argparse.Namespace, out=None) -> int:
    return run_tool(args, CLI, out)
