"""cachelint orchestration: index, sites, cache graph, rules, waivers.

The pipeline mirrors locklint's whole-program shape and reuses
conclint's :class:`~repro.devtools.conclint.symbols.ProjectIndex` (built
under the ``cachelint`` pragma namespace):

1. parse every module under the analyzed roots;
2. discover the cache sites and epoch tables
   (:mod:`repro.devtools.cachelint.sites`);
3. summarize every function's cache traffic
   (:mod:`repro.devtools.cachelint.cachegraph`);
4. evaluate CACHE001–CACHE005 and apply ``# cachelint: ignore[...]``
   pragmas and the ``.cachelint-baseline.json`` baseline via the shared
   :mod:`repro.devtools.common` machinery.

``repro.cachewitness`` — the runtime staleness witness — is exempt by
construction: it *implements* cache verification (its entry table is a
fingerprint store keyed alongside the caches it audits), so it cannot
satisfy the caller-side discipline it exists to enforce, exactly as
``repro.lockorder`` is exempt from locklint.
"""

from __future__ import annotations

from pathlib import Path

from repro.devtools.common.baseline import apply_baseline, load_baseline
from repro.devtools.common.findings import Finding
from repro.devtools.common.pragmas import apply_waivers
from repro.devtools.common.report import (
    DEFAULT_PATHS,
    LintReport,
    iter_python_files,
)
from repro.devtools.conclint.symbols import ProjectIndex
from repro.devtools.cachelint.cachegraph import CacheGraph, build_cachegraph
from repro.devtools.cachelint.rules import run_rules
from repro.devtools.cachelint.sites import build_cache_sites

__all__ = ["EXEMPT_MODULES", "CacheAnalysis", "analyze_paths"]

#: Module prefixes the cache-coherence rules do not apply to.
EXEMPT_MODULES = ("repro.cachewitness",)


class CacheAnalysis(LintReport):
    """A lint report plus the cache graph it was computed against."""

    def __init__(self, findings, files_checked: int, graph: CacheGraph) -> None:
        super().__init__(findings=findings, files_checked=files_checked)
        self.graph = graph


def _exempt(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in EXEMPT_MODULES
    )


def analyze_paths(
    paths: list[str | Path] | None = None,
    baseline: str | Path | None = None,
) -> CacheAnalysis:
    """Analyze files/trees and apply the baseline; the main entry point."""
    targets = list(paths) if paths else [Path(p) for p in DEFAULT_PATHS]
    files = iter_python_files(targets)
    index = ProjectIndex.build(files, tool="cachelint")

    table = build_cache_sites(index)
    # The witness module's entry table is implementation detail, not a
    # project cache site.
    def _site_module(site) -> str:
        if site.scope == "global":
            return site.owner
        info = index.classes.get(site.owner)
        return info.module if info is not None else ""

    for name in [
        name
        for name, site in table.sites.items()
        if _exempt(_site_module(site))
    ]:
        site = table.sites.pop(name)
        table.attr_sites.pop((site.owner, site.binding), None)
        table.global_sites.pop(site.name, None)

    graph = build_cachegraph(index, table, exempt_modules=EXEMPT_MODULES)

    findings: list[Finding] = []
    for display_path in sorted(index.broken):
        exc = index.broken[display_path]
        findings.append(
            Finding(
                path=display_path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                rule="CACHE000",
                message=f"file does not parse: {exc.msg}",
            )
        )
    findings.extend(run_rules(graph))
    findings.sort()

    # Pragma waivers, per module (same two-anchor semantics as the
    # sibling analyzers).
    by_path = {
        minfo.path: minfo.pragmas for minfo in index.modules.values()
    }
    waived: list[Finding] = []
    for finding in findings:
        pragmas = by_path.get(finding.path)
        if pragmas is None:
            waived.append(finding)
        elif pragmas.skip_file:
            continue
        else:
            waived.extend(apply_waivers([finding], pragmas))
    findings = waived

    base_dir = Path(baseline).resolve().parent if baseline is not None else None
    findings = apply_baseline(findings, load_baseline(baseline), base_dir)
    return CacheAnalysis(
        findings=findings, files_checked=len(files), graph=graph
    )
