"""The five CACHE rules, evaluated over a :class:`CacheGraph`.

Every rule reads the completed whole-program graph; the functions below
turn graph facts into :class:`~repro.devtools.common.findings.Finding`
records anchored at the source location that best explains each hazard.
"""

from __future__ import annotations

import ast
import re

from repro.devtools.common.findings import Finding
from repro.devtools.cachelint.cachegraph import (
    CacheGraph,
    FunctionSummary,
    key_has_epoch,
)
from repro.devtools.cachelint.sites import EPOCH_NAME_RE

__all__ = ["RULES", "cache_rule_table", "run_rules"]

RULES = (
    (
        "CACHE001",
        "unregistered cache",
        "a cache reachable from a clear_caches() owner is never cleared "
        "by it (survives world-level invalidation)",
    ),
    (
        "CACHE002",
        "epoch-free cache key",
        "a cache filled from index/corpus-derived state is keyed without "
        "an epoch/generation component (entries outlive the data they "
        "were computed from)",
    ),
    (
        "CACHE003",
        "mutation without epoch bump",
        "a method of an epoch-bearing class mutates its keyed state "
        "without bumping the generation counter on that path",
    ),
    (
        "CACHE004",
        "cached value mutated after insert",
        "a mutable value stored in a cache escapes and is mutated after "
        "insertion (every later hit observes the mutation)",
    ),
    (
        "CACHE005",
        "cache contract bypass",
        "raw storage access from outside the owning cache, or an insert "
        "that skips the hit/miss counter contract",
    ),
)

#: Counter attrs that satisfy the miss half of the contract.
_MISS_RE = re.compile(r"miss", re.IGNORECASE)
#: Counter attrs whose presence pins the contract on a dict cache.
_COUNTER_RE = re.compile(r"hit|miss", re.IGNORECASE)

#: Method names the CACHE001 clear walk follows even on untyped
#: receivers (name-based dispatch is safe here: a spurious edge can only
#: *suppress* a finding, never invent one).
_CLEARISH_RE = re.compile(r"clear|reset|invalidate", re.IGNORECASE)


def cache_rule_table() -> list[tuple[str, str, str]]:
    return [(code, title, summary) for code, title, summary in RULES]


def _finding(
    graph: CacheGraph, path: str, line: int, rule: str, message: str
) -> Finding:
    minfo = next(
        (m for m in graph.index.modules.values() if m.path == path), None
    )
    snippet = minfo.ctx.snippet(line) if minfo is not None else ""
    return Finding(
        path=path,
        line=line,
        col=0,
        rule=rule,
        message=message,
        snippet=snippet,
        end_line=line,
        stmt_line=line,
    )


def run_rules(graph: CacheGraph) -> list[Finding]:
    findings: list[Finding] = []
    findings.extend(_cache001(graph))
    findings.extend(_cache002(graph))
    findings.extend(_cache003(graph))
    findings.extend(_cache004(graph))
    findings.extend(_cache005(graph))
    findings.sort()
    return findings


# ----------------------------------------------------------------------
# CACHE001 — world-reachable cache not registered with clear_caches()


def _reachable_classes(graph: CacheGraph, root: str) -> set[str]:
    """Classes reachable from ``root`` through typed attributes,
    annotation leaves and class-hierarchy dispatch."""
    table, index = graph.table, graph.index
    reached: set[str] = set()
    frontier = [root]
    while frontier:
        current = frontier.pop(0)
        if current in reached or current not in index.classes:
            continue
        for member in index.class_family(current):
            if member in reached:
                continue
            reached.add(member)
            nxt: set[str] = set()
            nxt.update(
                t
                for t in table.attr_types.get(member, {}).values()
                if t in index.classes
            )
            for leaves in table.attr_leaves.get(member, {}).values():
                nxt.update(leaves)
            frontier.extend(sorted(nxt - reached))
    return reached


def _clear_walk(graph: CacheGraph, start: str) -> set[str]:
    """Site names cleared transitively from one ``clear_caches`` method.

    Follows typed dispatch always, and falls back to name-based
    dispatch for ``clear``-ish call names — the loop over
    ``self.engines.values()`` leaves the receiver untyped, and missing
    that edge would report every engine memo as unregistered.
    """
    index = graph.index
    cleared: set[str] = set()
    visited: set[str] = set()
    frontier = [start]
    while frontier:
        qualname = frontier.pop(0)
        if qualname in visited:
            continue
        visited.add(qualname)
        summary = graph.summaries.get(qualname)
        if summary is None:
            continue
        for op in summary.ops:
            if op.kind == "clear":
                cleared.add(op.site)
        fn = summary.fn
        for node in ast.walk(fn.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            method = node.func.attr
            if not _CLEARISH_RE.search(method):
                continue
            # ``x.clear()`` on a site is already an op above; here we
            # chase the *method bodies* clear calls dispatch into.
            targets: list[str] = []
            for cls in sorted(index.classes):
                cinfo = index.classes[cls]
                if method in cinfo.methods:
                    targets.append(cinfo.methods[method])
            frontier.extend(targets)
    return cleared


def _cache001(graph: CacheGraph) -> list[Finding]:
    findings: list[Finding] = []
    index, table = graph.index, graph.table
    roots = [
        (cls, info.methods["clear_caches"])
        for cls, info in sorted(index.classes.items())
        if "clear_caches" in info.methods
    ]
    if not roots:
        return findings
    for root_cls, clear_fn in roots:
        reached = _reachable_classes(graph, root_cls)
        cleared = _clear_walk(graph, clear_fn)
        for name in sorted(table.sites):
            site = table.sites[name]
            if site.scope != "attr" or site.owner not in reached:
                continue
            # A cache-class attr whose *instance type's* internal sites
            # are cleared counts as registered through its own clear().
            if site.name in cleared:
                continue
            findings.append(
                _finding(
                    graph,
                    site.path,
                    site.lineno,
                    "CACHE001",
                    f"cache {site.name} is reachable from "
                    f"{root_cls}.clear_caches() but never cleared by it — "
                    f"register it so world-level invalidation covers "
                    f"every memo",
                )
            )
    return findings


# ----------------------------------------------------------------------
# CACHE002 — epoch-free key on an epoch-coupled insert


def _fn_is_coupled(graph: CacheGraph, summary: FunctionSummary) -> bool:
    cls = graph.effective_cls(summary.fn)
    if graph.table.is_coupled(graph.index, cls):
        return True
    # Module-level functions couple through annotated parameters and
    # typed locals (``def summarize(table: TinyTable, ...)``).
    return any(
        t in graph.table.epoch_coupled
        for t in summary.local_types.values()
    )


def _cache002(graph: CacheGraph) -> list[Finding]:
    findings: list[Finding] = []
    for qualname in sorted(graph.summaries):
        summary = graph.summaries[qualname]
        if not summary.ops:
            continue
        if not _fn_is_coupled(graph, summary):
            continue
        path = graph.index.modules[summary.fn.module].path
        for op in summary.ops:
            if op.kind != "insert":
                continue
            if key_has_epoch(op.key, summary):
                continue
            findings.append(
                _finding(
                    graph,
                    path,
                    op.line,
                    "CACHE002",
                    f"insert into {op.site} from epoch-coupled "
                    f"{qualname} builds its key without an "
                    f"epoch/generation component — entries will be "
                    f"served after the underlying index changes",
                )
            )
    return findings


# ----------------------------------------------------------------------
# CACHE003 — mutation of epoch-bearing state without a bump


def _cache003(graph: CacheGraph) -> list[Finding]:
    findings: list[Finding] = []
    index, table = graph.index, graph.table
    # Per epoch-bearing class: which attrs do *bumping* methods rebind
    # wholesale?  A memo reset inside the bumping method (``add()`` does
    # ``self._views = {}``) licenses non-bumping writes to that memo.
    for cls in sorted(table.epoch_bearing):
        counters = set(table.epoch_bearing[cls])
        cinfo = index.classes[cls]
        method_summaries = [
            graph.summaries[m]
            for m in sorted(cinfo.methods.values())
            if m in graph.summaries
        ]
        reset_by_bumper: set[str] = set()
        for summary in method_summaries:
            # __init__ sets the counter to zero, which reads as a
            # "bump"; its rebinds are construction, not invalidation.
            if summary.fn.name == "__init__":
                continue
            if counters & summary.counter_bumps or any(
                EPOCH_NAME_RE.search(a) for a in summary.counter_bumps
            ):
                reset_by_bumper.update(
                    attr for __, attr in summary.self_rebinds
                )
        for summary in method_summaries:
            bumps = bool(
                counters & summary.counter_bumps
                or any(
                    EPOCH_NAME_RE.search(a) for a in summary.counter_bumps
                )
            )
            if bumps or summary.fn.name == "__init__":
                continue
            path = index.modules[summary.fn.module].path
            for line, attr, via in summary.self_mutations:
                if attr in reset_by_bumper:
                    continue
                if attr in counters:
                    continue
                findings.append(
                    _finding(
                        graph,
                        path,
                        line,
                        "CACHE003",
                        f"{summary.fn.qualname} mutates "
                        f"{cls.rsplit('.', 1)[-1]}.{attr} ({via}) without "
                        f"bumping the epoch counter "
                        f"({', '.join(sorted(counters)) or 'epoch'}) — "
                        f"epoch-keyed caches will keep serving the "
                        f"pre-mutation view",
                    )
                )
    return findings


# ----------------------------------------------------------------------
# CACHE004 — cached mutable value mutated after insert


def _cache004(graph: CacheGraph) -> list[Finding]:
    findings: list[Finding] = []
    #: Functions whose site-insert value is a mutable local they also
    #: return raw: qualname -> insert line.
    leaky: dict[str, int] = {}
    for qualname in sorted(graph.summaries):
        summary = graph.summaries[qualname]
        path = graph.index.modules[summary.fn.module].path
        for op in summary.ops:
            if op.kind != "insert" or not isinstance(op.value, ast.Name):
                continue
            local = op.value.id
            if local not in summary.mutable_locals:
                continue
            post = [
                line
                for line, name in summary.local_mutations
                if name == local and line > op.line
            ]
            if post:
                findings.append(
                    _finding(
                        graph,
                        path,
                        min(post),
                        "CACHE004",
                        f"{local!r} was stored in {op.site} at line "
                        f"{op.line} and is mutated afterwards — every "
                        f"later cache hit observes the mutation",
                    )
                )
            if local in summary.returned_locals:
                leaky[qualname] = op.line
    if not leaky:
        return findings
    # Callers that mutate the returned (and cached) value.
    for qualname in sorted(graph.summaries):
        summary = graph.summaries[qualname]
        path = graph.index.modules[summary.fn.module].path
        for node in ast.walk(summary.fn.node):
            if not isinstance(node, ast.Assign):
                continue
            if not (
                isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
            ):
                continue
            method = node.value.func.attr
            callees = [
                q
                for q in leaky
                if q.rsplit(".", 1)[-1] == method
                and q != qualname
            ]
            if not callees:
                continue
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                post = [
                    line
                    for line, name in summary.local_mutations
                    if name == target.id and line > node.lineno
                ]
                if post:
                    findings.append(
                        _finding(
                            graph,
                            path,
                            min(post),
                            "CACHE004",
                            f"mutating the result of {method}() — the "
                            f"value is also stored in a cache by "
                            f"{callees[0]}, so the mutation corrupts "
                            f"every later hit",
                        )
                    )
    return findings


# ----------------------------------------------------------------------
# CACHE005 — contract bypass


def _cache005(graph: CacheGraph) -> list[Finding]:
    findings: list[Finding] = []
    index, table = graph.index, graph.table
    for qualname in sorted(graph.summaries):
        summary = graph.summaries[qualname]
        cls = graph.effective_cls(summary.fn)
        family = set(index.class_family(cls)) if cls else set()
        path = index.modules[summary.fn.module].path
        for line, target_cls, attr, via in summary.primitive_reaches:
            if target_cls in family:
                continue
            findings.append(
                _finding(
                    graph,
                    path,
                    line,
                    "CACHE005",
                    f"raw reach into {target_cls.rsplit('.', 1)[-1]}.{attr} "
                    f"({via}) from outside the cache class — go through "
                    f"its counted get/put interface",
                )
            )
        for op in summary.ops:
            site = table.sites[op.site]
            if site.scope != "attr":
                continue
            external = site.owner not in family
            # Method-style traffic on a cache-class instance (put, get,
            # get_or_compute, clear) is the public, counted interface —
            # external callers are its whole point.  What crosses the
            # line is raw storage access: subscripting a dict-as-cache
            # attr, or a cache-class instance's keyed store, from
            # outside the owning class.
            raw_dict = site.kind == "dict" and (
                op.kind in ("insert", "store-access")
                or op.via in ("[]", "in")
            )
            raw_class = site.kind == "cache-class" and op.kind == "store-access"
            if external and (raw_dict or raw_class):
                findings.append(
                    _finding(
                        graph,
                        path,
                        op.line,
                        "CACHE005",
                        f"raw storage access ({op.via}) on {op.site} from "
                        f"outside {site.owner} — go through the owner's "
                        f"counted get/put interface",
                    )
                )
                continue
            if (
                not external
                and op.kind == "insert"
                and site.kind == "dict"
                and _counter_bearing(graph, site.owner)
                and not any(
                    _MISS_RE.search(a) for a in summary.counter_bumps
                )
            ):
                findings.append(
                    _finding(
                        graph,
                        path,
                        op.line,
                        "CACHE005",
                        f"insert into counter-bearing cache {op.site} "
                        f"without recording the miss — hit-rate "
                        f"accounting drifts from reality",
                    )
                )
    return findings


def _counter_bearing(graph: CacheGraph, owner: str) -> bool:
    """Whether a class tracks hit/miss counters next to its dict cache."""
    attrs = set(graph.table.attr_types.get(owner, {}))
    cinfo = graph.index.classes.get(owner)
    if cinfo is not None:
        init_q = cinfo.methods.get("__init__")
        init_summary = graph.summaries.get(init_q) if init_q else None
        # Counters are usually untyped scalar attrs; read them off the
        # __init__ rebinds instead of the type table.
        if init_summary is not None:
            attrs.update(attr for __, attr in init_summary.self_rebinds)
    return any(_COUNTER_RE.search(a) for a in attrs)
