"""The cache graph: per-function cache operations over resolved sites.

For every project function this module computes a
:class:`FunctionSummary` of its cache traffic — inserts, reads, clears,
external storage pokes — with each receiver resolved to a named
:class:`~repro.devtools.cachelint.sites.CacheSite` through the typed
chain resolver.  Resolution is strictly *under*-approximate, for the
same reason locklint's is: a cache analyzer that guesses receivers
reports phantom staleness, so an unknown receiver contributes nothing
and the runtime witness (:mod:`repro.cachewitness`,
``REPRO_CACHE_WITNESS=1``) covers the dynamic remainder.  The one
deliberate exception is CACHE001's clear walk, which falls back to
name-based dispatch for ``clear``-named calls — missing a clear edge
would report a phantom *unregistered* cache, the opposite failure.

The resolver follows the idioms the runtime actually uses:

* ``self._attr`` chains through the attribute type tables
  (``self._world.evidence_cache`` lands on ``World.evidence_cache``);
* ``cache = getattr(self, "_answer_cache", None)`` — the skipped-init
  probe in :meth:`repro.engines.base.AnswerEngine.answer` — aliases a
  local to the attribute site;
* plain local aliases (``cache = self._query_cache``) and annotated
  parameters.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field

from repro.devtools.conclint.symbols import (
    FunctionInfo,
    ProjectIndex,
    iter_own_nodes,
)
from repro.devtools.cachelint.sites import (
    EPOCH_NAME_RE,
    CacheSite,
    CacheSiteTable,
    build_cache_sites,
    resolve_annotation,
)

__all__ = [
    "CacheGraph",
    "CacheOp",
    "FunctionSummary",
    "build_cachegraph",
    "key_has_epoch",
]

#: Method names that insert into a keyed store.  ``get_or_compute`` is
#: the read-through form; its key is still argument zero.
_INSERT_METHODS = frozenset({"put", "setdefault", "get_or_compute"})

#: Method names that read without inserting.
_READ_METHODS = frozenset({"get"})

#: Method names that drop entries wholesale.
_CLEAR_METHODS = frozenset({"clear"})

#: Attribute-mutating method names (CACHE003/CACHE004 fuel).
_MUTATING_METHODS = frozenset(
    {"append", "add", "update", "setdefault", "extend", "insert", "pop",
     "popitem", "remove", "discard", "clear"}
)


@dataclass(frozen=True)
class CacheOp:
    """One operation against a resolved cache site."""

    site: str
    #: ``insert`` / ``read`` / ``clear`` / ``store-access`` (raw
    #: subscript/``in``/``pop`` on the keyed store itself).
    kind: str
    fn: str
    line: int
    #: For inserts: the key expression (post one-level local
    #: substitution) — ``None`` when the operation has no key.
    key: ast.expr | None = None
    #: For inserts: the value expression.
    value: ast.expr | None = None
    #: The spelled method (``put``, ``[]=``, ``in``, ...).
    via: str = ""


@dataclass
class FunctionSummary:
    """Cache traffic of one function."""

    fn: FunctionInfo
    ops: list[CacheOp] = field(default_factory=list)
    #: Attr names of ``self`` mutated in place (line, attr, via).
    self_mutations: list[tuple[int, str, str]] = field(default_factory=list)
    #: Attr names of ``self`` rebound wholesale (line, attr).
    self_rebinds: list[tuple[int, str]] = field(default_factory=list)
    #: Counter attrs of ``self`` bumped (attr names).
    counter_bumps: set[str] = field(default_factory=set)
    #: Local name -> site name (aliases like ``cache = self._answer_cache``).
    local_sites: dict[str, str] = field(default_factory=dict)
    #: Local name -> class qualname / builtin-collection display type.
    local_types: dict[str, str] = field(default_factory=dict)
    #: Locals bound to fresh mutable displays (name -> bind line).
    mutable_locals: dict[str, int] = field(default_factory=dict)
    #: (line, local) in-place mutations of locals after binding.
    local_mutations: list[tuple[int, str]] = field(default_factory=list)
    #: Locals returned raw (``return x``) and the insert ops whose value
    #: they were: set of local names returned.
    returned_locals: set[str] = field(default_factory=set)
    #: Raw reaches into a cache primitive's underscore store from this
    #: function: (line, cache class qualname, attr, via).
    primitive_reaches: list[tuple[int, str, str, str]] = field(
        default_factory=list
    )


class CacheGraph:
    """Sites, per-function summaries, and the epoch tables."""

    def __init__(
        self,
        index: ProjectIndex,
        table: CacheSiteTable,
        summaries: dict[str, FunctionSummary],
    ) -> None:
        self.index = index
        self.table = table
        self.summaries = summaries

    def effective_cls(self, fn: FunctionInfo) -> str | None:
        """The class a function's ``self`` binds, walking out of nested
        defs (a closure inside a method still sees the method's self)."""
        current: FunctionInfo | None = fn
        while current is not None:
            if current.cls is not None:
                return current.cls
            current = (
                self.index.functions.get(current.parent)
                if current.parent
                else None
            )
        return None

    def to_json(self) -> str:
        """The sites, epoch tables and per-function op counts as
        deterministic JSON (the ``--dump-cachegraph`` artifact)."""
        ops = {}
        for qualname in sorted(self.summaries):
            summary = self.summaries[qualname]
            if not summary.ops:
                continue
            ops[qualname] = [
                {
                    "site": op.site,
                    "kind": op.kind,
                    "line": op.line,
                    "via": op.via,
                    "epoch_keyed": (
                        key_has_epoch(op.key, summary) if op.kind == "insert" else None
                    ),
                }
                for op in summary.ops
            ]
        payload = {
            "sites": [
                self.table.sites[name].to_dict()
                for name in sorted(self.table.sites)
            ],
            "epoch_bearing": {
                cls: list(attrs)
                for cls, attrs in sorted(self.table.epoch_bearing.items())
            },
            "epoch_coupled": sorted(self.table.epoch_coupled),
            "primitive_classes": sorted(self.table.primitive_classes),
            "ops": ops,
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def key_has_epoch(key: ast.expr | None, summary: FunctionSummary) -> bool:
    """Whether a key expression carries an epoch/generation component.

    Any name, attribute or call whose identifier matches the epoch
    pattern counts (``self._index.epoch``, ``self._cache_epoch()``,
    ``table.generation``).  A bare-name key is substituted once from its
    local assignment, which is how ``key = (terms, k,
    self._index.epoch)`` followed by ``cache.put(key, ...)`` resolves.
    """
    if key is None:
        return False
    exprs = [key]
    if isinstance(key, ast.Name):
        bound = _local_binding(summary.fn, key.id)
        if bound is not None:
            exprs.append(bound)
    for expr in exprs:
        for node in ast.walk(expr):
            name = None
            if isinstance(node, ast.Name):
                name = node.id
            elif isinstance(node, ast.Attribute):
                name = node.attr
            if name is not None and EPOCH_NAME_RE.search(name):
                return True
    return False


def _local_binding(fn: FunctionInfo, name: str) -> ast.expr | None:
    """The value expression last assigned to a bare local, if any."""
    bound: ast.expr | None = None
    for node in iter_own_nodes(fn.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    bound = node.value
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == name
            and node.value is not None
        ):
            bound = node.value
    return bound


# ----------------------------------------------------------------------
# Chain resolution


def _getattr_alias(call: ast.Call) -> str | None:
    """``getattr(self, "attr", ...)`` -> the attr name."""
    if (
        isinstance(call.func, ast.Name)
        and call.func.id == "getattr"
        and len(call.args) >= 2
        and isinstance(call.args[0], ast.Name)
        and call.args[0].id == "self"
        and isinstance(call.args[1], ast.Constant)
        and isinstance(call.args[1].value, str)
    ):
        return call.args[1].value
    return None


class Resolver:
    """Typed receiver resolution for one function."""

    def __init__(
        self,
        graph_index: ProjectIndex,
        table: CacheSiteTable,
        fn: FunctionInfo,
        cls: str | None,
        summary: FunctionSummary,
    ) -> None:
        self.index = graph_index
        self.table = table
        self.fn = fn
        self.cls = cls
        self.summary = summary

    def resolve(self, expr: ast.expr) -> tuple[str, object] | None:
        """``("site", CacheSite)`` or ``("type", qualname)`` for a
        receiver expression, or ``None`` when unknown."""
        if isinstance(expr, ast.Name):
            if expr.id == "self" and self.cls is not None:
                return ("type", self.cls)
            site_name = self.summary.local_sites.get(expr.id)
            if site_name is not None:
                return ("site", self.table.sites[site_name])
            typed = self.summary.local_types.get(expr.id)
            if typed is not None:
                return ("type", typed)
            minfo = self.index.modules[self.fn.module]
            var = self.index.resolve_global(expr, minfo)
            if var is not None and var.qualname in self.table.global_sites:
                return ("site", self.table.global_sites[var.qualname])
            return None
        if isinstance(expr, ast.Call):
            attr = _getattr_alias(expr)
            if attr is not None and self.cls is not None:
                return self._attr_step(self.cls, attr)
            return None
        if isinstance(expr, ast.Attribute):
            minfo = self.index.modules[self.fn.module]
            var = self.index.resolve_global(expr, minfo)
            if var is not None and var.qualname in self.table.global_sites:
                return ("site", self.table.global_sites[var.qualname])
            base = self.resolve(expr.value)
            if base is None or base[0] != "type":
                return None
            return self._attr_step(str(base[1]), expr.attr)
        return None

    def _attr_step(self, cls: str, attr: str) -> tuple[str, object] | None:
        if cls not in self.index.classes:
            return None
        site = self.table.attr_site(self.index, cls, attr)
        if site is not None:
            return ("site", site)
        typed = self.table.attr_type(self.index, cls, attr)
        if typed is not None:
            return ("type", typed)
        # Property returning a typed value (``retriever.snippet_cache``).
        for candidate in [cls, *self.index.ancestors(cls)]:
            cinfo = self.index.classes.get(candidate)
            if cinfo is None:
                continue
            method = cinfo.methods.get(attr)
            if method is None:
                continue
            fn = self.index.functions[method]
            minfo = self.index.modules[fn.module]
            typed = resolve_annotation(fn.node.returns, minfo, self.index)
            if typed is not None:
                return ("type", typed)
            # An un-annotated one-hop property: ``return self._x``.
            for node in iter_own_nodes(fn.node):
                if isinstance(node, ast.Return) and isinstance(
                    node.value, ast.Attribute
                ):
                    value = node.value
                    if (
                        isinstance(value.value, ast.Name)
                        and value.value.id == "self"
                    ):
                        hop = self.table.attr_site(
                            self.index, candidate, value.attr
                        )
                        if hop is not None:
                            return ("site", hop)
                        hop_type = self.table.attr_type(
                            self.index, candidate, value.attr
                        )
                        if hop_type is not None:
                            return ("type", hop_type)
            break
        return None


# ----------------------------------------------------------------------
# Summary construction


def _prepass(
    index: ProjectIndex,
    table: CacheSiteTable,
    fn: FunctionInfo,
    cls: str | None,
    summary: FunctionSummary,
) -> None:
    """Bind parameter/local types and site aliases before op extraction."""
    minfo = index.modules[fn.module]
    args = fn.node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        typed = resolve_annotation(arg.annotation, minfo, index)
        if typed is not None:
            summary.local_types[arg.arg] = typed

    resolver = Resolver(index, table, fn, cls, summary)
    for node in iter_own_nodes(fn.node):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        resolved = None
        if isinstance(value, (ast.Attribute, ast.Call, ast.Name)):
            resolved = resolver.resolve(value)
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            if resolved is not None:
                if resolved[0] == "site":
                    summary.local_sites[target.id] = resolved[1].name
                else:
                    summary.local_types[target.id] = str(resolved[1])
            if isinstance(value, (ast.Dict, ast.DictComp)):
                summary.local_types[target.id] = "dict"
                summary.mutable_locals[target.id] = node.lineno
            elif isinstance(value, (ast.List, ast.ListComp)):
                summary.local_types[target.id] = "list"
                summary.mutable_locals[target.id] = node.lineno
            elif isinstance(value, (ast.Set, ast.SetComp)):
                summary.local_types[target.id] = "set"
                summary.mutable_locals[target.id] = node.lineno


def _self_attr_of(expr: ast.expr) -> str | None:
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


def _extract_ops(
    index: ProjectIndex,
    table: CacheSiteTable,
    fn: FunctionInfo,
    cls: str | None,
    summary: FunctionSummary,
) -> None:
    resolver = Resolver(index, table, fn, cls, summary)

    def site_of(expr: ast.expr) -> CacheSite | None:
        resolved = resolver.resolve(expr)
        if resolved is not None and resolved[0] == "site":
            return resolved[1]
        return None

    def note_primitive_reach(expr: ast.expr, line: int, via: str) -> None:
        """``x._store[...]`` where ``x`` is a cache-class instance: a
        reach past the primitive's counted interface into its raw
        storage."""
        if not (
            isinstance(expr, ast.Attribute) and expr.attr.startswith("_")
        ):
            return
        base = resolver.resolve(expr.value)
        if base is None:
            return
        if base[0] == "site":
            target_cls = getattr(base[1], "value_type", None)
        else:
            target_cls = str(base[1])
        if target_cls in table.cache_classes:
            summary.primitive_reaches.append(
                (line, target_cls, expr.attr, via)
            )

    for node in iter_own_nodes(fn.node):
        # Method-style ops: cache.put(k, v) / cache.get(k) / cache.clear().
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            method = node.func.attr
            receiver = node.func.value
            site = site_of(receiver)
            if site is not None:
                if method in _INSERT_METHODS:
                    summary.ops.append(
                        CacheOp(
                            site=site.name,
                            kind="insert",
                            fn=fn.qualname,
                            line=node.lineno,
                            key=node.args[0] if node.args else None,
                            value=(
                                node.args[1] if len(node.args) > 1 else None
                            ),
                            via=method,
                        )
                    )
                elif method in _READ_METHODS:
                    summary.ops.append(
                        CacheOp(
                            site=site.name,
                            kind="read",
                            fn=fn.qualname,
                            line=node.lineno,
                            key=node.args[0] if node.args else None,
                            via=method,
                        )
                    )
                elif method in _CLEAR_METHODS:
                    summary.ops.append(
                        CacheOp(
                            site=site.name,
                            kind="clear",
                            fn=fn.qualname,
                            line=node.lineno,
                            via=method,
                        )
                    )
                elif method in ("pop", "popitem"):
                    summary.ops.append(
                        CacheOp(
                            site=site.name,
                            kind="store-access",
                            fn=fn.qualname,
                            line=node.lineno,
                            via=method,
                        )
                    )
            elif method in (
                "pop", "popitem", "setdefault", "get", "clear"
            ):
                note_primitive_reach(receiver, node.lineno, method)
            # Raw reach into a cache primitive's underscore store:
            # ``engine._answer_cache`` handled above (it IS the site);
            # ``bc._cache[...]`` handled by the subscript branch below.
            attr = _self_attr_of(receiver)
            if attr is not None and method in _MUTATING_METHODS:
                summary.self_mutations.append((node.lineno, attr, method))
            # setdefault(...).append(...) chains mutate the inner attr.
            if (
                isinstance(receiver, ast.Call)
                and isinstance(receiver.func, ast.Attribute)
            ):
                inner = _self_attr_of(receiver.func.value)
                if inner is not None and method in _MUTATING_METHODS:
                    summary.self_mutations.append((node.lineno, inner, method))
            # Local in-place mutation (CACHE004's post-insert check).
            if isinstance(receiver, ast.Name) and method in _MUTATING_METHODS:
                summary.local_mutations.append((node.lineno, receiver.id))

        # Subscript stores: cache[k] = v  /  self._attr[k] = v.
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    site = site_of(target.value)
                    if site is not None:
                        kind = (
                            "store-access"
                            if site.kind == "cache-class"
                            else "insert"
                        )
                        summary.ops.append(
                            CacheOp(
                                site=site.name,
                                kind=kind,
                                fn=fn.qualname,
                                line=node.lineno,
                                key=target.slice,
                                value=node.value,
                                via="[]=",
                            )
                        )
                    attr = _self_attr_of(target.value)
                    if attr is not None:
                        summary.self_mutations.append(
                            (node.lineno, attr, "[]=")
                        )
                    if isinstance(target.value, ast.Name):
                        summary.local_mutations.append(
                            (node.lineno, target.value.id)
                        )
                    if site is None:
                        note_primitive_reach(
                            target.value, node.lineno, "[]="
                        )
                else:
                    attr = _self_attr_of(target)
                    if attr is not None:
                        summary.self_rebinds.append((node.lineno, attr))
                        if EPOCH_NAME_RE.search(attr):
                            summary.counter_bumps.add(attr)
                        site = table.attr_sites.get((cls, attr)) if cls else None
                        if site is not None and isinstance(
                            node.value, (ast.Dict, ast.DictComp)
                        ):
                            summary.ops.append(
                                CacheOp(
                                    site=site.name,
                                    kind="clear",
                                    fn=fn.qualname,
                                    line=node.lineno,
                                    via="rebind",
                                )
                            )

        elif isinstance(node, ast.AugAssign):
            # ``self._total += n`` is a scalar bump (recorded below as a
            # counter), not a collection mutation; only subscript
            # augassigns mutate stored state in place.
            if isinstance(node.target, ast.Subscript):
                inner = _self_attr_of(node.target.value)
                if inner is not None:
                    summary.self_mutations.append((node.lineno, inner, "[]+="))

        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    inner = _self_attr_of(target.value)
                    if inner is not None:
                        summary.self_mutations.append(
                            (target.value.lineno, inner, "del[]")
                        )
                    site = site_of(target.value)
                    if site is not None and site.kind == "cache-class":
                        summary.ops.append(
                            CacheOp(
                                site=site.name,
                                kind="store-access",
                                fn=fn.qualname,
                                line=node.lineno,
                                via="del[]",
                            )
                        )

        # Membership probes and subscript loads on sites.
        elif isinstance(node, ast.Compare) and any(
            isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
        ):
            site = site_of(node.comparators[0]) if node.comparators else None
            if site is not None:
                kind = (
                    "store-access" if site.kind == "cache-class" else "read"
                )
                summary.ops.append(
                    CacheOp(
                        site=site.name,
                        kind=kind,
                        fn=fn.qualname,
                        line=node.lineno,
                        key=node.left,
                        via="in",
                    )
                )
            elif node.comparators:
                note_primitive_reach(node.comparators[0], node.lineno, "in")
        elif isinstance(node, ast.Subscript) and isinstance(
            node.ctx, ast.Load
        ):
            site = site_of(node.value)
            if site is not None:
                kind = (
                    "store-access" if site.kind == "cache-class" else "read"
                )
                summary.ops.append(
                    CacheOp(
                        site=site.name,
                        kind=kind,
                        fn=fn.qualname,
                        line=node.lineno,
                        key=node.slice,
                        via="[]",
                    )
                )
            else:
                note_primitive_reach(node.value, node.lineno, "[]")

        elif isinstance(node, ast.Return) and isinstance(
            node.value, ast.Name
        ):
            summary.returned_locals.add(node.value.id)

        # Miss/hit counter bumps: self._cache_misses += 1 styles are
        # AugAssign (handled above for epoch names); record counter-ish
        # attrs separately.
        if isinstance(node, ast.AugAssign):
            attr = _self_attr_of(node.target)
            if attr is not None:
                summary.counter_bumps.add(attr)


def build_cachegraph(
    index: ProjectIndex,
    table: CacheSiteTable | None = None,
    exempt_modules: tuple[str, ...] = (),
) -> CacheGraph:
    """Summarize every function's cache traffic over the site table."""
    if table is None:
        table = build_cache_sites(index)
    summaries: dict[str, FunctionSummary] = {}
    graph = CacheGraph(index, table, summaries)
    for qualname in sorted(index.functions):
        fn = index.functions[qualname]
        if any(
            fn.module == prefix or fn.module.startswith(prefix + ".")
            for prefix in exempt_modules
        ):
            continue
        summary = FunctionSummary(fn=fn)
        cls = graph.effective_cls(fn)
        _prepass(index, table, fn, cls, summary)
        _extract_ops(index, table, fn, cls, summary)
        summaries[qualname] = summary
    return graph
