"""Cache-site discovery and the epoch-coupling tables.

A **cache site** is a keyed memo with a stable identity the analysis can
name:

* a *typed attribute site* — an attribute whose (inferred or annotated)
  type is an in-project **cache class** (a class whose name ends in
  ``Cache``): ``self._query_cache = BoundedCache(...)``,
  ``evidence_cache: EvidenceCache = field(...)``;
* a *dict-as-cache attribute site* — a plain dict display assigned in
  ``__init__`` whose attribute name says it memoizes
  (``self._answer_cache = {}``);
* a *module-global site* — a mutable module-level binding whose name
  says it is a memo table.

Classes that *implement* the cache primitive itself (name ends in
``Cache``, own a plain-dict store assigned in ``__init__``, and expose
``get``/``put``/``get_or_compute``) are **primitive implementations**:
their internal dicts are storage, not sites — the sites are the typed
attributes that *hold* instances of them.  ``BoundedCache._cache`` and
``EvidenceCache._entries`` disappear this way; ``SnippetCache`` does not
qualify (its store is a ``BoundedCache``, itself a typed site).

Alongside the sites, this module computes the **epoch tables** the
rules reason with: which classes are *epoch-bearing* (they expose an
``epoch``/generation counter — :class:`repro.search.index.InvertedIndex`)
and which are *epoch-coupled* (they hold, transitively through typed
attributes or class-hierarchy dispatch, epoch-bearing state — the search
engine, the retriever, every answer engine, the world).  A cache filled
from epoch-coupled state must embed the epoch in its keys; that is the
obligation CACHE002 enforces.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace

from repro.devtools.conclint.symbols import (
    ModuleInfo,
    ProjectIndex,
    iter_own_nodes,
)
from repro.devtools.locklint.sites import (
    _self_attr,
    _value_type,
    resolve_annotation,
)

__all__ = [
    "CACHE_ATTR_RE",
    "CACHE_GLOBAL_RE",
    "CacheSite",
    "CacheSiteTable",
    "build_cache_sites",
]

#: Attribute names that declare dict-as-cache intent.
CACHE_ATTR_RE = re.compile(r"cache|memo", re.IGNORECASE)

#: Module-global names that declare memo-table intent.
CACHE_GLOBAL_RE = re.compile(r"cache|memo|table", re.IGNORECASE)

#: Names that mark an epoch/generation component in a key or a counter
#: bump in a mutator.
EPOCH_NAME_RE = re.compile(r"epoch|generation", re.IGNORECASE)

#: Methods a class must expose (any one of them) to count as a cache
#: *primitive implementation* rather than a cache *holder*.
_PRIMITIVE_METHODS = frozenset({"get", "put", "get_or_compute"})


@dataclass(frozen=True)
class CacheSite:
    """One named keyed memo."""

    name: str
    #: ``"cache-class"`` (attr typed as an in-project ``*Cache`` class),
    #: ``"dict"`` (dict display assigned in ``__init__``) or
    #: ``"global"`` (module-level mutable binding).
    kind: str
    #: ``"attr"`` or ``"global"``.
    scope: str
    #: Class qualname for attr sites, module name for globals.
    owner: str
    #: The attribute or global binding name.
    binding: str
    path: str
    lineno: int
    #: For ``cache-class`` sites: the cache class the attr is typed as.
    value_type: str | None = None

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "scope": self.scope,
            "owner": self.owner,
            "binding": self.binding,
            "path": self.path,
            "line": self.lineno,
            "value_type": self.value_type,
        }


@dataclass
class CacheSiteTable:
    """Every discovered site plus the typing and epoch tables."""

    #: site name -> site.
    sites: dict[str, CacheSite] = field(default_factory=dict)
    #: (class qualname, attr) -> site.
    attr_sites: dict[tuple[str, str], CacheSite] = field(default_factory=dict)
    #: global qualname -> site.
    global_sites: dict[str, CacheSite] = field(default_factory=dict)
    #: class qualname -> attr name -> type (project class qualname, a
    #: dotted external name, or ``dict``/``list``/``set``).
    attr_types: dict[str, dict[str, str]] = field(default_factory=dict)
    #: class qualname -> attr name -> project classes named anywhere in
    #: the attr's annotation (``dict[str, AnswerEngine]`` contributes
    #: ``AnswerEngine``) — reachability fuel for CACHE001.
    attr_leaves: dict[str, dict[str, tuple[str, ...]]] = field(
        default_factory=dict
    )
    #: in-project classes whose name ends in ``Cache``.
    cache_classes: set[str] = field(default_factory=set)
    #: cache classes that implement the primitive itself.
    primitive_classes: set[str] = field(default_factory=set)
    #: class qualname -> attrs its ``epoch`` definition reads (the
    #: generation counters CACHE003 wants bumped).
    epoch_bearing: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: classes holding epoch-bearing state, transitively.
    epoch_coupled: set[str] = field(default_factory=set)

    def attr_site(
        self, index: ProjectIndex, cls: str, attr: str
    ) -> CacheSite | None:
        """The site ``self.<attr>`` names in class ``cls``, honouring
        inheritance (a subclass method fills its base's memo)."""
        for candidate in [cls, *index.ancestors(cls)]:
            site = self.attr_sites.get((candidate, attr))
            if site is not None:
                return site
        return None

    def attr_type(self, index: ProjectIndex, cls: str, attr: str) -> str | None:
        for candidate in [cls, *index.ancestors(cls)]:
            typed = self.attr_types.get(candidate, {}).get(attr)
            if typed is not None:
                return typed
        return None

    def is_coupled(self, index: ProjectIndex, cls: str | None) -> bool:
        """Whether ``cls`` (or any class in its family) holds epoch-bearing
        state.  Family propagation is the self-dispatch over-approximation:
        a base-class memo fill serves every epoch-coupled subclass."""
        if cls is None:
            return False
        if cls in self.epoch_coupled:
            return True
        return any(
            member in self.epoch_coupled
            for member in index.class_family(cls)
        )


def annotation_leaves(
    node: ast.expr | None, minfo: ModuleInfo, index: ProjectIndex
) -> tuple[str, ...]:
    """Every in-project class named anywhere inside an annotation.

    Unlike :func:`resolve_annotation` (which wants the single type an
    expression *is*), this collects container element types too:
    ``dict[str, AnswerEngine]`` yields ``AnswerEngine`` — which is how
    CACHE001's reachability walk crosses the world's engine table.
    """
    if node is None:
        return ()
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return ()
    found: list[str] = []
    for child in [node, *ast.walk(node)]:
        resolved: str | None = None
        if isinstance(child, ast.Name):
            resolved = minfo.classes.get(child.id) or minfo.ctx.imports.get(
                child.id
            )
        elif isinstance(child, ast.Attribute):
            resolved = minfo.ctx.resolve(child)
        if resolved in index.classes and resolved not in found:
            found.append(resolved)
    return tuple(found)


def _epoch_counter_attrs(index: ProjectIndex, cls_qualname: str) -> tuple[str, ...] | None:
    """The ``self.<attr>`` names a class's ``epoch`` definition reads,
    or ``None`` when the class defines no epoch at all."""
    cinfo = index.classes[cls_qualname]
    attrs: list[str] = []
    bearing = False
    for stmt in cinfo.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if EPOCH_NAME_RE.search(stmt.target.id):
                bearing = True
                attrs.append(stmt.target.id)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and EPOCH_NAME_RE.search(
                    target.id
                ):
                    bearing = True
                    attrs.append(target.id)
    epoch_def = cinfo.methods.get("epoch")
    if epoch_def is not None:
        bearing = True
        fn = index.functions[epoch_def]
        for node in iter_own_nodes(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                for sub in ast.walk(node.value):
                    attr = _self_attr(sub) if isinstance(sub, ast.Attribute) else None
                    if attr is not None and attr not in attrs:
                        attrs.append(attr)
    if not bearing:
        return None
    return tuple(attrs)


def _scan_class_types(
    index: ProjectIndex, table: CacheSiteTable, class_qualname: str
) -> None:
    """Fill ``attr_types``/``attr_leaves`` for one class (the locklint
    pattern: class-level annotations, annotated ``__init__`` params
    stored on ``self``, and ``__init__`` assignments)."""
    cinfo = index.classes[class_qualname]
    minfo = index.modules[cinfo.module]
    types = table.attr_types.setdefault(class_qualname, {})
    leaves = table.attr_leaves.setdefault(class_qualname, {})

    for stmt in cinfo.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            typed = resolve_annotation(stmt.annotation, minfo, index)
            if typed is not None:
                types.setdefault(stmt.target.id, typed)
            found = annotation_leaves(stmt.annotation, minfo, index)
            if found:
                leaves.setdefault(stmt.target.id, found)

    init_qualname = cinfo.methods.get("__init__")
    init = index.functions.get(init_qualname) if init_qualname else None
    if init is None:
        return

    param_types: dict[str, str] = {}
    param_leaves: dict[str, tuple[str, ...]] = {}
    args = init.node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        typed = resolve_annotation(arg.annotation, minfo, index)
        if typed is not None:
            param_types[arg.arg] = typed
        found = annotation_leaves(arg.annotation, minfo, index)
        if found:
            param_leaves[arg.arg] = found

    for node in iter_own_nodes(init.node):
        if isinstance(node, ast.AnnAssign):
            attr = _self_attr(node.target)
            if attr is not None:
                typed = resolve_annotation(node.annotation, minfo, index)
                if typed is not None:
                    types.setdefault(attr, typed)
                found = annotation_leaves(node.annotation, minfo, index)
                if found:
                    leaves.setdefault(attr, found)
            targets: list[ast.expr] = [node.target]
            value = node.value
        elif isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        else:
            continue
        for target in targets:
            attr = _self_attr(target)
            if attr is None:
                continue
            if isinstance(value, ast.Name) and value.id in param_types:
                types.setdefault(attr, param_types[value.id])
                if value.id in param_leaves:
                    leaves.setdefault(attr, param_leaves[value.id])
                continue
            typed = _value_type(value, minfo, index)
            if typed is not None:
                types.setdefault(attr, typed)
                if typed in index.classes:
                    leaves.setdefault(attr, (typed,))


def _dict_attr_lines(
    index: ProjectIndex, class_qualname: str
) -> dict[str, int]:
    """attr -> line of every plain-dict display assigned in ``__init__``."""
    cinfo = index.classes[class_qualname]
    init_qualname = cinfo.methods.get("__init__")
    init = index.functions.get(init_qualname) if init_qualname else None
    if init is None:
        return {}
    found: dict[str, int] = {}
    for node in iter_own_nodes(init.node):
        if isinstance(node, ast.AnnAssign):
            targets: list[ast.expr] = [node.target]
            value = node.value
        elif isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        else:
            continue
        if not isinstance(value, (ast.Dict, ast.DictComp)):
            continue
        for target in targets:
            attr = _self_attr(target)
            if attr is not None:
                found.setdefault(attr, node.lineno)
    return found


def build_cache_sites(index: ProjectIndex) -> CacheSiteTable:
    """Discover every cache site and epoch table across the project."""
    table = CacheSiteTable()

    for class_qualname in sorted(index.classes):
        _scan_class_types(index, table, class_qualname)
        cinfo = index.classes[class_qualname]
        if cinfo.name.endswith("Cache"):
            table.cache_classes.add(class_qualname)
        counters = _epoch_counter_attrs(index, class_qualname)
        if counters is not None:
            table.epoch_bearing[class_qualname] = counters

    # Primitive implementations: *Cache classes that own a plain-dict
    # store and expose the get/put protocol themselves.
    for class_qualname in sorted(table.cache_classes):
        cinfo = index.classes[class_qualname]
        if not _dict_attr_lines(index, class_qualname):
            continue
        if _PRIMITIVE_METHODS & set(cinfo.methods):
            table.primitive_classes.add(class_qualname)

    # Epoch coupling: fixpoint over typed attributes and annotation
    # leaves — a class holding (a container of) epoch-bearing state is
    # itself coupled.
    coupled = set(table.epoch_bearing)
    changed = True
    while changed:
        changed = False
        for class_qualname in sorted(index.classes):
            if class_qualname in coupled:
                continue
            reachable: set[str] = set()
            reachable.update(
                t
                for t in table.attr_types.get(class_qualname, {}).values()
                if t in index.classes
            )
            for leaf_types in table.attr_leaves.get(class_qualname, {}).values():
                reachable.update(leaf_types)
            if reachable & coupled:
                coupled.add(class_qualname)
                changed = True
    table.epoch_coupled = coupled

    # Attribute sites.
    for class_qualname in sorted(index.classes):
        cinfo = index.classes[class_qualname]
        minfo = index.modules[cinfo.module]
        dict_lines = _dict_attr_lines(index, class_qualname)
        primitive = class_qualname in table.primitive_classes
        for attr in sorted(table.attr_types.get(class_qualname, {})):
            typed = table.attr_types[class_qualname][attr]
            if typed in table.cache_classes:
                site = CacheSite(
                    name=f"{cinfo.name}.{attr}",
                    kind="cache-class",
                    scope="attr",
                    owner=class_qualname,
                    binding=attr,
                    path=minfo.path,
                    lineno=dict_lines.get(attr, cinfo.node.lineno),
                    value_type=typed,
                )
                site = _at_init_line(index, class_qualname, attr, site)
                table.sites[site.name] = site
                table.attr_sites[(class_qualname, attr)] = site
        if primitive:
            # The internal store of a cache primitive is not a site.
            continue
        for attr, lineno in sorted(dict_lines.items()):
            if (class_qualname, attr) in table.attr_sites:
                continue
            if not CACHE_ATTR_RE.search(attr):
                continue
            site = CacheSite(
                name=f"{cinfo.name}.{attr}",
                kind="dict",
                scope="attr",
                owner=class_qualname,
                binding=attr,
                path=minfo.path,
                lineno=lineno,
            )
            table.sites[site.name] = site
            table.attr_sites[(class_qualname, attr)] = site

    # Module-global sites.
    for qualname in sorted(index.globals):
        var = index.globals[qualname]
        if var.kind != "mutable" or not CACHE_GLOBAL_RE.search(var.name):
            continue
        minfo = index.modules[var.module]
        site = CacheSite(
            name=qualname,
            kind="global",
            scope="global",
            owner=var.module,
            binding=var.name,
            path=minfo.path,
            lineno=var.lineno,
        )
        table.sites[site.name] = site
        table.global_sites[qualname] = site
    return table


def _at_init_line(
    index: ProjectIndex, class_qualname: str, attr: str, site: CacheSite
) -> CacheSite:
    """Re-anchor a cache-class attr site at its ``__init__`` assignment
    (or class-level annotation) line when one exists."""
    cinfo = index.classes[class_qualname]
    for stmt in cinfo.node.body:
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == attr
        ):
            return replace(site, lineno=stmt.lineno)
    init_qualname = cinfo.methods.get("__init__")
    init = index.functions.get(init_qualname) if init_qualname else None
    if init is None:
        return site
    for node in iter_own_nodes(init.node):
        targets: list[ast.expr]
        if isinstance(node, ast.AnnAssign):
            targets = [node.target]
        elif isinstance(node, ast.Assign):
            targets = node.targets
        else:
            continue
        for target in targets:
            if _self_attr(target) == attr:
                return replace(site, lineno=node.lineno)
    return site
