"""conclint orchestration: index, call graph, rules, waivers, baseline.

The pipeline is whole-program where detlint's is per-file:

1. parse every module under the analyzed roots into a
   :class:`~repro.devtools.conclint.symbols.ProjectIndex`;
2. build the approximate call graph and compute the worker-reachable
   set (:mod:`repro.devtools.conclint.callgraph`);
3. run each CONC rule over its scope (worker-reachable functions, or
   everything for the parent-side rule);
4. apply ``# conclint: ignore[...]`` pragmas and the
   ``.conclint-baseline.json`` baseline — the shared
   :mod:`repro.devtools.common` machinery, re-parameterized.
"""

from __future__ import annotations

from pathlib import Path

from repro.devtools.common.baseline import apply_baseline, load_baseline
from repro.devtools.common.findings import Finding
from repro.devtools.common.pragmas import apply_waivers
from repro.devtools.common.report import (
    DEFAULT_PATHS,
    LintReport,
    iter_python_files,
)
from repro.devtools.conclint.callgraph import CallGraph, build_callgraph
from repro.devtools.conclint.rules import AnalysisContext, all_conc_rules
from repro.devtools.conclint.symbols import ProjectIndex

__all__ = ["AnalysisResult", "analyze_paths"]


class AnalysisResult(LintReport):
    """A lint report plus the call graph it was computed against."""

    def __init__(self, findings, files_checked: int, graph: CallGraph) -> None:
        super().__init__(findings=findings, files_checked=files_checked)
        self.graph = graph


def analyze_paths(
    paths: list[str | Path] | None = None,
    baseline: str | Path | None = None,
) -> AnalysisResult:
    """Analyze files/trees and apply the baseline; the main entry point."""
    targets = list(paths) if paths else [Path(p) for p in DEFAULT_PATHS]
    files = iter_python_files(targets)
    index = ProjectIndex.build(files)
    graph = build_callgraph(index)
    actx = AnalysisContext(index=index, graph=graph)

    findings: list[Finding] = []
    for display_path in sorted(index.broken):
        exc = index.broken[display_path]
        findings.append(
            Finding(
                path=display_path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                rule="CONC000",
                message=f"file does not parse: {exc.msg}",
            )
        )
    for rule_cls in all_conc_rules():
        findings.extend(rule_cls(actx).run())
    findings.sort()

    # Pragma waivers, per module (skip-file was already honoured by the
    # rules; waivers need each module's own pragma table).
    by_path = {
        minfo.path: minfo.pragmas for minfo in index.modules.values()
    }
    waived: list[Finding] = []
    for finding in findings:
        pragmas = by_path.get(finding.path)
        if pragmas is None:
            waived.append(finding)
        else:
            waived.extend(apply_waivers([finding], pragmas))
    findings = waived

    base_dir = Path(baseline).resolve().parent if baseline is not None else None
    findings = apply_baseline(findings, load_baseline(baseline), base_dir)
    return AnalysisResult(
        findings=findings, files_checked=len(files), graph=graph
    )
