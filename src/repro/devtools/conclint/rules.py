"""The concurrency-safety rules, CONC001–CONC005.

Each rule checks functions against the parallel sharing contract the
study runner's byte-identical guarantee rests on.  Rules CONC001, 002,
004 and 005 apply only to *worker-reachable* functions (see
:mod:`repro.devtools.conclint.callgraph`); CONC003 is the parent-side
rule — it guards the fork handshake itself.

Like detlint, the rules under-report on receivers they cannot resolve:
an interprocedural analyzer that guesses buries its one real race in
waiver noise.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.devtools.conclint.callgraph import CallGraph, SUBMIT_METHODS
from repro.devtools.conclint.symbols import (
    FunctionInfo,
    GlobalVar,
    ModuleInfo,
    ProjectIndex,
    classify_value,
    iter_own_nodes,
)
from repro.devtools.common.findings import Finding

__all__ = ["ConcRule", "all_conc_rules", "conc_rule_table", "register_conc"]

#: The blessed module-global writes: the fork handshakes that ship
#: large read-only state to workers by inheritance — the study runner's
#: world and the shard builder's page groups.  Each is set and reset
#: strictly parent-side, around pool creation, and read-only inside
#: workers.
ALLOWED_GLOBAL_WRITES = frozenset(
    {
        "repro.core.runner._WORKER_WORLD",
        "repro.search.sharding._BUILDER_GROUPS",
        "repro.search.shardexec._RESIDENT_SPEC",
    }
)

#: Method calls that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "setdefault",
        "sort",
        "reverse",
    }
)

#: Instance attributes that look like shared memo/counter state.
_CACHE_ATTR_RE = re.compile(r"cache|memo|hits|misses|evictions", re.IGNORECASE)
_LOCK_ATTR_RE = re.compile(r"lock", re.IGNORECASE)

#: Methods where unguarded writes are initialization, not sharing:
#: the object is not yet published to other threads.
_INIT_METHODS = frozenset({"__init__", "__new__", "__post_init__"})

_REGISTRY: dict[str, type["ConcRule"]] = {}


def register_conc(cls: type["ConcRule"]) -> type["ConcRule"]:
    """Class decorator adding a conclint rule to the registry."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def all_conc_rules() -> list[type["ConcRule"]]:
    """Registered rule classes, ordered by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def conc_rule_table() -> list[tuple[str, str, str]]:
    """``(code, title, summary)`` rows for ``conclint --list-rules``."""
    return [(cls.code, cls.title, cls.summary) for cls in all_conc_rules()]


@dataclass
class AnalysisContext:
    """What every rule gets to see: the symbol table and the call graph."""

    index: ProjectIndex
    graph: CallGraph

    def module(self, fn: FunctionInfo) -> ModuleInfo:
        return self.index.modules[fn.module]

    def reached_via(self, fn: FunctionInfo) -> str:
        return self.graph.reached_via(fn.qualname) or fn.qualname


class ConcRule:
    """Base class for one concurrency rule.

    ``worker_side`` rules run only over worker-reachable functions;
    parent-side rules (CONC003) see every function.
    """

    code: str = ""
    title: str = ""
    summary: str = ""
    worker_side: bool = True

    def __init__(self, actx: AnalysisContext) -> None:
        self.actx = actx
        self.findings: list[Finding] = []

    def check_function(self, fn: FunctionInfo) -> None:
        raise NotImplementedError

    def run(self) -> list[Finding]:
        for qualname in sorted(self.actx.index.functions):
            fn = self.actx.index.functions[qualname]
            if self.actx.index.modules[fn.module].pragmas.skip_file:
                continue
            if self.worker_side and not self.actx.graph.is_worker_reachable(
                qualname
            ):
                continue
            self.check_function(fn)
        return self.findings

    def report(self, fn: FunctionInfo, node: ast.AST, message: str) -> None:
        minfo = self.actx.module(fn)
        line = getattr(node, "lineno", fn.lineno)
        self.findings.append(
            Finding(
                path=minfo.path,
                line=line,
                col=getattr(node, "col_offset", 0),
                rule=self.code,
                message=message,
                snippet=minfo.ctx.snippet(line),
                end_line=getattr(node, "end_lineno", line) or line,
                stmt_line=_enclosing_stmt_line(fn.node, node),
            )
        )


def _enclosing_stmt_line(root: ast.AST, target: ast.AST) -> int:
    """First line of the innermost statement containing ``target``."""
    best = getattr(target, "lineno", 0)
    stack: list[tuple[ast.AST, int]] = [(root, best)]
    while stack:
        node, stmt_line = stack.pop()
        if node is target:
            return stmt_line
        for child in ast.iter_child_nodes(node):
            child_stmt = child.lineno if isinstance(child, ast.stmt) else stmt_line
            stack.append((child, child_stmt))
    return best


# ----------------------------------------------------------------------
# Shared helpers


def _global_declarations(fn_node: ast.AST) -> set[str]:
    declared: set[str] = set()
    for node in iter_own_nodes(fn_node):
        if isinstance(node, ast.Global):
            declared.update(node.names)
    return declared


def _binding_names(target: ast.expr) -> set[str]:
    """Names an assignment target *binds* (rebinding, not mutation).

    ``x = ...`` and ``x, y = ...`` bind; ``x[k] = ...`` and
    ``x.attr = ...`` mutate an existing object and bind nothing —
    treating their receivers as bound would shadow the very globals the
    rules exist to catch.
    """
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        bound: set[str] = set()
        for element in target.elts:
            bound.update(_binding_names(element))
        return bound
    if isinstance(target, ast.Starred):
        return _binding_names(target.value)
    return set()


def _local_bindings(fn_node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound locally (and therefore shadowing module globals)."""
    bound: set[str] = set()
    args = fn_node.args
    for arg in (
        *args.posonlyargs, *args.args, *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ):
        bound.add(arg.arg)
    for node in iter_own_nodes(fn_node):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                bound.update(_binding_names(target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bound.update(_binding_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    bound.update(_binding_names(item.optional_vars))
        elif isinstance(node, ast.comprehension):
            bound.update(_binding_names(node.target))
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
    return bound - _global_declarations(fn_node)


def _receiver_global(
    node: ast.expr,
    fn: FunctionInfo,
    minfo: ModuleInfo,
    index: ProjectIndex,
    shadowed: set[str],
) -> GlobalVar | None:
    """The module-level binding ``node`` denotes, unless shadowed."""
    if isinstance(node, ast.Name) and node.id in shadowed:
        return None
    return index.resolve_global(node, minfo)


def _loaded_names(node: ast.AST) -> set[str]:
    return {
        leaf.id
        for leaf in ast.walk(node)
        if isinstance(leaf, ast.Name) and isinstance(leaf.ctx, ast.Load)
    }


# ----------------------------------------------------------------------
# CONC001 — module-global mutation from worker-reachable code


@register_conc
class GlobalMutationRule(ConcRule):
    """CONC001 — worker-reachable code writes module-level state.

    Under the thread executor such writes race; under fork they
    silently diverge (each child mutates its own copy, the parent never
    sees it — or worse, the parent's state no longer matches what the
    workers computed with).  Either way the byte-identical guarantee is
    gone.  The one blessed exception is the ``_WORKER_WORLD`` fork
    handshake, which is written strictly parent-side around pool
    creation.
    """

    code = "CONC001"
    title = "global mutation"
    summary = (
        "assignment or in-place mutation of module-level state from "
        "worker-reachable code (the _WORKER_WORLD handshake is exempt)"
    )

    def check_function(self, fn: FunctionInfo) -> None:
        minfo = self.actx.module(fn)
        declared = _global_declarations(fn.node)
        shadowed = _local_bindings(fn.node)
        via = self.actx.reached_via(fn)
        for node in iter_own_nodes(fn.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    self._check_target(fn, minfo, node, target, declared, shadowed, via)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        self._check_target(
                            fn, minfo, node, target, declared, shadowed, via
                        )
            elif isinstance(node, ast.Call):
                self._check_mutator_call(fn, minfo, node, shadowed, via)

    def _check_target(
        self,
        fn: FunctionInfo,
        minfo: ModuleInfo,
        stmt: ast.AST,
        target: ast.expr,
        declared: set[str],
        shadowed: set[str],
        via: str,
    ) -> None:
        var: GlobalVar | None = None
        if isinstance(target, ast.Name):
            if target.id in declared:
                var = minfo.globals.get(target.id) or GlobalVar(
                    qualname=f"{fn.module}.{target.id}",
                    module=fn.module,
                    name=target.id,
                    kind="other",
                    lineno=0,
                )
        elif isinstance(target, ast.Subscript):
            var = _receiver_global(target.value, fn, minfo, self.actx.index, shadowed)
        elif isinstance(target, ast.Attribute):
            # Either a rebind of another module's global (mod.G = x) or
            # an attribute write on a shared module-level object (G.f = x).
            var = _receiver_global(
                target, fn, minfo, self.actx.index, shadowed
            ) or _receiver_global(target.value, fn, minfo, self.actx.index, shadowed)
        if var is None or var.qualname in ALLOWED_GLOBAL_WRITES:
            return
        self.report(
            fn,
            stmt,
            f"worker-reachable code (via {via}) writes module-level state "
            f"{var.qualname}; shared globals must not be mutated on the "
            "worker side",
        )

    def _check_mutator_call(
        self,
        fn: FunctionInfo,
        minfo: ModuleInfo,
        node: ast.Call,
        shadowed: set[str],
        via: str,
    ) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in MUTATOR_METHODS:
            return
        var = _receiver_global(func.value, fn, minfo, self.actx.index, shadowed)
        if var is None or var.kind != "mutable":
            return
        if var.qualname in ALLOWED_GLOBAL_WRITES:
            return
        self.report(
            fn,
            node,
            f"worker-reachable code (via {via}) calls .{func.attr}() on "
            f"module-level {var.qualname}; shared globals must not be "
            "mutated on the worker side",
        )


# ----------------------------------------------------------------------
# CONC002 — unguarded writes to shared instance caches


@register_conc
class UnguardedCacheWriteRule(ConcRule):
    """CONC002 — shared-cache writes on paths not holding the lock.

    Engine memo caches and their hit/miss counters are shared across
    threads under the thread-executor fallback; every write path must
    hold the class's lock, or two threads interleave between the check
    and the insert and the counters (or worse, the eviction loop)
    corrupt.  Reads are deliberately not flagged: a stale read of a
    deterministic memo is harmless, a torn write is not.
    """

    code = "CONC002"
    title = "unguarded cache write"
    summary = (
        "write to a shared instance cache (self.*cache*/hit/miss "
        "counters) outside the corresponding lock in worker-reachable "
        "code"
    )

    def check_function(self, fn: FunctionInfo) -> None:
        if fn.cls is None or fn.name in _INIT_METHODS:
            return
        cls_info = self.actx.index.classes.get(fn.cls)
        if cls_info is None:
            return
        lock_attrs = self._lock_attributes(cls_info.node)
        aliases = self._cache_aliases(fn.node)
        via = self.actx.reached_via(fn)
        self._walk(fn, fn.node.body, lock_attrs, aliases, guarded=False, via=via)

    # -- discovery -----------------------------------------------------

    @staticmethod
    def _lock_attributes(cls_node: ast.ClassDef) -> set[str]:
        locks: set[str] = set()
        for node in ast.walk(cls_node):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and _LOCK_ATTR_RE.search(target.attr)
                    ):
                        locks.add(target.attr)
        return locks

    def _cache_aliases(self, fn_node: ast.AST) -> set[str]:
        """Local names bound to a cache attribute (``cache = self._answer_cache``
        or ``cache = getattr(self, "_answer_cache", None)``)."""
        aliases: set[str] = set()
        for node in iter_own_nodes(fn_node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if self._is_cache_attr(value):
                aliases.add(target.id)
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "getattr"
                and len(value.args) >= 2
                and isinstance(value.args[0], ast.Name)
                and value.args[0].id == "self"
                and isinstance(value.args[1], ast.Constant)
                and isinstance(value.args[1].value, str)
                and _CACHE_ATTR_RE.search(value.args[1].value)
            ):
                aliases.add(target.id)
        return aliases

    @staticmethod
    def _is_cache_attr(node: ast.expr) -> bool:
        """Whether the expression is a ``self``-rooted attribute chain
        with a cache-looking component (``self._answer_cache``,
        ``self.stats.hits``)."""
        matched = False
        current = node
        while isinstance(current, ast.Attribute):
            if _LOCK_ATTR_RE.search(current.attr):
                return False
            if _CACHE_ATTR_RE.search(current.attr):
                matched = True
            current = current.value
        return matched and isinstance(current, ast.Name) and current.id == "self"

    def _is_cache_target(
        self, node: ast.expr, aliases: set[str], as_receiver: bool = False
    ) -> bool:
        """Whether writing through ``node`` mutates cache state.

        A bare alias *name* only counts as a receiver (``cache[k] = v``,
        ``cache.pop(...)``) — rebinding the local alias itself is not a
        cache write.
        """
        if isinstance(node, ast.Subscript):
            return self._is_cache_target(node.value, aliases, as_receiver=True)
        if isinstance(node, ast.Name):
            return as_receiver and node.id in aliases
        return self._is_cache_attr(node)

    @staticmethod
    def _holds_lock(item: ast.withitem, lock_attrs: set[str]) -> bool:
        expr = item.context_expr
        # ``with self._cache_lock:`` — possibly via .acquire()-less
        # context manager; any self.<...lock...> attribute counts.
        current = expr
        if isinstance(current, ast.Call):
            current = current.func
        while isinstance(current, ast.Attribute):
            if _LOCK_ATTR_RE.search(current.attr):
                return True
            current = current.value
        return False

    # -- traversal with lock context ------------------------------------

    def _walk(
        self,
        fn: FunctionInfo,
        body: list[ast.stmt],
        lock_attrs: set[str],
        aliases: set[str],
        guarded: bool,
        via: str,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                now_guarded = guarded or any(
                    self._holds_lock(item, lock_attrs) for item in stmt.items
                )
                self._walk(fn, stmt.body, lock_attrs, aliases, now_guarded, via)
                continue
            # Compound statement: recurse into each block with the lock
            # context preserved and scan only the *header* expressions
            # here (the blocks' own statements are checked recursively).
            compound = False
            for __, value in ast.iter_fields(stmt):
                if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
                    compound = True
                    self._walk(fn, value, lock_attrs, aliases, guarded, via)
                elif isinstance(value, list) and value and isinstance(
                    value[0], ast.ExceptHandler
                ):
                    compound = True
                    for handler in value:
                        self._walk(
                            fn, handler.body, lock_attrs, aliases, guarded, via
                        )
            if guarded:
                continue
            if compound:
                for __, value in ast.iter_fields(stmt):
                    if isinstance(value, ast.expr):
                        self._scan_mutators(fn, value, aliases, lock_attrs, via)
            else:
                self._check_stmt(fn, stmt, aliases, lock_attrs, via)

    def _hint(self, lock_attrs: set[str]) -> str:
        if lock_attrs:
            return f"guard it with self.{sorted(lock_attrs)[0]}"
        return "the class defines no lock to guard it with"

    def _check_stmt(
        self,
        fn: FunctionInfo,
        stmt: ast.stmt,
        aliases: set[str],
        lock_attrs: set[str],
        via: str,
    ) -> None:
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                if self._is_cache_target(target, aliases):
                    self.report(
                        fn,
                        stmt,
                        f"unguarded write to shared cache state "
                        f"{ast.unparse(target)} in worker-reachable code "
                        f"(via {via}); {self._hint(lock_attrs)}",
                    )
        self._scan_mutators(fn, stmt, aliases, lock_attrs, via)

    def _scan_mutators(
        self,
        fn: FunctionInfo,
        node: ast.AST,
        aliases: set[str],
        lock_attrs: set[str],
        via: str,
    ) -> None:
        """Flag mutator calls on cache state anywhere in a subtree."""
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in MUTATOR_METHODS
                and self._is_cache_target(child.func.value, aliases, as_receiver=True)
            ):
                self.report(
                    fn,
                    child,
                    f"unguarded .{child.func.attr}() on shared cache state "
                    f"{ast.unparse(child.func.value)} in worker-reachable "
                    f"code (via {via}); {self._hint(lock_attrs)}",
                )


# ----------------------------------------------------------------------
# CONC003 — parent-side mutation of fork-shipped objects


@register_conc
class ForkShipMutationRule(ConcRule):
    """CONC003 — mutating an object after shipping it to forked workers.

    ``fork`` snapshots the parent's memory; a world assigned to the
    worker handshake global and then mutated parent-side silently
    diverges from what the workers compute against.  The rule is
    parent-side: it runs over *every* function that both ships a global
    and touches a pool.
    """

    code = "CONC003"
    title = "post-fork divergence"
    summary = (
        "parent-side mutation of an object after assigning it to the "
        "worker handshake global (fork inheritance divergence)"
    )
    worker_side = False

    def check_function(self, fn: FunctionInfo) -> None:
        declared = _global_declarations(fn.node)
        if not declared or not self._touches_pool(fn):
            return
        ships: list[tuple[int, str, str]] = []
        for node in iter_own_nodes(fn.node):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in declared
                    and not isinstance(node.value, ast.Constant)
                ):
                    ships.append(
                        (node.lineno, ast.unparse(node.value), target.id)
                    )
        for ship_line, shipped, global_name in ships:
            self._flag_mutations(fn, ship_line, shipped, global_name)

    def _touches_pool(self, fn: FunctionInfo) -> bool:
        minfo = self.actx.module(fn)
        for node in iter_own_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in SUBMIT_METHODS
            ):
                return True
            resolved = minfo.ctx.resolve(node.func)
            if resolved is not None and (
                "ProcessPoolExecutor" in resolved or "ThreadPoolExecutor" in resolved
            ):
                return True
            if isinstance(node.func, ast.Name) and node.func.id in (
                "ProcessPoolExecutor",
                "ThreadPoolExecutor",
            ):
                return True
        return False

    def _flag_mutations(
        self, fn: FunctionInfo, ship_line: int, shipped: str, global_name: str
    ) -> None:
        prefix = shipped + "."
        for node in iter_own_nodes(fn.node):
            lineno = getattr(node, "lineno", 0)
            if lineno <= ship_line:
                continue
            target: ast.expr | None = None
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for candidate in targets:
                    if isinstance(candidate, (ast.Attribute, ast.Subscript)):
                        spelled = ast.unparse(
                            candidate.value
                            if isinstance(candidate, ast.Subscript)
                            else candidate
                        )
                        if spelled == shipped or spelled.startswith(prefix):
                            target = candidate
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATOR_METHODS
            ):
                spelled = ast.unparse(node.func.value)
                if spelled == shipped or spelled.startswith(prefix):
                    target = node.func
            if target is not None:
                self.report(
                    fn,
                    node,
                    f"parent-side mutation of {shipped} after it was shipped "
                    f"to forked workers via {global_name}; parent and worker "
                    "copies diverge",
                )


# ----------------------------------------------------------------------
# CONC004 — fork-unsafe resources crossing the worker boundary


@register_conc
class ForkUnsafeCaptureRule(ConcRule):
    """CONC004 — file handles, locks, executors reaching worker code.

    A forked child inherits the parent's open file descriptors and lock
    *state*: two processes appending through the same handle interleave
    bytes, and a lock held at fork time is held forever in the child.
    Flag any worker-reachable reference to such a resource, whether via
    a module global or a closure over the submitting function's locals.
    """

    code = "CONC004"
    title = "fork-unsafe capture"
    summary = (
        "open file handle, lock, or executor referenced by "
        "worker-reachable code (module global or captured closure)"
    )
    # The lambda-submission check inspects the *submitting* (parent-side)
    # function, so the rule sees every function and gates the
    # worker-side checks on reachability itself.
    worker_side = False

    def check_function(self, fn: FunctionInfo) -> None:
        minfo = self.actx.module(fn)
        if self.actx.graph.is_worker_reachable(fn.qualname):
            shadowed = _local_bindings(fn.node)
            via = self.actx.reached_via(fn)
            for node in iter_own_nodes(fn.node):
                if not isinstance(node, (ast.Name, ast.Attribute)):
                    continue
                if not isinstance(getattr(node, "ctx", None), ast.Load):
                    continue
                var = _receiver_global(node, fn, minfo, self.actx.index, shadowed)
                if var is None or var.kind != "resource":
                    continue
                self.report(
                    fn,
                    node,
                    f"worker-reachable code (via {via}) uses fork-unsafe "
                    f"resource {var.qualname}; open it (or create the "
                    "primitive) inside the task instead",
                )
            self._check_closure_captures(fn, via)
        self._check_submitted_lambdas(fn, minfo)

    def _check_closure_captures(self, fn: FunctionInfo, via: str) -> None:
        if fn.parent is None:
            return
        parent = self.actx.index.functions.get(fn.parent)
        if parent is None:
            return
        parent_resources = self._local_resources(parent)
        if not parent_resources:
            return
        free = _loaded_names(fn.node) - _local_bindings(fn.node)
        for name in sorted(free & set(parent_resources)):
            self.report(
                fn,
                fn.node,
                f"worker-reachable closure {fn.qualname} (via {via}) "
                f"captures fork-unsafe resource {name!r} from "
                f"{parent.qualname}; pass plain data across the pool "
                "boundary instead",
            )

    def _check_submitted_lambdas(self, fn: FunctionInfo, minfo: ModuleInfo) -> None:
        resources = self._local_resources(fn)
        for node in iter_own_nodes(fn.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in SUBMIT_METHODS
                and node.args
                and isinstance(node.args[0], ast.Lambda)
            ):
                continue
            lam = node.args[0]
            lambda_params = {arg.arg for arg in lam.args.args}
            captured = _loaded_names(lam.body) - lambda_params
            hazards = sorted(captured & set(resources))
            for name in hazards:
                self.report(
                    fn,
                    lam,
                    f"lambda submitted to a pool captures fork-unsafe "
                    f"resource {name!r}; pass plain data across the pool "
                    "boundary instead",
                )

    def _local_resources(self, fn: FunctionInfo) -> set[str]:
        minfo = self.actx.module(fn)
        resources: set[str] = set()
        for node in iter_own_nodes(fn.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if isinstance(target, ast.Name) and classify_value(
                node.value, minfo.ctx
            ) == "resource":
                resources.add(target.id)
        return resources


# ----------------------------------------------------------------------
# CONC005 — shared RNG instances crossing the worker boundary


@register_conc
class SharedRngRule(ConcRule):
    """CONC005 — a shared ``random.Random`` stream on the worker side.

    Every draw advances the instance, so the stream's order depends on
    worker scheduling — the opposite of the determinism contract.  The
    fix is the same discipline detlint's DET001 enforces statically:
    derive a fresh per-task stream with ``derive_rng(*task_key)``.
    """

    code = "CONC005"
    title = "shared RNG"
    summary = (
        "module-level or instance-shared random.Random used by "
        "worker-reachable code; derive a per-task stream with "
        "derive_rng(...)"
    )

    def check_function(self, fn: FunctionInfo) -> None:
        minfo = self.actx.module(fn)
        shadowed = _local_bindings(fn.node)
        via = self.actx.reached_via(fn)
        rng_attrs = self._instance_rng_attrs(fn)
        for node in iter_own_nodes(fn.node):
            if isinstance(node, (ast.Name, ast.Attribute)) and isinstance(
                getattr(node, "ctx", None), ast.Load
            ):
                var = _receiver_global(node, fn, minfo, self.actx.index, shadowed)
                if var is not None and var.kind == "rng":
                    self.report(
                        fn,
                        node,
                        f"worker-reachable code (via {via}) draws from the "
                        f"shared RNG {var.qualname}; derive a per-task "
                        "stream with derive_rng(...) instead",
                    )
                    continue
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in rng_attrs
                and isinstance(node.ctx, ast.Load)
            ):
                self.report(
                    fn,
                    node,
                    f"worker-reachable code (via {via}) draws from the "
                    f"instance-shared RNG self.{node.attr}; derive a "
                    "per-task stream with derive_rng(...) instead",
                )

    def _instance_rng_attrs(self, fn: FunctionInfo) -> set[str]:
        if fn.cls is None:
            return set()
        cls_info = self.actx.index.classes.get(fn.cls)
        if cls_info is None:
            return set()
        minfo = self.actx.module(fn)
        attrs: set[str] = set()
        for node in ast.walk(cls_info.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and classify_value(node.value, minfo.ctx) == "rng"
                    ):
                        attrs.add(target.attr)
        return attrs
